#include "pipeline/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "als/solver.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "devsim/profile.hpp"
#include "robust/checkpoint.hpp"
#include "serve/model_store.hpp"

namespace alsmf::pipeline {

namespace {

/// Items ranked by training popularity (rating count, score = count): the
/// degraded-mode answer served before the first checkpoint is published.
std::vector<Recommendation> popularity_ranking(const Csr& train, int topn) {
  std::vector<std::uint64_t> counts(static_cast<std::size_t>(train.cols()), 0);
  for (const index_t item : train.col_idx()) {
    ++counts[static_cast<std::size_t>(item)];
  }
  std::vector<Recommendation> ranked(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    ranked[i] = {static_cast<index_t>(i), static_cast<real>(counts[i])};
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Recommendation& a, const Recommendation& b) {
                     return a.score > b.score;
                   });
  if (topn > 0 && ranked.size() > static_cast<std::size_t>(topn)) {
    ranked.resize(static_cast<std::size_t>(topn));
  }
  return ranked;
}

/// Shared trainer/publisher progress, guarded by one mutex. Progress is
/// counted in checkpoints ("versions"): the trainer registers what it has
/// saved, the publisher advances the frontier it has published (or
/// abandoned as unloadable). `applied()` is DERIVED from both, never
/// maintained incrementally — the publisher can pick up a checkpoint file
/// before the trainer registers it, and a derived count cannot lose that
/// credit to the ordering.
struct Progress {
  std::mutex m;
  std::condition_variable cv;
  std::int64_t written = 0;  ///< checkpoints the trainer has saved
  /// Iterations of the checkpoints written this run, in order.
  std::vector<std::int64_t> written_iters;
  /// Newest iteration published to serving or abandoned as unloadable;
  /// everything at or below it is superseded (jump-to-newest).
  std::int64_t frontier_iter = -1;
  bool training_done = false;

  /// How many written checkpoints the frontier covers.
  std::int64_t applied() const {
    std::int64_t n = 0;
    for (const std::int64_t it : written_iters) {
      if (it <= frontier_iter) ++n;
    }
    return n;
  }
};

}  // namespace

std::string PipelineReport::to_json() const {
  std::string out = "{";
  char buf[128];
  auto add = [&](const char* key, double v, bool integer) {
    std::snprintf(buf, sizeof(buf), integer ? "\"%s\":%.0f," : "\"%s\":%.6f,",
                  key, v);
    out += buf;
  };
  add("iterations", iterations, true);
  add("resumed_from", static_cast<double>(resumed_from), true);
  add("swaps", static_cast<double>(swaps), true);
  add("checkpoint_load_failures", static_cast<double>(checkpoint_load_failures),
      true);
  add("index_builds", static_cast<double>(index_builds), true);
  add("index_build_seconds", index_build_seconds, false);
  add("staleness_max", static_cast<double>(staleness_max), true);
  add("requests_submitted", static_cast<double>(requests_submitted), true);
  add("requests_completed", static_cast<double>(requests_completed), true);
  add("requests_shed", static_cast<double>(requests_shed), true);
  add("cache_hits", static_cast<double>(cache_hits), true);
  add("wall_seconds", wall_seconds, false);
  out += "\"assertion_violations\":[";
  for (std::size_t i = 0; i < assertion_violations.size(); ++i) {
    if (i) out += ",";
    out += "\"";
    for (const char c : assertion_violations[i]) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    out += "\"";
  }
  out += "]}";
  return out;
}

PipelineReport run_pipeline(const Csr& train, const PipelineOptions& options) {
  ALSMF_CHECK_MSG(!options.checkpoint_dir.empty(),
                  "pipeline requires a checkpoint_dir");
  ALSMF_CHECK_MSG(options.als.iterations > 0,
                  "pipeline requires als.iterations > 0");
  ALSMF_CHECK_MSG(options.checkpoint_every > 0,
                  "pipeline requires checkpoint_every > 0");
  ALSMF_CHECK_MSG(options.max_staleness >= 1,
                  "pipeline requires max_staleness >= 1");

  obs::Registry owned;
  obs::Registry& reg = options.metrics ? *options.metrics : owned;
  auto& ckpts_published = reg.counter("pipeline_checkpoints_published");
  auto& load_failures = reg.counter("pipeline_checkpoint_load_failures");
  auto& index_builds = reg.counter("pipeline_index_builds");
  auto& staleness_gauge = reg.gauge("pipeline_staleness_versions");
  auto& staleness_max_gauge = reg.gauge("pipeline_staleness_max");
  auto& build_seconds = reg.histogram("pipeline_index_build_seconds");
  {
    const double bound = options.max_staleness;
    auto* worst = &staleness_max_gauge;
    reg.add_assertion("pipeline_staleness_bound", [worst, bound] {
      const double seen = worst->value();
      if (seen <= bound) return std::string();
      char msg[96];
      std::snprintf(msg, sizeof(msg),
                    "served version trailed the newest checkpoint by %.0f "
                    "versions (bound %.0f)",
                    seen, bound);
      return std::string(msg);
    });
  }

  // Service starts empty (degraded mode, popularity fallback) so load runs
  // from t=0; the first published checkpoint flips it to model answers.
  serve::ServiceOptions serve_options = options.serve;
  serve_options.registry = &reg;
  serve::RecommendService service(nullptr, serve_options);
  service.set_popularity_fallback(popularity_ranking(train, options.topn));

  devsim::Device device(devsim::profile_by_name(options.device),
                        serve_options.pool);
  const AlsVariant variant;  // batched default; checkpoints are
                             // variant-interchangeable (see trajectory_hash)
  AlsSolver solver(train, options.als, variant, device);

  Progress progress;
  PipelineReport report;
  const Timer wall;

  // Resume happens synchronously, before any thread starts: the publisher
  // then only ever deals with checkpoints this run writes, so the swap
  // count is deterministic (one per new checkpoint, never a replay of the
  // resume point).
  if (options.resume) {
    report.resumed_from = solver.resume_latest(options.checkpoint_dir);
    progress.frontier_iter = report.resumed_from;
  }

  // --- trainer: chunked run with bounded-staleness backpressure -----------
  std::thread trainer([&] {
    while (true) {
      const int remaining = options.als.iterations - solver.iterations_done();
      if (remaining <= 0) break;
      RunConfig cfg;
      cfg.iterations = std::min(options.checkpoint_every, remaining);
      cfg.checkpoint = CheckpointConfig{options.checkpoint_dir,
                                        options.checkpoint_every,
                                        options.checkpoints_keep};
      cfg.metrics = &reg;
      const RunReport rr = solver.run(cfg);
      report.iterations += rr.iterations;
      // run() saved a checkpoint at this chunk boundary (every divides
      // iterations_done, and the final partial chunk saves at target).
      {
        std::unique_lock lk(progress.m);
        ++progress.written;
        progress.written_iters.push_back(solver.iterations_done());
        progress.cv.notify_all();
        // Backpressure: never run more than max_staleness checkpoints
        // ahead of the published (or abandoned) frontier.
        progress.cv.wait(lk, [&] {
          return progress.written - progress.applied() < options.max_staleness;
        });
      }
    }
    std::unique_lock lk(progress.m);
    progress.training_done = true;
    progress.cv.notify_all();
  });

  // --- publisher: poll checkpoints, build index, hot-swap ------------------
  std::thread publisher([&] {
    // Checkpoints at or before the resume point are already live in the
    // solver; only publish what this run writes.
    std::int64_t last_iter = report.resumed_from;
    std::int64_t abandoned_iter = -1;
    int attempts_on_newest = 0;
    constexpr int kMaxLoadAttempts = 3;
    while (true) {
      {
        std::unique_lock lk(progress.m);
        const bool done = progress.training_done &&
                          progress.applied() >= progress.written;
        if (done) break;
      }
      // Jump to the newest checkpoint; intermediate ones are superseded.
      const auto available = robust::list_checkpoints(options.checkpoint_dir);
      const robust::CheckpointInfo* newest = nullptr;
      for (const auto& info : available) {
        if (info.iteration > last_iter && info.iteration > abandoned_iter &&
            (!newest || info.iteration > newest->iteration)) {
          newest = &info;
        }
      }
      if (!newest) {
        std::this_thread::sleep_for(std::chrono::microseconds(options.poll_us));
        continue;
      }
      std::shared_ptr<serve::ModelSnapshot> snap;
      try {
        robust::TrainingCheckpoint ckpt =
            robust::load_checkpoint_file(newest->path);
        snap = serve::snapshot_from_factors(std::move(ckpt.x),
                                            std::move(ckpt.y),
                                            options.als.lambda);
      } catch (const std::exception&) {
        // Graceful fallback: keep serving the previous version. Transient
        // faults (injection, partially visible writes) succeed on a later
        // attempt; a permanently corrupt file is abandoned so the pipeline
        // keeps moving.
        load_failures.inc();
        if (++attempts_on_newest >= kMaxLoadAttempts) {
          abandoned_iter = newest->iteration;
          attempts_on_newest = 0;
          std::unique_lock lk(progress.m);
          progress.frontier_iter =
              std::max(progress.frontier_iter, abandoned_iter);
          progress.cv.notify_all();
        } else {
          std::this_thread::sleep_for(
              std::chrono::microseconds(options.poll_us));
        }
        continue;
      }
      attempts_on_newest = 0;
      if (options.use_index) {
        const Timer t;
        serve::attach_ivf_index(*snap, options.ivf);
        const double seconds = t.seconds();
        index_builds.inc();
        build_seconds.observe(seconds);
        report.index_build_seconds += seconds;
      }
      service.swap_model(std::move(snap));
      ckpts_published.inc();
      last_iter = newest->iteration;
      {
        std::unique_lock lk(progress.m);
        progress.frontier_iter = std::max(progress.frontier_iter, last_iter);
        // How many checkpoint versions the just-published snapshot trails
        // the newest written one by — the bounded-staleness evidence.
        const double staleness =
            static_cast<double>(progress.written - progress.applied());
        staleness_gauge.set(staleness);
        if (staleness > staleness_max_gauge.value()) {
          staleness_max_gauge.set(staleness);
        }
        progress.cv.notify_all();
      }
    }
  });

  // --- closed-loop Zipf load ----------------------------------------------
  std::atomic<bool> stop_load{false};
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(std::max(0, options.clients)));
  const auto n_users = static_cast<std::uint64_t>(train.rows());
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(options.load_seed + static_cast<std::uint64_t>(c) * 7919);
      const ZipfSampler zipf(n_users, options.zipf);
      while (!stop_load.load(std::memory_order_relaxed)) {
        const auto user = static_cast<index_t>(zipf(rng));
        (void)service.topn(user, options.topn);
      }
    });
  }

  trainer.join();
  publisher.join();
  stop_load.store(true, std::memory_order_relaxed);
  for (auto& t : clients) t.join();
  service.stop();  // drain: conservation reaches equality

  report.wall_seconds = wall.seconds();
  report.swaps = service.metrics().swaps();
  report.checkpoint_load_failures = load_failures.value();
  report.index_builds = index_builds.value();
  report.staleness_max =
      static_cast<std::uint64_t>(staleness_max_gauge.value());
  report.requests_submitted = service.metrics().submitted();
  report.requests_completed = service.metrics().completed();
  report.requests_shed =
      service.metrics().shed_queue_full() + service.metrics().shed_deadline();
  report.cache_hits = service.cache_stats().hits;
  report.assertion_violations = reg.check_assertions();
  // The conservation assertion is <=; at drain the pipeline demands
  // equality — every submitted request completed or was shed, none dropped.
  if (report.requests_submitted !=
      report.requests_completed + report.requests_shed) {
    char msg[128];
    std::snprintf(msg, sizeof(msg),
                  "serve_requests_dropped: submitted %llu != completed %llu + "
                  "shed %llu at drain",
                  static_cast<unsigned long long>(report.requests_submitted),
                  static_cast<unsigned long long>(report.requests_completed),
                  static_cast<unsigned long long>(report.requests_shed));
    report.assertion_violations.emplace_back(msg);
  }
  return report;
}

}  // namespace alsmf::pipeline
