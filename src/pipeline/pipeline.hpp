// Continuous train → checkpoint → index-build → hot-swap serving pipeline.
//
// The production loop the serving and robustness subsystems were built for,
// closed end to end:
//
//   trainer ──AlsSolver::run──▶ crash-safe checkpoints (robust/checkpoint)
//      ▲ backpressure                │ poll newest
//      │                            ▼
//   publisher: load checkpoint ─▶ build IVF index ─▶ service.swap_model
//                                                        ▲
//   Zipf load clients ──closed-loop top-N──────────────--┘
//
// Guarantees, asserted through the shared obs::Registry:
//   * zero dropped requests — every submitted request completes or is shed
//     with a status (serve_requests_conservation, equality at drain);
//   * bounded staleness — the served snapshot never trails the newest
//     loadable checkpoint by more than `max_staleness` versions. The
//     trainer enforces it by backpressure: it pauses after a checkpoint
//     until the publisher catches up, so the bound holds by construction,
//     not by luck of scheduling.
//   * graceful fallback — a checkpoint that fails to load (fault injection
//     at FaultSite::kIoRead, torn file, CRC mismatch) is skipped; the
//     service keeps answering from the previous published version and the
//     publisher retries on the next poll.
#pragma once

#include <cstdint>
#include <string>

#include "als/options.hpp"
#include "als/kernels.hpp"
#include "index/ivf_index.hpp"
#include "obs/registry.hpp"
#include "serve/service.hpp"
#include "sparse/csr.hpp"

namespace alsmf::pipeline {

struct PipelineOptions {
  // --- training ------------------------------------------------------------
  AlsOptions als;               ///< als.iterations = total iterations to train
  std::string device = "cpu";   ///< devsim profile name
  std::string checkpoint_dir;   ///< required; checkpoints + resume live here
  int checkpoint_every = 1;     ///< iterations per checkpoint (= per version)
  std::size_t checkpoints_keep = 3;
  /// Resume from the newest loadable checkpoint in checkpoint_dir (the
  /// crash-recovery path; see docs/robustness.md).
  bool resume = false;

  // --- index ---------------------------------------------------------------
  bool use_index = true;        ///< attach an IVF index to every snapshot
  index::IvfOptions ivf;

  // --- serving / load ------------------------------------------------------
  serve::ServiceOptions serve;  ///< batching/cache/nprobe knobs
  int clients = 2;              ///< closed-loop load threads
  double zipf = 1.05;           ///< user popularity skew
  int topn = 10;
  std::uint64_t load_seed = 42;

  // --- pipeline ------------------------------------------------------------
  long poll_us = 200;           ///< publisher poll interval
  /// Max checkpoints the trainer may run ahead of the served version.
  int max_staleness = 1;
  /// Registry for serving + pipeline series and assertions; null = a
  /// registry private to this run.
  obs::Registry* metrics = nullptr;
};

struct PipelineReport {
  int iterations = 0;               ///< training iterations run
  std::int64_t resumed_from = -1;   ///< checkpoint iteration resumed, or -1
  std::uint64_t swaps = 0;          ///< snapshots hot-swapped into serving
  std::uint64_t checkpoint_load_failures = 0;
  std::uint64_t index_builds = 0;
  double index_build_seconds = 0;   ///< total across builds
  std::uint64_t staleness_max = 0;  ///< worst observed versions-behind
  std::uint64_t requests_submitted = 0;
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_shed = 0;
  std::uint64_t cache_hits = 0;
  double wall_seconds = 0;
  /// Registry assertion violations at drain (empty = all invariants held:
  /// zero drops, staleness bound).
  std::vector<std::string> assertion_violations;

  bool ok() const { return assertion_violations.empty(); }
  std::string to_json() const;
};

/// Runs the full pipeline to completion: trains `options.als.iterations`
/// iterations with periodic checkpoints, publishes every checkpoint (as
/// model + freshly built index) into a RecommendService under closed-loop
/// Zipf load, and returns the evidence. Throws alsmf::Error on
/// misconfiguration (empty checkpoint_dir, no iterations).
PipelineReport run_pipeline(const Csr& train, const PipelineOptions& options);

}  // namespace alsmf::pipeline
