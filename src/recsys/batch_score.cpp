#include "recsys/batch_score.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/vecops.hpp"

namespace alsmf {

std::vector<Recommendation> topn_from_factor(std::span<const real> factor,
                                             const Matrix& y, int n,
                                             const BiasModel* bias,
                                             index_t user,
                                             std::span<const index_t> exclude) {
  ALSMF_CHECK(n >= 0);
  ALSMF_CHECK_MSG(static_cast<index_t>(factor.size()) == y.cols(),
                  "factor length does not match item factor rank");

  std::vector<Recommendation> heap;  // min-heap of the current top-n
  heap.reserve(static_cast<std::size_t>(n) + 1);
  auto cmp = [](const Recommendation& a, const Recommendation& b) {
    return a.score > b.score;  // min-heap by score
  };

  const auto k = factor.size();
  const bool user_bias = bias && user >= 0;
  std::size_t excl_pos = 0;
  for (index_t i = 0; i < y.rows(); ++i) {
    // `exclude` is sorted: advance a single cursor.
    while (excl_pos < exclude.size() && exclude[excl_pos] < i) ++excl_pos;
    if (excl_pos < exclude.size() && exclude[excl_pos] == i) continue;
    real score = vdot(factor.data(), y.row(i).data(), k);
    if (user_bias) {
      score = bias->combine(user, i, score);
    } else if (bias) {
      score += bias->global_mean() + bias->item_bias(i);
    }
    if (static_cast<int>(heap.size()) < n) {
      heap.push_back({i, score});
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (n > 0 && score > heap.front().score) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = {i, score};
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  // sort_heap with a greater-than comparator yields descending scores.
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

std::vector<std::vector<Recommendation>> topn_from_factors_batch(
    const real* factors, std::size_t count, const Matrix& y, int n,
    ThreadPool* pool, const BiasModel* bias, const index_t* users,
    const std::vector<std::vector<index_t>>* excludes) {
  ALSMF_CHECK(excludes == nullptr || excludes->size() == count);
  if (!pool) pool = &ThreadPool::global();
  const auto k = static_cast<std::size_t>(y.cols());
  std::vector<std::vector<Recommendation>> result(count);
  pool->parallel_for(0, count, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) {
      std::span<const index_t> exclude;
      if (excludes) exclude = (*excludes)[i];
      result[i] = topn_from_factor({factors + i * k, k}, y, n, bias,
                                   users ? users[i] : index_t{-1}, exclude);
    }
  });
  return result;
}

}  // namespace alsmf
