// Batched scoring: top-N computation decoupled from the Recommender facade
// so the serving layer can score arbitrary factor vectors — trained rows,
// folded-in cold users, or whole micro-batches — through one code path.
#pragma once

#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "linalg/dense.hpp"
#include "recsys/bias.hpp"
#include "recsys/recommender.hpp"

namespace alsmf {

/// Top-n items for one factor vector against item factors `y`, scores
/// descending. `exclude` (sorted ascending) items are skipped. When `bias`
/// is given, `user` selects the bias row (pass a negative user to apply
/// only μ + b_i, the cold-user baseline).
std::vector<Recommendation> topn_from_factor(std::span<const real> factor,
                                             const Matrix& y, int n,
                                             const BiasModel* bias = nullptr,
                                             index_t user = -1,
                                             std::span<const index_t> exclude = {});

/// Batched form: `count` factor vectors stored contiguously (count × y.cols()
/// reals), scored in parallel over the pool (global pool when null). `users`
/// (optional, length `count`) selects bias rows per factor; `excludes`
/// (optional, length `count`) is a per-factor sorted exclusion list.
std::vector<std::vector<Recommendation>> topn_from_factors_batch(
    const real* factors, std::size_t count, const Matrix& y, int n,
    ThreadPool* pool = nullptr, const BiasModel* bias = nullptr,
    const index_t* users = nullptr,
    const std::vector<std::vector<index_t>>* excludes = nullptr);

}  // namespace alsmf
