#include "recsys/bias.hpp"

#include <cmath>

#include "common/error.hpp"

namespace alsmf {

BiasModel BiasModel::fit(const Csr& ratings, const BiasOptions& options) {
  ALSMF_CHECK(options.sweeps >= 1);
  BiasModel model;
  model.user_bias_.assign(static_cast<std::size_t>(ratings.rows()), real{0});
  model.item_bias_.assign(static_cast<std::size_t>(ratings.cols()), real{0});

  // Global mean.
  double sum = 0;
  for (index_t u = 0; u < ratings.rows(); ++u) {
    for (real v : ratings.row_values(u)) sum += v;
  }
  model.mu_ = ratings.nnz() > 0
                  ? static_cast<real>(sum / static_cast<double>(ratings.nnz()))
                  : real{0};

  // Alternating shrunken means of the residuals (item first, as Koren).
  std::vector<double> acc;
  std::vector<nnz_t> count;
  for (int sweep = 0; sweep < options.sweeps; ++sweep) {
    // Item biases given user biases.
    acc.assign(model.item_bias_.size(), 0.0);
    count.assign(model.item_bias_.size(), 0);
    for (index_t u = 0; u < ratings.rows(); ++u) {
      auto cols = ratings.row_cols(u);
      auto vals = ratings.row_values(u);
      const real bu = model.user_bias_[static_cast<std::size_t>(u)];
      for (std::size_t p = 0; p < cols.size(); ++p) {
        acc[static_cast<std::size_t>(cols[p])] += vals[p] - model.mu_ - bu;
        ++count[static_cast<std::size_t>(cols[p])];
      }
    }
    for (std::size_t i = 0; i < model.item_bias_.size(); ++i) {
      model.item_bias_[i] = static_cast<real>(
          acc[i] / (static_cast<double>(count[i]) + options.item_shrinkage));
    }
    // User biases given item biases.
    for (index_t u = 0; u < ratings.rows(); ++u) {
      auto cols = ratings.row_cols(u);
      auto vals = ratings.row_values(u);
      double racc = 0;
      for (std::size_t p = 0; p < cols.size(); ++p) {
        racc += vals[p] - model.mu_ -
                model.item_bias_[static_cast<std::size_t>(cols[p])];
      }
      model.user_bias_[static_cast<std::size_t>(u)] = static_cast<real>(
          racc / (static_cast<double>(cols.size()) + options.user_shrinkage));
    }
  }
  return model;
}

BiasModel BiasModel::from_parts(real mu, const Matrix& user_bias,
                                const Matrix& item_bias) {
  ALSMF_CHECK(user_bias.cols() == 1 && item_bias.cols() == 1);
  BiasModel model;
  model.mu_ = mu;
  model.user_bias_.resize(static_cast<std::size_t>(user_bias.rows()));
  model.item_bias_.resize(static_cast<std::size_t>(item_bias.rows()));
  for (index_t u = 0; u < user_bias.rows(); ++u) {
    model.user_bias_[static_cast<std::size_t>(u)] = user_bias(u, 0);
  }
  for (index_t i = 0; i < item_bias.rows(); ++i) {
    model.item_bias_[static_cast<std::size_t>(i)] = item_bias(i, 0);
  }
  return model;
}

real BiasModel::predict(index_t user, index_t item) const {
  ALSMF_CHECK(user >= 0 && user < users());
  ALSMF_CHECK(item >= 0 && item < items());
  return mu_ + user_bias_[static_cast<std::size_t>(user)] +
         item_bias_[static_cast<std::size_t>(item)];
}

Csr BiasModel::residuals(const Csr& ratings) const {
  ALSMF_CHECK(ratings.rows() == users() && ratings.cols() == items());
  aligned_vector<nnz_t> row_ptr(ratings.row_ptr());
  aligned_vector<index_t> col_idx(ratings.col_idx());
  aligned_vector<real> values(static_cast<std::size_t>(ratings.nnz()));
  std::size_t pos = 0;
  for (index_t u = 0; u < ratings.rows(); ++u) {
    auto cols = ratings.row_cols(u);
    auto vals = ratings.row_values(u);
    for (std::size_t p = 0; p < cols.size(); ++p, ++pos) {
      values[pos] = vals[p] - predict(u, cols[p]);
    }
  }
  return Csr(ratings.rows(), ratings.cols(), std::move(row_ptr),
             std::move(col_idx), std::move(values));
}

double BiasModel::rmse_on(const Csr& test) const {
  if (test.nnz() == 0) return 0;
  double sse = 0;
  for (index_t u = 0; u < test.rows(); ++u) {
    auto cols = test.row_cols(u);
    auto vals = test.row_values(u);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      const double e = vals[p] - predict(u, cols[p]);
      sse += e * e;
    }
  }
  return std::sqrt(sse / static_cast<double>(test.nnz()));
}

}  // namespace alsmf
