// Baseline predictors: the global mean plus shrunken per-user and per-item
// rating biases (Koren's classic b_ui = μ + b_u + b_i). Factorizing the
// bias-removed residuals instead of the raw ratings is the standard recipe
// for better accuracy at the same rank.
#pragma once

#include <vector>

#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct BiasOptions {
  /// Shrinkage strength toward 0 for sparsely observed users/items
  /// (b = Σresidual / (count + shrinkage)).
  real user_shrinkage = 10.0f;
  real item_shrinkage = 25.0f;
  /// Alternating refinement sweeps over (item, user) biases.
  int sweeps = 2;
};

class BiasModel {
 public:
  BiasModel() = default;

  /// Fits μ, b_i, then b_u (alternating `sweeps` times) on the ratings.
  static BiasModel fit(const Csr& ratings, const BiasOptions& options = {});

  /// Reconstructs a model from serialized parts (μ plus the two bias
  /// vectors stored as 1-column matrices).
  static BiasModel from_parts(real mu, const Matrix& user_bias,
                              const Matrix& item_bias);

  real global_mean() const { return mu_; }
  real user_bias(index_t u) const { return user_bias_.at(static_cast<std::size_t>(u)); }
  real item_bias(index_t i) const { return item_bias_.at(static_cast<std::size_t>(i)); }

  /// Baseline prediction μ + b_u + b_i.
  real predict(index_t user, index_t item) const;

  /// Returns a copy of the ratings with the baseline subtracted — the
  /// residual matrix to factorize.
  Csr residuals(const Csr& ratings) const;

  /// Adds the baseline back onto a factor-model prediction.
  real combine(index_t user, index_t item, real factor_score) const {
    return predict(user, item) + factor_score;
  }

  /// RMSE of the baseline alone on held-out data.
  double rmse_on(const Csr& test) const;

  index_t users() const { return static_cast<index_t>(user_bias_.size()); }
  index_t items() const { return static_cast<index_t>(item_bias_.size()); }

 private:
  real mu_ = 0;
  std::vector<real> user_bias_, item_bias_;
};

}  // namespace alsmf
