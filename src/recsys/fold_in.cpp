#include "recsys/fold_in.hpp"

#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "linalg/vecops.hpp"

namespace alsmf {

namespace {

std::vector<real> fold_in(const Matrix& factors, std::span<const index_t> ids,
                          std::span<const real> ratings, real lambda,
                          LinearSolverKind solver) {
  ALSMF_CHECK_MSG(ids.size() == ratings.size(),
                  "fold-in got " + std::to_string(ids.size()) + " ids but " +
                      std::to_string(ratings.size()) + " ratings");
  ALSMF_CHECK_MSG(!ids.empty(), "fold-in needs at least one rating");
  ALSMF_CHECK_MSG(lambda > 0.0f, "fold-in lambda must be positive");
  const auto k = static_cast<int>(factors.cols());
  for (auto id : ids) {
    ALSMF_CHECK_MSG(id >= 0 && id < factors.rows(),
                    "fold-in id " + std::to_string(id) + " outside [0, " +
                        std::to_string(factors.rows()) + ")");
  }
  std::vector<real> smat(static_cast<std::size_t>(k) * static_cast<std::size_t>(k));
  std::vector<real> svec(static_cast<std::size_t>(k));
  assemble_normal_equations(ids, ratings, factors, lambda, k, smat.data(),
                            svec.data());
  solve_normal_equations(smat.data(), svec.data(), k, solver);
  return svec;
}

}  // namespace

std::vector<real> fold_in_user(const Matrix& y, std::span<const index_t> items,
                               std::span<const real> ratings, real lambda,
                               LinearSolverKind solver) {
  return fold_in(y, items, ratings, lambda, solver);
}

std::vector<real> fold_in_item(const Matrix& x, std::span<const index_t> users,
                               std::span<const real> ratings, real lambda,
                               LinearSolverKind solver) {
  return fold_in(x, users, ratings, lambda, solver);
}

real fold_in_predict(std::span<const real> user_factor, const Matrix& y,
                     index_t item) {
  ALSMF_CHECK(item >= 0 && item < y.rows());
  ALSMF_CHECK(static_cast<index_t>(user_factor.size()) == y.cols());
  return vdot(user_factor.data(), y.row(item).data(), user_factor.size());
}

}  // namespace alsmf
