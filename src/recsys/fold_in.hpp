// Fold-in: serve a brand-new user (or item) without retraining. Given the
// trained item factors Y and the newcomer's handful of ratings, the user's
// factor is exactly one ALS row-solve — the same (YᵀY+λI)x = Yᵀr system
// the training kernels solve per row.
#pragma once

#include <span>
#include <vector>

#include "als/options.hpp"
#include "linalg/dense.hpp"
#include "sparse/coo.hpp"

namespace alsmf {

/// Computes the factor vector for a new user from (item, rating) pairs
/// against the trained item factors. Items must be < y.rows().
std::vector<real> fold_in_user(const Matrix& y,
                               std::span<const index_t> items,
                               std::span<const real> ratings, real lambda,
                               LinearSolverKind solver = LinearSolverKind::kCholesky);

/// Symmetric: factor for a new item from (user, rating) pairs against the
/// trained user factors.
std::vector<real> fold_in_item(const Matrix& x,
                               std::span<const index_t> users,
                               std::span<const real> ratings, real lambda,
                               LinearSolverKind solver = LinearSolverKind::kCholesky);

/// Predicted score of a folded-in factor against an item factor.
real fold_in_predict(std::span<const real> user_factor, const Matrix& y,
                     index_t item);

}  // namespace alsmf
