#include "recsys/npy.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace alsmf {

namespace {
constexpr char kMagic[6] = {'\x93', 'N', 'U', 'M', 'P', 'Y'};
}

void write_npy(std::ostream& out, const Matrix& matrix) {
  std::ostringstream header;
  header << "{'descr': '<f4', 'fortran_order': False, 'shape': ("
         << matrix.rows() << ", " << matrix.cols() << "), }";
  std::string h = header.str();
  // Total header (magic 6 + version 2 + len 2 + dict) padded to 64 bytes,
  // terminated with \n, as the format requires.
  const std::size_t unpadded = 10 + h.size() + 1;
  const std::size_t padded = (unpadded + 63) / 64 * 64;
  h.append(padded - unpadded, ' ');
  h.push_back('\n');

  out.write(kMagic, sizeof(kMagic));
  out.put('\x01');
  out.put('\x00');
  const auto hlen = static_cast<std::uint16_t>(h.size());
  out.put(static_cast<char>(hlen & 0xff));
  out.put(static_cast<char>(hlen >> 8));
  out.write(h.data(), static_cast<std::streamsize>(h.size()));
  out.write(reinterpret_cast<const char*>(matrix.data()),
            static_cast<std::streamsize>(matrix.size() * sizeof(real)));
}

void write_npy_file(const std::string& path, const Matrix& matrix) {
  std::ofstream out(path, std::ios::binary);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_npy(out, matrix);
}

Matrix read_npy(std::istream& in, const std::string& context) {
  char magic[6];
  in.read(magic, sizeof(magic));
  ALSMF_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 6) == 0,
                  context + ": not an .npy stream");
  char major = 0, minor = 0;
  in.get(major);
  in.get(minor);
  ALSMF_CHECK_MSG(major == 1, context + ": unsupported .npy version");
  unsigned char lo = 0, hi = 0;
  lo = static_cast<unsigned char>(in.get());
  hi = static_cast<unsigned char>(in.get());
  const std::size_t hlen = static_cast<std::size_t>(lo) |
                           (static_cast<std::size_t>(hi) << 8);
  std::string header(hlen, '\0');
  in.read(header.data(), static_cast<std::streamsize>(hlen));
  ALSMF_CHECK_MSG(in.good(), context + ": truncated .npy header");

  ALSMF_CHECK_MSG(header.find("'<f4'") != std::string::npos,
                  context + ": .npy dtype must be little-endian float32");
  ALSMF_CHECK_MSG(header.find("'fortran_order': False") != std::string::npos,
                  context + ": .npy must be C-order");
  const auto shape_pos = header.find("'shape': (");
  ALSMF_CHECK_MSG(shape_pos != std::string::npos,
                  context + ": missing .npy shape");
  long long rows = 0, cols = 0;
  {
    std::istringstream shape(header.substr(shape_pos + 10));
    char comma = 0;
    shape >> rows >> comma >> cols;
    ALSMF_CHECK_MSG(!shape.fail() && comma == ',' && rows >= 0 && cols >= 0,
                    context + ": bad .npy shape (need 2-D)");
  }
  const std::size_t data_offset = 10 + hlen;  // magic+version+len+header
  Matrix m(rows, cols);
  const std::size_t want = m.size() * sizeof(real);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(want));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got != want) {
    throw Error(context + ": truncated .npy data at offset " +
                std::to_string(data_offset + got) + " (wanted " +
                std::to_string(want) + " payload bytes, got " +
                std::to_string(got) + ")");
  }
  // A factor matrix with NaN/Inf poisons every dot product downstream;
  // refuse it at the door with a pinpointed offset.
  for (index_t r = 0; r < m.rows(); ++r) {
    for (index_t c = 0; c < m.cols(); ++c) {
      if (!std::isfinite(m(r, c))) {
        const std::size_t flat =
            static_cast<std::size_t>(r) * static_cast<std::size_t>(m.cols()) +
            static_cast<std::size_t>(c);
        throw Error(context + ": non-finite value at row " + std::to_string(r) +
                    ", col " + std::to_string(c) + " (offset " +
                    std::to_string(data_offset + flat * sizeof(real)) + ")");
      }
    }
  }
  return m;
}

Matrix read_npy_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ALSMF_CHECK_MSG(in.good(), "cannot open for read: " + path);
  return read_npy(in, path);
}

}  // namespace alsmf
