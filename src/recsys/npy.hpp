// NumPy .npy (format version 1.0) export/import for factor matrices — the
// lingua franca for downstream analysis in Python
// (`np.load("user_factors.npy")`).
#pragma once

#include <iosfwd>
#include <string>

#include "linalg/dense.hpp"

namespace alsmf {

/// Writes a row-major float32 matrix as an .npy v1.0 file.
void write_npy(std::ostream& out, const Matrix& matrix);
void write_npy_file(const std::string& path, const Matrix& matrix);

/// Reads a 2-D little-endian float32 C-order .npy v1.0 file (exactly what
/// write_npy produces; also accepts NumPy's own output for such arrays).
/// Rejects truncated payloads and non-finite (NaN/Inf) values with an
/// error naming `context` (the file path, for read_npy_file) and the byte
/// offset of the problem.
Matrix read_npy(std::istream& in, const std::string& context = "<stream>");
Matrix read_npy_file(const std::string& path);

}  // namespace alsmf
