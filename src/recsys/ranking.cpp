#include "recsys/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"
#include "linalg/vecops.hpp"

namespace alsmf {

double dcg_at_n(const std::vector<int>& relevance, int n) {
  double dcg = 0;
  const int limit = std::min<int>(n, static_cast<int>(relevance.size()));
  for (int i = 0; i < limit; ++i) {
    if (relevance[static_cast<std::size_t>(i)]) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  return dcg;
}

RankingMetrics evaluate_ranking(const Csr& train, const Csr& test,
                                const Matrix& x, const Matrix& y, int n) {
  ALSMF_CHECK(train.rows() == test.rows());
  ALSMF_CHECK(train.cols() == test.cols());
  ALSMF_CHECK(x.rows() == train.rows());
  ALSMF_CHECK(y.rows() == train.cols());
  ALSMF_CHECK(n > 0);

  RankingMetrics m;
  const auto k = static_cast<std::size_t>(x.cols());
  const index_t items = train.cols();

  std::vector<std::pair<real, index_t>> scored;
  for (index_t u = 0; u < train.rows(); ++u) {
    auto test_items = test.row_cols(u);
    if (test_items.empty()) continue;
    ++m.evaluated_users;

    std::unordered_set<index_t> train_set(train.row_cols(u).begin(),
                                          train.row_cols(u).end());
    std::unordered_set<index_t> test_set(test_items.begin(), test_items.end());

    // Score all candidate (non-train) items.
    scored.clear();
    const real* xu = x.row(u).data();
    for (index_t i = 0; i < items; ++i) {
      if (train_set.count(i)) continue;
      scored.push_back({vdot(xu, y.row(i).data(), k), i});
    }
    const int top = std::min<int>(n, static_cast<int>(scored.size()));
    std::partial_sort(scored.begin(), scored.begin() + top, scored.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;  // deterministic ties
                      });

    // Top-n relevance.
    int hits = 0;
    std::vector<int> relevance(static_cast<std::size_t>(top));
    for (int i = 0; i < top; ++i) {
      relevance[static_cast<std::size_t>(i)] =
          test_set.count(scored[static_cast<std::size_t>(i)].second) ? 1 : 0;
      hits += relevance[static_cast<std::size_t>(i)];
    }
    m.hit_rate += hits > 0 ? 1.0 : 0.0;
    m.precision += static_cast<double>(hits) / static_cast<double>(top);
    m.recall +=
        static_cast<double>(hits) / static_cast<double>(test_set.size());

    // NDCG: ideal DCG puts all test items first.
    std::vector<int> ideal(static_cast<std::size_t>(top), 0);
    const int ideal_hits =
        std::min<int>(top, static_cast<int>(test_set.size()));
    std::fill(ideal.begin(), ideal.begin() + ideal_hits, 1);
    const double idcg = dcg_at_n(ideal, top);
    if (idcg > 0) m.ndcg += dcg_at_n(relevance, top) / idcg;

    // AUC over the full candidate ranking: fraction of (test, non-test)
    // pairs ordered correctly. Computed from test-item ranks.
    // rank r (0-based, best first); correct pairs for a test item at rank
    // r = (#non-test below it) = (candidates - 1 - r) - (test items below).
    std::vector<std::size_t> test_ranks;
    // Need full ordering for AUC: sort everything (scored already partially
    // sorted; re-sort fully).
    std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    for (std::size_t r = 0; r < scored.size(); ++r) {
      if (test_set.count(scored[r].second)) test_ranks.push_back(r);
    }
    const double num_test = static_cast<double>(test_ranks.size());
    const double num_neg = static_cast<double>(scored.size()) - num_test;
    if (num_test > 0 && num_neg > 0) {
      double correct = 0;
      for (std::size_t i = 0; i < test_ranks.size(); ++i) {
        // negatives ranked below this test item:
        const double below =
            static_cast<double>(scored.size() - 1 - test_ranks[i]) -
            (num_test - 1 - static_cast<double>(i));
        correct += below;
      }
      m.auc += correct / (num_test * num_neg);
    } else {
      m.auc += 0.5;
    }
  }

  if (m.evaluated_users > 0) {
    const double users = static_cast<double>(m.evaluated_users);
    m.hit_rate /= users;
    m.precision /= users;
    m.recall /= users;
    m.ndcg /= users;
    m.auc /= users;
  }
  return m;
}

double recall_at_n(std::span<const index_t> approx,
                   std::span<const index_t> exact) {
  if (exact.empty()) return 1.0;
  std::vector<index_t> want(exact.begin(), exact.end());
  std::sort(want.begin(), want.end());
  want.erase(std::unique(want.begin(), want.end()), want.end());
  std::vector<index_t> got(approx.begin(), approx.end());
  std::sort(got.begin(), got.end());
  got.erase(std::unique(got.begin(), got.end()), got.end());
  std::size_t hits = 0;
  for (const index_t item : got) {
    if (std::binary_search(want.begin(), want.end(), item)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(want.size());
}

double recall_at_n(const std::vector<Recommendation>& approx,
                   const std::vector<Recommendation>& exact) {
  std::vector<index_t> a, e;
  a.reserve(approx.size());
  e.reserve(exact.size());
  for (const auto& r : approx) a.push_back(r.item);
  for (const auto& r : exact) e.push_back(r.item);
  return recall_at_n(std::span<const index_t>(a), std::span<const index_t>(e));
}

}  // namespace alsmf
