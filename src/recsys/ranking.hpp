// Top-N ranking quality metrics, the standard evaluation for implicit
// feedback recommenders (hit rate, precision/recall, NDCG, per-user AUC).
#pragma once

#include <span>
#include <vector>

#include "linalg/dense.hpp"
#include "recsys/recommender.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct RankingMetrics {
  double hit_rate = 0;    ///< fraction of users with >=1 test item in top-n
  double precision = 0;   ///< mean fraction of top-n that are test items
  double recall = 0;      ///< mean fraction of test items inside top-n
  double ndcg = 0;        ///< mean normalized discounted cumulative gain
  double auc = 0;         ///< mean pairwise ranking AUC (test vs unseen)
  index_t evaluated_users = 0;  ///< users with at least one test item
};

/// Scores every item by x_uᵀy_i, excludes the user's training items, and
/// compares the top-n ranking against the held-out `test` items.
/// Users without test items are skipped.
RankingMetrics evaluate_ranking(const Csr& train, const Csr& test,
                                const Matrix& x, const Matrix& y, int n);

/// DCG of a single ranked 0/1 relevance list (log2 discounts).
double dcg_at_n(const std::vector<int>& relevance, int n);

/// Recall@N of an approximate top-N list against the exact one, in the
/// pairwise-set form |approx ∩ exact| / |exact|: order is ignored, only
/// membership counts, so ties reordered by an ANN index don't hurt a result
/// that returns the same set. An empty exact list yields 1 (nothing to
/// recall). Duplicates are counted once.
double recall_at_n(std::span<const index_t> approx,
                   std::span<const index_t> exact);
double recall_at_n(const std::vector<Recommendation>& approx,
                   const std::vector<Recommendation>& exact);

}  // namespace alsmf
