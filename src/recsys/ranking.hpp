// Top-N ranking quality metrics, the standard evaluation for implicit
// feedback recommenders (hit rate, precision/recall, NDCG, per-user AUC).
#pragma once

#include <vector>

#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct RankingMetrics {
  double hit_rate = 0;    ///< fraction of users with >=1 test item in top-n
  double precision = 0;   ///< mean fraction of top-n that are test items
  double recall = 0;      ///< mean fraction of test items inside top-n
  double ndcg = 0;        ///< mean normalized discounted cumulative gain
  double auc = 0;         ///< mean pairwise ranking AUC (test vs unseen)
  index_t evaluated_users = 0;  ///< users with at least one test item
};

/// Scores every item by x_uᵀy_i, excludes the user's training items, and
/// compares the top-n ranking against the held-out `test` items.
/// Users without test items are skipped.
RankingMetrics evaluate_ranking(const Csr& train, const Csr& test,
                                const Matrix& x, const Matrix& y, int n);

/// DCG of a single ranked 0/1 relevance list (log2 discounts).
double dcg_at_n(const std::vector<int>& relevance, int n);

}  // namespace alsmf
