#include "recsys/recommender.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "als/metrics.hpp"
#include "als/solver.hpp"
#include "als/variant_select.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "linalg/vecops.hpp"
#include "recsys/batch_score.hpp"
#include "recsys/npy.hpp"

namespace alsmf {

namespace {
constexpr char kModelMagic[8] = {'A', 'L', 'S', 'M', 'D', 'L', '0', '1'};
constexpr char kModelMagicV2[8] = {'A', 'L', 'S', 'M', 'D', 'L', '0', '2'};

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}
template <class T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  ALSMF_CHECK_MSG(in.good(), "truncated model stream");
}

void write_matrix(std::ostream& out, const Matrix& m) {
  write_pod(out, static_cast<std::int64_t>(m.rows()));
  write_pod(out, static_cast<std::int64_t>(m.cols()));
  out.write(reinterpret_cast<const char*>(m.data()),
            static_cast<std::streamsize>(m.size() * sizeof(real)));
}

Matrix read_matrix(std::istream& in) {
  std::int64_t rows = 0, cols = 0;
  read_pod(in, rows);
  read_pod(in, cols);
  ALSMF_CHECK_MSG(rows >= 0 && cols >= 0, "bad model matrix shape");
  Matrix m(rows, cols);
  in.read(reinterpret_cast<char*>(m.data()),
          static_cast<std::streamsize>(m.size() * sizeof(real)));
  ALSMF_CHECK_MSG(in.good(), "truncated model stream");
  return m;
}
}  // namespace

Recommender Recommender::from_factors(Matrix x, Matrix y) {
  ALSMF_CHECK_MSG(x.cols() == y.cols(),
                  "factor matrices must share the latent dimension k");
  Recommender rec;
  rec.x_ = std::move(x);
  rec.y_ = std::move(y);
  rec.trained_ = true;
  return rec;
}

TrainReport Recommender::train(const Csr& ratings, const AlsOptions& options,
                               const devsim::DeviceProfile& profile) {
  return train(ratings, options,
               profile, select_variant_heuristic(ratings, options, profile));
}

TrainReport Recommender::train(const Csr& ratings, const AlsOptions& options,
                               const devsim::DeviceProfile& profile,
                               const AlsVariant& variant) {
  Timer wall;
  devsim::Device device(profile);
  AlsOptions opts = options;
  opts.functional = true;
  AlsSolver solver(ratings, opts, variant, device);
  TrainReport report;
  RunConfig run_config;
  run_config.iterations = opts.iterations;
  report.modeled_seconds = solver.run(run_config).modeled_seconds;
  report.wall_seconds = wall.seconds();
  report.train_rmse = solver.train_rmse();
  report.variant = variant;
  report.device = profile.name;
  x_ = solver.x();
  y_ = solver.y();
  trained_ = true;
  return report;
}

real Recommender::predict(index_t user, index_t item) const {
  ALSMF_CHECK_MSG(trained_, "predict() before train()/load()");
  ALSMF_CHECK(user >= 0 && user < users());
  ALSMF_CHECK(item >= 0 && item < items());
  const real factor_score = vdot(x_.row(user).data(), y_.row(item).data(),
                                 static_cast<std::size_t>(k()));
  return has_bias_ ? bias_.combine(user, item, factor_score) : factor_score;
}

std::vector<Recommendation> Recommender::recommend(index_t user, int n,
                                                   const Csr* rated) const {
  ALSMF_CHECK_MSG(trained_, "recommend() before train()/load()");
  ALSMF_CHECK(user >= 0 && user < users());
  ALSMF_CHECK(n >= 0);

  std::span<const index_t> exclude;
  if (rated && user < rated->rows()) exclude = rated->row_cols(user);
  // `exclude` is sorted (CSR invariant), as topn_from_factor requires.
  return topn_from_factor(x_.row(user), y_, n, has_bias_ ? &bias_ : nullptr,
                          user, exclude);
}

std::vector<std::vector<Recommendation>> Recommender::recommend_batch(
    std::span<const index_t> users, int n, const Csr* rated,
    ThreadPool* pool) const {
  ALSMF_CHECK_MSG(trained_, "recommend_batch() before train()/load()");
  if (!pool) pool = &ThreadPool::global();
  std::vector<std::vector<Recommendation>> result(users.size());
  pool->parallel_for(0, users.size(),
                     [&](std::size_t b, std::size_t e, unsigned) {
                       for (std::size_t i = b; i < e; ++i) {
                         result[i] = recommend(users[i], n, rated);
                       }
                     });
  return result;
}

double Recommender::rmse_on(const Coo& test) const {
  ALSMF_CHECK_MSG(trained_, "rmse_on() before train()/load()");
  if (!has_bias_) return rmse(test, x_, y_);
  double sse = 0;
  for (const auto& t : test.entries()) {
    const double e = static_cast<double>(t.value) - predict(t.row, t.col);
    sse += e * e;
  }
  return test.nnz() > 0 ? std::sqrt(sse / static_cast<double>(test.nnz()))
                        : 0.0;
}

void Recommender::save(std::ostream& out) const {
  ALSMF_CHECK_MSG(trained_, "save() before train()/load()");
  if (!has_bias_) {
    out.write(kModelMagic, sizeof(kModelMagic));
    write_matrix(out, x_);
    write_matrix(out, y_);
    return;
  }
  out.write(kModelMagicV2, sizeof(kModelMagicV2));
  write_matrix(out, x_);
  write_matrix(out, y_);
  // Bias block: mu, then the two bias vectors as 1-column matrices.
  const real mu = bias_.global_mean();
  write_pod(out, mu);
  Matrix bu(users(), 1), bi(items(), 1);
  for (index_t u = 0; u < users(); ++u) bu(u, 0) = bias_.user_bias(u);
  for (index_t i = 0; i < items(); ++i) bi(i, 0) = bias_.item_bias(i);
  write_matrix(out, bu);
  write_matrix(out, bi);
}

void Recommender::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  save(out);
}

Recommender Recommender::load(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  const bool v1 = in.good() && std::memcmp(magic, kModelMagic, 8) == 0;
  const bool v2 = in.good() && std::memcmp(magic, kModelMagicV2, 8) == 0;
  ALSMF_CHECK_MSG(v1 || v2, "bad model magic");
  Recommender r;
  r.x_ = read_matrix(in);
  r.y_ = read_matrix(in);
  ALSMF_CHECK_MSG(r.x_.cols() == r.y_.cols(), "inconsistent factor ranks");
  if (v2) {
    real mu = 0;
    read_pod(in, mu);
    const Matrix bu = read_matrix(in);
    const Matrix bi = read_matrix(in);
    ALSMF_CHECK_MSG(bu.rows() == r.x_.rows() && bi.rows() == r.y_.rows(),
                    "bias block shape mismatch");
    r.bias_ = BiasModel::from_parts(mu, bu, bi);
    r.has_bias_ = true;
  }
  r.trained_ = true;
  return r;
}

TrainReport Recommender::train_with_bias(const Csr& ratings,
                                         const AlsOptions& options,
                                         const devsim::DeviceProfile& profile,
                                         const BiasOptions& bias_options) {
  bias_ = BiasModel::fit(ratings, bias_options);
  const Csr residuals = bias_.residuals(ratings);
  TrainReport report = train(residuals, options, profile);
  has_bias_ = true;
  // train() computed the RMSE of the factor part against the residuals,
  // which equals the combined model's RMSE against the raw ratings.
  return report;
}

void Recommender::export_factors_npy(const std::string& prefix) const {
  ALSMF_CHECK_MSG(trained_, "export before train()/load()");
  write_npy_file(prefix + "user_factors.npy", x_);
  write_npy_file(prefix + "item_factors.npy", y_);
}

Recommender Recommender::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ALSMF_CHECK_MSG(in.good(), "cannot open for read: " + path);
  return load(in);
}

}  // namespace alsmf
