// Recommender: the end-user facade. Trains a factor model with the
// portable ALS solver, serves predictions and top-N recommendations, and
// round-trips models to disk.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "als/options.hpp"
#include "common/thread_pool.hpp"
#include "devsim/profile.hpp"
#include "linalg/dense.hpp"
#include "recsys/bias.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct Recommendation {
  index_t item;
  real score;
};

struct TrainReport {
  double modeled_seconds = 0;  ///< device-model time of the training run
  double wall_seconds = 0;     ///< host wall-clock
  double train_rmse = 0;
  AlsVariant variant;          ///< code variant that was used
  std::string device;          ///< device profile name
};

class Recommender {
 public:
  Recommender() = default;

  /// Trains on the ratings with the given hyperparameters. The variant is
  /// auto-selected for the device profile unless one is supplied.
  TrainReport train(const Csr& ratings, const AlsOptions& options,
                    const devsim::DeviceProfile& profile);
  TrainReport train(const Csr& ratings, const AlsOptions& options,
                    const devsim::DeviceProfile& profile,
                    const AlsVariant& variant);

  /// Trains with baseline predictors: fits μ + b_u + b_i first, then
  /// factorizes the bias-removed residuals (better accuracy at equal rank).
  /// Predictions and recommendations automatically add the baseline back.
  TrainReport train_with_bias(const Csr& ratings, const AlsOptions& options,
                              const devsim::DeviceProfile& profile,
                              const BiasOptions& bias_options = {});

  bool has_bias() const { return has_bias_; }
  const BiasModel& bias() const { return bias_; }

  /// Wraps factor matrices produced elsewhere (e.g. a checkpointed AlsSolver
  /// run) into a ready-to-serve Recommender.
  static Recommender from_factors(Matrix x, Matrix y);

  bool trained() const { return trained_; }
  index_t users() const { return x_.rows(); }
  index_t items() const { return y_.rows(); }
  int k() const { return static_cast<int>(x_.cols()); }

  /// Predicted rating x_uᵀ y_i.
  real predict(index_t user, index_t item) const;

  /// Top-n items for `user` by predicted score, excluding the user's
  /// already-rated items when `rated` is given (typical serving behaviour).
  std::vector<Recommendation> recommend(index_t user, int n,
                                        const Csr* rated = nullptr) const;

  /// Batch serving: top-n lists for many users, parallel over users.
  std::vector<std::vector<Recommendation>> recommend_batch(
      std::span<const index_t> users, int n, const Csr* rated = nullptr,
      ThreadPool* pool = nullptr) const;

  /// Evaluation on held-out ratings.
  double rmse_on(const Coo& test) const;

  /// Exports the factor matrices as NumPy files: `<prefix>user_factors.npy`
  /// and `<prefix>item_factors.npy`, for downstream Python analysis.
  void export_factors_npy(const std::string& prefix) const;

  /// Binary model serialization (versioned, validated on load).
  void save(std::ostream& out) const;
  void save_file(const std::string& path) const;
  static Recommender load(std::istream& in);
  static Recommender load_file(const std::string& path);

  const Matrix& user_factors() const { return x_; }
  const Matrix& item_factors() const { return y_; }

 private:
  Matrix x_, y_;
  BiasModel bias_;
  bool has_bias_ = false;
  bool trained_ = false;
};

}  // namespace alsmf
