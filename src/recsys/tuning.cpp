#include "recsys/tuning.hpp"

#include <algorithm>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "common/error.hpp"
#include "data/split.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

TuningResult grid_search(const Coo& ratings, const TuningGrid& grid,
                         ThreadPool* pool) {
  ALSMF_CHECK(!grid.ks.empty() && !grid.lambdas.empty());
  ALSMF_CHECK(grid.validation_fraction > 0.0 &&
              grid.validation_fraction < 1.0);
  if (!pool) pool = &ThreadPool::global();

  auto [train_coo, valid_coo] =
      split_holdout(ratings, grid.validation_fraction, grid.seed);
  const Csr train = coo_to_csr(train_coo);
  const Coo& valid = valid_coo;

  // Materialize the grid; train points in parallel (each training run is
  // itself sequential — the parallelism budget goes to the grid).
  std::vector<TuningCandidate> candidates;
  for (int k : grid.ks) {
    for (real lambda : grid.lambdas) {
      TuningCandidate c;
      c.k = k;
      c.lambda = lambda;
      candidates.push_back(c);
    }
  }

  pool->parallel_for(0, candidates.size(),
                     [&](std::size_t b, std::size_t e, unsigned) {
                       for (std::size_t i = b; i < e; ++i) {
                         AlsOptions options;
                         options.k = candidates[i].k;
                         options.lambda = candidates[i].lambda;
                         options.iterations = grid.iterations;
                         options.weighted_regularization =
                             grid.weighted_regularization;
                         options.seed = grid.seed;
                         const auto result = reference_als(train, options);
                         candidates[i].validation_rmse =
                             rmse(valid, result.x, result.y);
                         candidates[i].train_rmse =
                             rmse(train, result.x, result.y);
                       }
                     });

  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const TuningCandidate& a, const TuningCandidate& b) {
                     return a.validation_rmse < b.validation_rmse;
                   });
  TuningResult result;
  result.best = candidates.front();
  result.all = std::move(candidates);
  return result;
}

}  // namespace alsmf
