// Hyperparameter search: grid search over (k, lambda) with a validation
// split, using the reference solver (functional, host-parallel).
#pragma once

#include <vector>

#include "als/options.hpp"
#include "common/thread_pool.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct TuningGrid {
  std::vector<int> ks = {5, 10, 20};
  std::vector<real> lambdas = {0.01f, 0.05f, 0.1f, 0.5f};
  int iterations = 10;
  bool weighted_regularization = false;
  double validation_fraction = 0.1;
  std::uint64_t seed = 42;
};

struct TuningCandidate {
  int k = 0;
  real lambda = 0;
  double validation_rmse = 0;
  double train_rmse = 0;
};

struct TuningResult {
  TuningCandidate best;
  std::vector<TuningCandidate> all;  ///< every grid point, sorted by RMSE
};

/// Splits `ratings` into train/validation, trains every grid point, and
/// returns the candidates ordered by validation RMSE (best first).
TuningResult grid_search(const Coo& ratings, const TuningGrid& grid,
                         ThreadPool* pool = nullptr);

}  // namespace alsmf
