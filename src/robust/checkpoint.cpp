#include "robust/checkpoint.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "robust/crc32.hpp"
#include "robust/fault_injection.hpp"

namespace alsmf::robust {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'A', 'L', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr char kTagHeader[4] = {'H', 'D', 'R', '\0'};
constexpr char kTagX[4] = {'X', 'F', 'A', 'C'};
constexpr char kTagY[4] = {'Y', 'F', 'A', 'C'};
constexpr char kTagEnd[4] = {'E', 'N', 'D', '\0'};
constexpr const char* kSuffix = ".alsckpt";

[[noreturn]] void corrupt(const std::string& path, std::uint64_t offset,
                          const std::string& what) {
  throw Error("checkpoint " + path + ": " + what + " at offset " +
              std::to_string(offset));
}

/// Sequential writer that checksums each section payload as it streams.
class SectionWriter {
 public:
  explicit SectionWriter(std::ostream& out) : out_(out) {}

  void begin(const char tag[4], std::uint64_t payload_len) {
    out_.write(tag, 4);
    write_pod(payload_len);
    crc_ = 0;
  }
  void payload(const void* data, std::size_t len) {
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(len));
    crc_ = crc32(data, len, crc_);
  }
  void end() { write_pod(crc_); }

  template <class T>
  void payload_pod(const T& v) {
    payload(&v, sizeof(T));
  }

 private:
  template <class T>
  void write_pod(const T& v) {
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }
  std::ostream& out_;
  std::uint32_t crc_ = 0;
};

/// Sequential reader tracking the byte offset for error messages and
/// honoring injected I/O truncation faults.
class SectionReader {
 public:
  SectionReader(std::istream& in, const std::string& path,
                std::uint64_t file_size)
      : in_(in), path_(path), file_size_(file_size) {}

  void read(void* dst, std::size_t len, const char* what) {
    if (fault_at(FaultSite::kIoRead)) {
      corrupt(path_, offset_,
              std::string("injected I/O fault: read of ") + what +
                  " truncated");
    }
    in_.read(static_cast<char*>(dst), static_cast<std::streamsize>(len));
    const auto got = static_cast<std::size_t>(in_.gcount());
    if (got != len) {
      corrupt(path_, offset_ + got,
              std::string("truncated ") + what + " (wanted " +
                  std::to_string(len) + " bytes, got " + std::to_string(got) +
                  ")");
    }
    offset_ += len;
  }

  template <class T>
  T read_pod(const char* what) {
    T v{};
    read(&v, sizeof(T), what);
    return v;
  }

  std::uint64_t offset() const { return offset_; }
  std::uint64_t remaining() const {
    return file_size_ > offset_ ? file_size_ - offset_ : 0;
  }
  const std::string& path() const { return path_; }

 private:
  std::istream& in_;
  std::string path_;
  std::uint64_t file_size_;
  std::uint64_t offset_ = 0;
};

struct HeaderPayload {
  std::uint32_t format_version = kCheckpointFormatVersion;
  std::uint32_t reserved = 0;
  std::uint64_t options_hash = 0;
  std::int64_t iteration = 0;
  std::uint64_t rng_state[4] = {};
};
static_assert(sizeof(HeaderPayload) == 56);

void write_matrix_section(SectionWriter& w, const char tag[4],
                          const Matrix& m) {
  const std::uint64_t len = 16 + m.size() * sizeof(real);
  w.begin(tag, len);
  w.payload_pod(static_cast<std::int64_t>(m.rows()));
  w.payload_pod(static_cast<std::int64_t>(m.cols()));
  w.payload(m.data(), m.size() * sizeof(real));
  w.end();
}

Matrix read_matrix_section(SectionReader& r, std::uint64_t payload_len,
                           const char* what) {
  const std::uint64_t section_start = r.offset();
  if (payload_len < 16 || payload_len > r.remaining()) {
    corrupt(r.path(), section_start,
            std::string("bad ") + what + " payload length " +
                std::to_string(payload_len));
  }
  std::uint32_t crc = 0;
  const auto rows = r.read_pod<std::int64_t>(what);
  const auto cols = r.read_pod<std::int64_t>(what);
  crc = crc32(&rows, sizeof(rows), crc);
  crc = crc32(&cols, sizeof(cols), crc);
  if (rows < 0 || cols < 0 ||
      static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols) *
              sizeof(real) !=
          payload_len - 16) {
    corrupt(r.path(), section_start,
            std::string("bad ") + what + " shape " + std::to_string(rows) +
                "x" + std::to_string(cols));
  }
  Matrix m(static_cast<index_t>(rows), static_cast<index_t>(cols));
  r.read(m.data(), m.size() * sizeof(real), what);
  crc = crc32(m.data(), m.size() * sizeof(real), crc);
  const auto stored = r.read_pod<std::uint32_t>("section crc");
  if (stored != crc) {
    corrupt(r.path(), section_start,
            std::string(what) + " CRC mismatch (stored " +
                std::to_string(stored) + ", computed " + std::to_string(crc) +
                ")");
  }
  return m;
}

}  // namespace

void save_checkpoint_file(const std::string& path,
                          const TrainingCheckpoint& ckpt) {
  const fs::path target(path);
  if (target.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(target.parent_path(), ec);
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    ALSMF_CHECK_MSG(out.good(), "cannot open checkpoint for write: " + tmp);
    out.write(kMagic, sizeof(kMagic));

    SectionWriter w(out);
    HeaderPayload header;
    header.options_hash = ckpt.options_hash;
    header.iteration = ckpt.iteration;
    std::copy(ckpt.rng_state.begin(), ckpt.rng_state.end(), header.rng_state);
    w.begin(kTagHeader, sizeof(HeaderPayload));
    w.payload_pod(header);
    w.end();

    write_matrix_section(w, kTagX, ckpt.x);
    write_matrix_section(w, kTagY, ckpt.y);

    w.begin(kTagEnd, 0);
    w.end();

    out.flush();
    ALSMF_CHECK_MSG(out.good(), "short write to checkpoint: " + tmp);
  }
  // Publish atomically: a crash before this rename leaves only the .tmp;
  // a crash after it leaves the complete new checkpoint.
  std::error_code ec;
  fs::rename(tmp, target, ec);
  ALSMF_CHECK_MSG(!ec, "cannot rename " + tmp + " -> " + path + ": " +
                           ec.message());
}

TrainingCheckpoint load_checkpoint_file(const std::string& path) {
  std::error_code ec;
  const std::uint64_t file_size = fs::file_size(path, ec);
  ALSMF_CHECK_MSG(!ec, "cannot stat checkpoint: " + path);
  std::ifstream in(path, std::ios::binary);
  ALSMF_CHECK_MSG(in.good(), "cannot open checkpoint for read: " + path);

  SectionReader r(in, path, file_size);
  char magic[8];
  r.read(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    corrupt(path, 0, "bad magic (not an ALSCKPT1 file)");
  }

  TrainingCheckpoint ckpt;
  bool have_header = false, have_x = false, have_y = false, have_end = false;
  while (!have_end) {
    const std::uint64_t section_start = r.offset();
    char tag[4];
    r.read(tag, sizeof(tag), "section tag");
    const auto payload_len = r.read_pod<std::uint64_t>("section length");
    if (std::memcmp(tag, kTagHeader, 4) == 0) {
      if (payload_len != sizeof(HeaderPayload)) {
        corrupt(path, section_start, "bad header length");
      }
      HeaderPayload header;
      r.read(&header, sizeof(header), "header");
      const auto stored = r.read_pod<std::uint32_t>("header crc");
      const auto computed = crc32(&header, sizeof(header));
      if (stored != computed) {
        corrupt(path, section_start, "header CRC mismatch");
      }
      if (header.format_version != kCheckpointFormatVersion) {
        corrupt(path, section_start,
                "unsupported format version " +
                    std::to_string(header.format_version));
      }
      ckpt.options_hash = header.options_hash;
      ckpt.iteration = header.iteration;
      std::copy(std::begin(header.rng_state), std::end(header.rng_state),
                ckpt.rng_state.begin());
      have_header = true;
    } else if (std::memcmp(tag, kTagX, 4) == 0) {
      ckpt.x = read_matrix_section(r, payload_len, "X factor section");
      have_x = true;
    } else if (std::memcmp(tag, kTagY, 4) == 0) {
      ckpt.y = read_matrix_section(r, payload_len, "Y factor section");
      have_y = true;
    } else if (std::memcmp(tag, kTagEnd, 4) == 0) {
      if (payload_len != 0) corrupt(path, section_start, "bad END length");
      const auto stored = r.read_pod<std::uint32_t>("end crc");
      if (stored != crc32(nullptr, 0)) {
        corrupt(path, section_start, "END CRC mismatch");
      }
      have_end = true;
    } else {
      corrupt(path, section_start, "unknown section tag");
    }
  }
  if (!have_header || !have_x || !have_y) {
    corrupt(path, r.offset(), "missing required section");
  }
  return ckpt;
}

std::string checkpoint_path(const std::string& dir, std::int64_t iteration) {
  std::string name = std::to_string(iteration);
  if (name.size() < 6) name.insert(0, 6 - name.size(), '0');
  return (fs::path(dir) / ("ckpt_" + name + kSuffix)).string();
}

std::vector<CheckpointInfo> list_checkpoints(const std::string& dir) {
  std::vector<CheckpointInfo> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() <= 5 + std::strlen(kSuffix)) continue;
    if (name.rfind("ckpt_", 0) != 0) continue;
    if (name.substr(name.size() - std::strlen(kSuffix)) != kSuffix) continue;
    const std::string digits =
        name.substr(5, name.size() - 5 - std::strlen(kSuffix));
    std::int64_t iteration = 0;
    const auto [ptr, parse_ec] = std::from_chars(
        digits.data(), digits.data() + digits.size(), iteration);
    if (parse_ec != std::errc{} || ptr != digits.data() + digits.size()) {
      continue;
    }
    found.push_back({entry.path().string(), iteration});
  }
  std::sort(found.begin(), found.end(),
            [](const CheckpointInfo& a, const CheckpointInfo& b) {
              return a.iteration < b.iteration;
            });
  return found;
}

void prune_checkpoints(const std::string& dir, std::size_t keep) {
  auto all = list_checkpoints(dir);
  if (all.size() <= keep) return;
  for (std::size_t i = 0; i + keep < all.size(); ++i) {
    std::error_code ec;
    fs::remove(all[i].path, ec);
  }
}

}  // namespace alsmf::robust
