// Crash-safe training checkpoints.
//
// Format (all integers little-endian, see docs/robustness.md):
//
//   magic "ALSCKPT1" (8 bytes)
//   sections, each:  u32 tag | u64 payload_len | payload | u32 crc32(payload)
//     "HDR\0"  u32 format_version, u32 reserved, u64 options_hash,
//              i64 iteration, u64 rng_state[4]
//     "XFAC"   i64 rows, i64 cols, f32 data (row-major)
//     "YFAC"   i64 rows, i64 cols, f32 data (row-major)
//     "END\0"  empty payload, crc of nothing
//
// Writes go to `<path>.tmp` and are renamed into place only after a
// successful flush, so a crash mid-write never clobbers the previous
// checkpoint. Loads validate the magic, every section CRC, and payload
// bounds against the file size; errors name the file and byte offset.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/dense.hpp"

namespace alsmf::robust {

inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

struct TrainingCheckpoint {
  std::uint64_t options_hash = 0;  ///< trajectory hash; resume refuses mismatch
  std::int64_t iteration = 0;      ///< completed ALS iterations
  std::array<std::uint64_t, 4> rng_state{};  ///< solver RNG stream state
  Matrix x, y;                     ///< factor matrices
};

/// Atomically writes `ckpt` to `path` (creating parent directories).
void save_checkpoint_file(const std::string& path,
                          const TrainingCheckpoint& ckpt);

/// Loads and fully validates a checkpoint; throws alsmf::Error naming the
/// file and offset on any corruption (bad magic, CRC mismatch, truncation).
TrainingCheckpoint load_checkpoint_file(const std::string& path);

struct CheckpointInfo {
  std::string path;
  std::int64_t iteration = 0;
};

/// Canonical checkpoint filename for an iteration: dir/ckpt_<iter>.alsckpt.
std::string checkpoint_path(const std::string& dir, std::int64_t iteration);

/// Checkpoints under `dir` matching the canonical naming, ascending by
/// iteration. Missing directory yields an empty list.
std::vector<CheckpointInfo> list_checkpoints(const std::string& dir);

/// Deletes all but the newest `keep` checkpoints in `dir`.
void prune_checkpoints(const std::string& dir, std::size_t keep);

}  // namespace alsmf::robust
