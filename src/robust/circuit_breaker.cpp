#include "robust/circuit_breaker.hpp"

#include <sstream>

namespace alsmf::robust {

const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half_open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options)
    : options_(options) {}

void CircuitBreaker::transition_locked(clock::time_point now) {
  if (state_ == BreakerState::kOpen && now - opened_at_ >= options_.cooldown) {
    state_ = BreakerState::kHalfOpen;
    half_open_in_flight_ = 0;
  }
}

void CircuitBreaker::open_locked(clock::time_point now) {
  state_ = BreakerState::kOpen;
  opened_at_ = now;
  consecutive_failures_ = 0;
  half_open_in_flight_ = 0;
  ++trips_;
}

bool CircuitBreaker::allow(clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  transition_locked(now);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      ++rejections_;
      return false;
    case BreakerState::kHalfOpen:
      if (half_open_in_flight_ < options_.half_open_trials) {
        ++half_open_in_flight_;
        return true;
      }
      ++rejections_;
      return false;
  }
  return false;
}

void CircuitBreaker::record_success(clock::time_point) {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen) {
    state_ = BreakerState::kClosed;
    half_open_in_flight_ = 0;
  }
}

void CircuitBreaker::record_failure(clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (state_ == BreakerState::kHalfOpen) {
    open_locked(now);
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= options_.failure_threshold) {
    open_locked(now);
  }
}

BreakerState CircuitBreaker::state(clock::time_point now) {
  std::lock_guard<std::mutex> lock(mu_);
  transition_locked(now);
  return state_;
}

std::uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

std::uint64_t CircuitBreaker::rejections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejections_;
}

std::string CircuitBreaker::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"state\":\"" << to_string(state_) << "\",\"trips\":" << trips_
     << ",\"rejections\":" << rejections_ << "}";
  return os.str();
}

}  // namespace alsmf::robust
