// Circuit breaker for repeatedly failing operations (serving fold-ins).
//
// Standard three-state machine: Closed passes traffic and counts
// consecutive failures; `failure_threshold` consecutive failures trip it
// Open, where calls are rejected until `cooldown` elapses; then HalfOpen
// admits `half_open_trials` probe calls — a success closes the breaker, a
// failure re-opens it and restarts the cooldown. Time is injected per call
// so tests never sleep. Thread-safe via an internal mutex (serving already
// serializes per-batch, so contention is negligible).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

namespace alsmf::robust {

enum class BreakerState : int { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* to_string(BreakerState state);

struct CircuitBreakerOptions {
  /// Consecutive failures that trip the breaker open.
  int failure_threshold = 5;
  /// How long the breaker stays open before probing.
  std::chrono::milliseconds cooldown{1000};
  /// Probe calls admitted in HalfOpen before a verdict.
  int half_open_trials = 1;
};

class CircuitBreaker {
 public:
  using clock = std::chrono::steady_clock;

  explicit CircuitBreaker(CircuitBreakerOptions options = {});

  /// Whether a call may proceed now. Open→HalfOpen transition happens here
  /// once the cooldown has elapsed. Rejections are counted.
  bool allow(clock::time_point now = clock::now());

  /// Reports the outcome of an admitted call.
  void record_success(clock::time_point now = clock::now());
  void record_failure(clock::time_point now = clock::now());

  BreakerState state(clock::time_point now = clock::now());

  std::uint64_t trips() const;       ///< times the breaker opened
  std::uint64_t rejections() const;  ///< calls refused while open
  std::string to_json() const;

 private:
  // Callers hold mu_.
  void transition_locked(clock::time_point now);
  void open_locked(clock::time_point now);

  CircuitBreakerOptions options_;
  mutable std::mutex mu_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int half_open_in_flight_ = 0;
  clock::time_point opened_at_{};
  std::uint64_t trips_ = 0;
  std::uint64_t rejections_ = 0;
};

}  // namespace alsmf::robust
