// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) for checkpoint
// section integrity. Chunkable: feed the previous return value back as
// `seed` to continue a running checksum.
#pragma once

#include <cstddef>
#include <cstdint>

namespace alsmf::robust {

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace alsmf::robust
