#include "robust/fault_injection.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace alsmf::robust {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kKernelLaunch: return "kernel_launch";
    case FaultSite::kSolve: return "solve";
    case FaultSite::kIoRead: return "io_read";
    case FaultSite::kFoldInSolve: return "fold_in_solve";
    case FaultSite::kDeviceFailure: return "device_failure";
    case FaultSite::kStraggler: return "straggler";
    case FaultSite::kLinkTransfer: return "link_transfer";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

bool FaultInjector::decide(FaultSite site, std::uint64_t key) {
  const auto s = static_cast<std::size_t>(site);
  bool fire = std::find(plan_.exact[s].begin(), plan_.exact[s].end(), key) !=
              plan_.exact[s].end();
  if (!fire && plan_.probability[s] > 0.0) {
    // Counter-based draw: hash (seed, site, key) through splitmix64 so the
    // decision is a pure function of the occurrence, not of scheduling.
    std::uint64_t state = plan_.seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)) ^
                          (key * 0xbf58476d1ce4e5b9ULL);
    const double u =
        static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
    fire = u < plan_.probability[s];
  }
  if (!fire) return false;

  // Respect the overall fault budget.
  if (budget_used_.fetch_add(1, std::memory_order_relaxed) >=
      plan_.max_faults) {
    suppressed_[s].fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  triggered_[s].fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::should_fault(FaultSite site) {
  const auto s = static_cast<std::size_t>(site);
  // The classic counter-based identity: atomically claim this site's next
  // occurrence index, then decide on it.
  const std::uint64_t index =
      occurrences_[s].fetch_add(1, std::memory_order_relaxed);
  return decide(site, index);
}

bool FaultInjector::should_fault_keyed(FaultSite site, std::uint64_t key) {
  occurrences_[static_cast<std::size_t>(site)].fetch_add(
      1, std::memory_order_relaxed);
  return decide(site, key);
}

double FaultInjector::uniform_keyed(FaultSite site, std::uint64_t key,
                                    std::uint64_t salt) const {
  const auto s = static_cast<std::size_t>(site);
  std::uint64_t state = plan_.seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)) ^
                        (key * 0xbf58476d1ce4e5b9ULL) ^
                        (salt * 0x94d049bb133111ebULL);
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

std::uint64_t FaultInjector::occurrences(FaultSite site) const {
  return occurrences_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::triggered(FaultSite site) const {
  return triggered_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::suppressed(FaultSite site) const {
  return suppressed_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultSite site) const {
  return triggered(site) + suppressed(site);
}

std::uint64_t FaultInjector::total_triggered() const {
  std::uint64_t total = 0;
  for (const auto& t : triggered_) total += t.load(std::memory_order_relaxed);
  return total;
}

void install_fault_injector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* installed_fault_injector() {
  return g_injector.load(std::memory_order_acquire);
}

bool fault_at(FaultSite site) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  return injector != nullptr && injector->should_fault(site);
}

bool fault_at_keyed(FaultSite site, std::uint64_t key) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  return injector != nullptr && injector->should_fault_keyed(site, key);
}

}  // namespace alsmf::robust
