#include "robust/fault_injection.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace alsmf::robust {

namespace {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kKernelLaunch: return "kernel_launch";
    case FaultSite::kSolve: return "solve";
    case FaultSite::kIoRead: return "io_read";
    case FaultSite::kFoldInSolve: return "fold_in_solve";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

bool FaultInjector::should_fault(FaultSite site) {
  const auto s = static_cast<std::size_t>(site);
  const std::uint64_t index =
      occurrences_[s].fetch_add(1, std::memory_order_relaxed);

  bool fire = std::find(plan_.exact[s].begin(), plan_.exact[s].end(), index) !=
              plan_.exact[s].end();
  if (!fire && plan_.probability[s] > 0.0) {
    // Counter-based draw: hash (seed, site, index) through splitmix64 so the
    // decision is a pure function of the occurrence, not of scheduling.
    std::uint64_t state = plan_.seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)) ^
                          (index * 0xbf58476d1ce4e5b9ULL);
    const double u =
        static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
    fire = u < plan_.probability[s];
  }
  if (!fire) return false;

  // Respect the overall fault budget.
  if (budget_used_.fetch_add(1, std::memory_order_relaxed) >=
      plan_.max_faults) {
    return false;
  }
  triggered_[s].fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::uint64_t FaultInjector::occurrences(FaultSite site) const {
  return occurrences_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::triggered(FaultSite site) const {
  return triggered_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::total_triggered() const {
  std::uint64_t total = 0;
  for (const auto& t : triggered_) total += t.load(std::memory_order_relaxed);
  return total;
}

void install_fault_injector(FaultInjector* injector) {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* installed_fault_injector() {
  return g_injector.load(std::memory_order_acquire);
}

bool fault_at(FaultSite site) {
  FaultInjector* injector = g_injector.load(std::memory_order_acquire);
  return injector != nullptr && injector->should_fault(site);
}

}  // namespace alsmf::robust
