// Deterministic fault injection for recovery testing.
//
// A FaultPlan names the sites where faults may fire (kernel launches, row
// solves, checkpoint I/O reads, serving fold-in solves) and, per site,
// either explicit occurrence indices ("fail the 7th launch") or a
// probability drawn from a seeded counter-based hash. Decisions depend only
// on (seed, site, occurrence index), never on thread interleaving, so a
// failing run replays exactly from its seed.
//
// Production code queries `fault_at(site)` — a single relaxed atomic load
// when no injector is installed, so the hooks cost nothing in normal runs.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace alsmf::robust {

enum class FaultSite : int {
  kKernelLaunch = 0,  ///< devsim::Device::launch throws before running
  kSolve = 1,         ///< solve_normal_equations poisons its result with NaN
  kIoRead = 2,        ///< checkpoint reads behave as if truncated
  kFoldInSolve = 3,   ///< serving fold-in solve fails (feeds the breaker)
  // Distributed sites, queried through the keyed API (decisions depend on a
  // caller-chosen key — e.g. (device, half-step) — not on a shared counter,
  // so concurrent coordinator threads replay identically from one seed).
  kDeviceFailure = 4,  ///< a simulated device dies permanently
  kStraggler = 5,      ///< a shard launch runs slowed by a drawn factor
  kLinkTransfer = 6,   ///< one interconnect transfer attempt fails
};
inline constexpr int kFaultSiteCount = 7;

const char* to_string(FaultSite site);

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Per-site probability that an occurrence faults (0 disables).
  std::array<double, kFaultSiteCount> probability{};
  /// Per-site explicit 0-based occurrence indices that always fault.
  std::array<std::vector<std::uint64_t>, kFaultSiteCount> exact{};
  /// Total faults the injector may fire across all sites.
  std::uint64_t max_faults = ~std::uint64_t{0};
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Advances the site's occurrence counter and decides whether this
  /// occurrence faults. Thread-safe; deterministic per occurrence index.
  bool should_fault(FaultSite site);

  /// Keyed decision: deterministic in (seed, site, key) alone. The caller
  /// supplies the occurrence identity (e.g. fault_key(device, step)), so
  /// concurrent callers racing on a shared counter cannot perturb replay.
  /// Exact-plan entries for the site match against `key`. Occurrence and
  /// triggered counters still advance (for the metrics exposition).
  bool should_fault_keyed(FaultSite site, std::uint64_t key);

  /// Deterministic uniform draw in [0, 1) from (seed, site, key, salt) —
  /// the source for fault *severities* (e.g. straggler slowdown factors)
  /// so they replay with the decisions. Does not advance any counter.
  double uniform_keyed(FaultSite site, std::uint64_t key,
                       std::uint64_t salt) const;

  std::uint64_t occurrences(FaultSite site) const;
  std::uint64_t triggered(FaultSite site) const;
  /// Decisions that matched the plan but were withheld by `max_faults`.
  std::uint64_t suppressed(FaultSite site) const;
  /// triggered + suppressed: every occurrence the plan selected.
  std::uint64_t injected(FaultSite site) const;
  std::uint64_t total_triggered() const;

  const FaultPlan& plan() const { return plan_; }

 private:
  bool decide(FaultSite site, std::uint64_t key);

  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> occurrences_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> triggered_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> suppressed_{};
  std::atomic<std::uint64_t> budget_used_{0};
};

/// Installs a process-global injector (not owned; null disables). The
/// injector must outlive its installation.
void install_fault_injector(FaultInjector* injector);
FaultInjector* installed_fault_injector();

/// True when an installed injector decides this occurrence faults.
bool fault_at(FaultSite site);

/// Keyed variant of fault_at for the distributed sites; false when no
/// injector is installed.
bool fault_at_keyed(FaultSite site, std::uint64_t key);

/// Canonical key for per-device occurrences at the distributed sites:
/// device index in the high bits, the device's own occurrence counter (its
/// half-step / transfer-attempt index) in the low 32.
constexpr std::uint64_t fault_key(std::uint64_t device,
                                  std::uint64_t occurrence) {
  return (device << 32) | (occurrence & 0xffffffffULL);
}

/// RAII install/uninstall for tests.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultPlan plan) : injector_(std::move(plan)) {
    install_fault_injector(&injector_);
  }
  ~ScopedFaultInjector() { install_fault_injector(nullptr); }
  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

  FaultInjector& injector() { return injector_; }

 private:
  FaultInjector injector_;
};

}  // namespace alsmf::robust
