#include "robust/fault_metrics.hpp"

#include <cstdint>
#include <string>

#include "obs/registry.hpp"
#include "robust/fault_injection.hpp"

namespace alsmf::robust {

namespace {

// Advances `c` so its value equals `target` (counters are monotone; a
// repeated export after more faults only ever moves forward).
void advance_to(obs::Counter& c, std::uint64_t target) {
  const std::uint64_t cur = c.value();
  if (target > cur) c.inc(target - cur);
}

}  // namespace

void export_fault_metrics(const FaultInjector& injector,
                          obs::Registry& registry) {
  for (int s = 0; s < kFaultSiteCount; ++s) {
    const auto site = static_cast<FaultSite>(s);
    const obs::Labels labels{{"site", to_string(site)}};
    auto& occurrences = registry.counter(
        "fault_injection_occurrences_total", labels,
        "decision points reached at this fault site");
    auto& injected = registry.counter(
        "fault_injection_injected_total", labels,
        "plan decisions that selected the occurrence");
    auto& observed = registry.counter(
        "fault_injection_observed_total", labels,
        "faults delivered to production code");
    auto& suppressed = registry.counter(
        "fault_injection_suppressed_total", labels,
        "selected faults withheld by the max_faults budget");
    advance_to(occurrences, injector.occurrences(site));
    advance_to(injected, injector.injected(site));
    advance_to(observed, injector.triggered(site));
    advance_to(suppressed, injector.suppressed(site));

    registry.add_assertion(
        std::string("fault_injection_conservation_") + to_string(site),
        [&injected, &observed, &suppressed]() -> std::string {
          const auto i = injected.value();
          const auto o = observed.value();
          const auto p = suppressed.value();
          if (i == o + p) return "";
          return "injected (" + std::to_string(i) + ") != observed (" +
                 std::to_string(o) + ") + suppressed (" + std::to_string(p) +
                 ")";
        });
  }
}

}  // namespace alsmf::robust
