// Fault-injection exposure into the obs metrics registry.
//
// Per site, three monotone counters with an honesty invariant asserted
// cross-metric in the registry (see obs::Registry::add_assertion):
//
//   fault_injection_injected_total{site}   — plan decisions that selected
//                                            the occurrence (exact index hit
//                                            or probability draw fired)
//   fault_injection_observed_total{site}   — faults actually delivered to
//                                            production code
//   fault_injection_suppressed_total{site} — selections withheld by the
//                                            plan's max_faults budget
//   fault_injection_occurrences_total{site} — every decision point reached
//
// The gated invariant: injected == observed + suppressed (per site), i.e.
// every fault the plan injected is accounted for — either it reached the
// code under test or the budget swallowed it, never silently dropped.
#pragma once

namespace alsmf::obs {
class Registry;
}

namespace alsmf::robust {

class FaultInjector;

/// Snapshots `injector` counts into `registry` (counters are created on
/// first use and advanced by the delta since the last export, so repeated
/// exports stay monotone) and registers the per-site conservation
/// assertions. Call after a run, before reading the exposition.
void export_fault_metrics(const FaultInjector& injector,
                          obs::Registry& registry);

}  // namespace alsmf::robust
