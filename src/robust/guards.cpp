#include "robust/guards.hpp"

#include <cmath>

#include "common/json.hpp"

namespace alsmf::robust {

void RobustnessReport::merge(const RobustnessReport& other) {
  guard_sweeps += other.guard_sweeps;
  nonfinite_rows += other.nonfinite_rows;
  redamped_rows += other.redamped_rows;
  zeroed_rows += other.zeroed_rows;
  solver_fallbacks += other.solver_fallbacks;
  kernel_relaunches += other.kernel_relaunches;
}

std::string RobustnessReport::to_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.field("guard_sweeps", guard_sweeps);
  w.field("nonfinite_rows", nonfinite_rows);
  w.field("redamped_rows", redamped_rows);
  w.field("zeroed_rows", zeroed_rows);
  w.field("solver_fallbacks", solver_fallbacks);
  w.field("kernel_relaunches", kernel_relaunches);
  w.end_object();
  return w.str();
}

namespace {

bool row_finite(const real* row, index_t k) {
  for (index_t c = 0; c < k; ++c) {
    if (!std::isfinite(row[c])) return false;
  }
  return true;
}

}  // namespace

std::vector<index_t> nonfinite_rows(const Matrix& factor) {
  std::vector<index_t> bad;
  const index_t k = factor.cols();
  for (index_t r = 0; r < factor.rows(); ++r) {
    if (!row_finite(factor.row(r).data(), k)) bad.push_back(r);
  }
  return bad;
}

std::size_t guard_rows(Matrix& factor, const RowResolver& resolve,
                       const GuardOptions& options, RobustnessReport& report) {
  if (!options.enabled) return 0;
  ++report.guard_sweeps;
  const auto bad = nonfinite_rows(factor);
  if (bad.empty()) return 0;
  report.nonfinite_rows += bad.size();

  const index_t k = factor.cols();
  std::vector<real> trial(static_cast<std::size_t>(k));
  for (index_t r : bad) {
    bool recovered = false;
    real scale = real{1};
    for (int attempt = 0; attempt < options.max_attempts && !recovered;
         ++attempt, scale *= options.lambda_escalation) {
      if (resolve(r, scale, trial.data()) && row_finite(trial.data(), k)) {
        auto row = factor.row(r);
        for (index_t c = 0; c < k; ++c) row[static_cast<std::size_t>(c)] = trial[static_cast<std::size_t>(c)];
        ++report.redamped_rows;
        recovered = true;
      }
    }
    if (!recovered) {
      auto row = factor.row(r);
      for (auto& v : row) v = real{0};
      ++report.zeroed_rows;
    }
  }
  return bad.size();
}

}  // namespace alsmf::robust
