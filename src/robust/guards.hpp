// Numerical divergence guards for factor updates.
//
// After each ALS half-update the solver sweeps the freshly written factor
// block for non-finite entries (NaN/Inf from an ill-conditioned or injected
// solve). Each bad row is re-solved through a caller-supplied RowResolver
// with an escalating regularization multiplier; rows that never recover are
// zeroed (the cold-start representation) so one bad row cannot poison the
// next half-iteration. All guard activity is tallied in a RobustnessReport.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "linalg/dense.hpp"

namespace alsmf::robust {

struct GuardOptions {
  bool enabled = true;
  /// Regularization multiplier per retry: attempt n (0-based) re-solves
  /// with lambda scaled by escalation^n — the first attempt repeats the
  /// solve at the original damping, recovering transient failures exactly.
  real lambda_escalation = 10.0f;
  /// Re-solve attempts per bad row before zeroing it.
  int max_attempts = 3;
};

struct RobustnessReport {
  std::uint64_t guard_sweeps = 0;     ///< factor blocks swept
  std::uint64_t nonfinite_rows = 0;   ///< rows caught with NaN/Inf entries
  std::uint64_t redamped_rows = 0;    ///< rows recovered by lambda escalation
  std::uint64_t zeroed_rows = 0;      ///< rows zeroed after all retries failed
  std::uint64_t solver_fallbacks = 0; ///< Cholesky→LU fallbacks during retries
  std::uint64_t kernel_relaunches = 0;///< kernel launches retried after faults

  void merge(const RobustnessReport& other);
  std::string to_json() const;
};

/// Re-solves one row with `lambda_scale` times the base regularization,
/// writing k values to `out`. Returns false when the solve itself failed
/// (e.g. non-SPD system even under LU); the guard then escalates further or
/// zeroes the row. Implementations may bump `report.solver_fallbacks`.
using RowResolver =
    std::function<bool(index_t row, real lambda_scale, real* out)>;

/// Returns the indices of rows in [0, factor.rows()) containing a
/// non-finite entry.
std::vector<index_t> nonfinite_rows(const Matrix& factor);

/// Sweeps `factor` and repairs non-finite rows via `resolve`, escalating
/// regularization per GuardOptions. Returns the number of rows touched.
std::size_t guard_rows(Matrix& factor, const RowResolver& resolve,
                       const GuardOptions& options, RobustnessReport& report);

}  // namespace alsmf::robust
