#include "serve/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace alsmf::serve {

MicroBatcher::MicroBatcher(BatcherOptions options, Executor executor)
    : options_(options), executor_(std::move(executor)) {
  ALSMF_CHECK(options_.max_batch >= 1);
  ALSMF_CHECK(options_.max_wait.count() >= 0);
  ALSMF_CHECK_MSG(executor_ != nullptr, "MicroBatcher needs an executor");
  drain_ = std::jthread([this] { drain_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

void MicroBatcher::submit(ServeRequest&& request) {
  request.enqueue_time = std::chrono::steady_clock::now();
  {
    std::unique_lock lk(m_);
    if (!stop_) {
      queue_.push_back(std::move(request));
      lk.unlock();
      cv_.notify_one();
      return;
    }
  }
  // Stopped: execute inline so the promise is still fulfilled.
  std::vector<ServeRequest> batch;
  batch.push_back(std::move(request));
  executor_(std::move(batch));
}

void MicroBatcher::stop() {
  {
    std::scoped_lock lk(m_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (drain_.joinable()) drain_.join();
}

std::size_t MicroBatcher::queue_depth() const {
  std::scoped_lock lk(m_);
  return queue_.size();
}

void MicroBatcher::drain_loop() {
  std::unique_lock lk(m_);
  while (true) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // only reachable when stopping
    // Let the batch fill, but never hold the oldest request past max_wait.
    const auto deadline = queue_.front().enqueue_time + options_.max_wait;
    cv_.wait_until(lk, deadline, [&] {
      return stop_ || queue_.size() >= options_.max_batch;
    });
    const std::size_t take = std::min(queue_.size(), options_.max_batch);
    std::vector<ServeRequest> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lk.unlock();
    executor_(std::move(batch));
    lk.lock();
  }
}

}  // namespace alsmf::serve
