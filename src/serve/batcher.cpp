#include "serve/batcher.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace alsmf::serve {

MicroBatcher::MicroBatcher(BatcherOptions options, Executor executor,
                           OnShed on_shed)
    : options_(options),
      executor_(std::move(executor)),
      on_shed_(std::move(on_shed)) {
  ALSMF_CHECK(options_.max_batch >= 1);
  ALSMF_CHECK(options_.max_wait.count() >= 0);
  ALSMF_CHECK_MSG(executor_ != nullptr, "MicroBatcher needs an executor");
  drain_ = std::jthread([this] { drain_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

void MicroBatcher::shed(ServeRequest&& request, ServeStatus status) {
  if (on_shed_) on_shed_(request, status);
  ServeResult result;
  result.status = status;
  request.promise.set_value(std::move(result));
}

void MicroBatcher::submit(ServeRequest&& request) {
  request.enqueue_time = std::chrono::steady_clock::now();
  {
    std::unique_lock lk(m_);
    if (!stop_) {
      if (options_.max_queue > 0 && queue_.size() >= options_.max_queue) {
        lk.unlock();
        shed(std::move(request), ServeStatus::kRejectedQueueFull);
        return;
      }
      queue_.push_back(std::move(request));
      lk.unlock();
      cv_.notify_one();
      return;
    }
  }
  // Stopped: execute inline so the promise is still fulfilled.
  std::vector<ServeRequest> batch;
  batch.push_back(std::move(request));
  executor_(std::move(batch));
}

void MicroBatcher::stop() {
  {
    std::scoped_lock lk(m_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (drain_.joinable()) drain_.join();
}

std::size_t MicroBatcher::queue_depth() const {
  std::scoped_lock lk(m_);
  return queue_.size();
}

void MicroBatcher::drain_loop() {
  std::unique_lock lk(m_);
  while (true) {
    cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // only reachable when stopping
    // Let the batch fill, but never hold the oldest request past max_wait.
    const auto deadline = queue_.front().enqueue_time + options_.max_wait;
    cv_.wait_until(lk, deadline, [&] {
      return stop_ || queue_.size() >= options_.max_batch;
    });
    // Drop requests whose deadline already passed: the client has given up
    // (or will before the answer lands), so a batch slot is better spent on
    // a request that can still be served in time.
    const auto now = std::chrono::steady_clock::now();
    std::vector<ServeRequest> expired;
    std::vector<ServeRequest> batch;
    batch.reserve(options_.max_batch);
    while (!queue_.empty() && batch.size() < options_.max_batch) {
      if (queue_.front().deadline < now) {
        expired.push_back(std::move(queue_.front()));
      } else {
        batch.push_back(std::move(queue_.front()));
      }
      queue_.pop_front();
    }
    lk.unlock();
    for (auto& request : expired) {
      shed(std::move(request), ServeStatus::kShedDeadline);
    }
    if (!batch.empty()) executor_(std::move(batch));
    lk.lock();
  }
}

}  // namespace alsmf::serve
