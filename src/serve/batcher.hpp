// Micro-batching request queue.
//
// Incoming requests accumulate in a queue; a dedicated drain thread hands
// them to the executor in batches of up to `max_batch`, waiting at most
// `max_wait` after the oldest queued request arrived. Small max_wait favors
// latency, large max_wait favors batch size (and thus throughput): a cold
// user's fold-in becomes one row of a batched Cholesky solve instead of a
// lone k×k solve, exactly the amortization the training kernels exploit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/request.hpp"

namespace alsmf::serve {

struct BatcherOptions {
  std::size_t max_batch = 64;
  std::chrono::microseconds max_wait{200};
  /// Queued requests beyond which submits are shed with
  /// ServeStatus::kRejectedQueueFull. 0 = unbounded.
  std::size_t max_queue = 0;
};

class MicroBatcher {
 public:
  /// The executor receives each drained batch (never empty) on the drain
  /// thread and must fulfill every request's promise.
  using Executor = std::function<void(std::vector<ServeRequest>&&)>;
  /// Observes each shed request (queue full or expired deadline) before the
  /// batcher fulfills its promise with the given status — metrics recorded
  /// here are visible to a client that wakes on the future.
  using OnShed = std::function<void(const ServeRequest&, ServeStatus)>;

  MicroBatcher(BatcherOptions options, Executor executor,
               OnShed on_shed = nullptr);
  ~MicroBatcher();  ///< stop(): drains remaining requests, then joins

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues a request (stamps its enqueue_time) and wakes the drain
  /// thread. A full bounded queue sheds the request immediately with
  /// kRejectedQueueFull. After stop(), the request is executed inline as a
  /// batch of one so its promise is always fulfilled (no shedding).
  void submit(ServeRequest&& request);

  /// Stops accepting queued execution; outstanding requests are drained in
  /// batches before the drain thread exits. Idempotent.
  void stop();

  std::size_t queue_depth() const;

  const BatcherOptions& options() const { return options_; }

 private:
  void drain_loop();
  /// Notifies on_shed_, then fulfills the promise with `status`.
  void shed(ServeRequest&& request, ServeStatus status);

  BatcherOptions options_;
  Executor executor_;
  OnShed on_shed_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<ServeRequest> queue_;
  bool stop_ = false;
  std::jthread drain_;  // last member: joins before the rest is destroyed
};

}  // namespace alsmf::serve
