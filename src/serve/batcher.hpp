// Micro-batching request queue.
//
// Incoming requests accumulate in a queue; a dedicated drain thread hands
// them to the executor in batches of up to `max_batch`, waiting at most
// `max_wait` after the oldest queued request arrived. Small max_wait favors
// latency, large max_wait favors batch size (and thus throughput): a cold
// user's fold-in becomes one row of a batched Cholesky solve instead of a
// lone k×k solve, exactly the amortization the training kernels exploit.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/request.hpp"

namespace alsmf::serve {

struct BatcherOptions {
  std::size_t max_batch = 64;
  std::chrono::microseconds max_wait{200};
};

class MicroBatcher {
 public:
  /// The executor receives each drained batch (never empty) on the drain
  /// thread and must fulfill every request's promise.
  using Executor = std::function<void(std::vector<ServeRequest>&&)>;

  MicroBatcher(BatcherOptions options, Executor executor);
  ~MicroBatcher();  ///< stop(): drains remaining requests, then joins

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues a request (stamps its enqueue_time) and wakes the drain
  /// thread. After stop(), the request is executed inline as a batch of one
  /// so its promise is always fulfilled.
  void submit(ServeRequest&& request);

  /// Stops accepting queued execution; outstanding requests are drained in
  /// batches before the drain thread exits. Idempotent.
  void stop();

  std::size_t queue_depth() const;

  const BatcherOptions& options() const { return options_; }

 private:
  void drain_loop();

  BatcherOptions options_;
  Executor executor_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<ServeRequest> queue_;
  bool stop_ = false;
  std::jthread drain_;  // last member: joins before the rest is destroyed
};

}  // namespace alsmf::serve
