#include "serve/lru_cache.hpp"

namespace alsmf::serve {

TopNCache::TopNCache(std::size_t capacity) : capacity_(capacity) {}

bool TopNCache::get(index_t user, int n, std::uint64_t version,
                    std::vector<Recommendation>* out) {
  if (capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  std::scoped_lock lk(m_);
  const auto it = index_.find(Key{user, n});
  if (it == index_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (it->second->version != version) {
    // Computed by a different snapshot: stale, drop it now.
    lru_.erase(it->second);
    index_.erase(it);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  if (out) *out = it->second->topn;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TopNCache::put(index_t user, int n, std::uint64_t version,
                    std::vector<Recommendation> topn) {
  if (capacity_ == 0) return;
  const Key key{user, n};
  std::scoped_lock lk(m_);
  if (const auto it = index_.find(key); it != index_.end()) {
    it->second->version = version;
    it->second->topn = std::move(topn);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, version, std::move(topn)});
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void TopNCache::invalidate_all() {
  std::scoped_lock lk(m_);
  lru_.clear();
  index_.clear();
}

std::size_t TopNCache::size() const {
  std::scoped_lock lk(m_);
  return lru_.size();
}

}  // namespace alsmf::serve
