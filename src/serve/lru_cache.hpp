// LRU cache of hot users' top-N lists.
//
// Entries are tagged with the model snapshot version that computed them.
// get() only returns an entry whose tag matches the caller's current
// version, so a result computed against a pre-swap snapshot can never be
// served after the swap — even if a slow in-flight request inserts it after
// invalidate_all() ran. Because an ANN index swap (swap_index) also
// publishes a new snapshot version, the same two mechanisms — eager
// invalidate_all plus the lazy version tag — cover index swaps: a top-N
// list computed by the old index can never be served against the new one.
// Hit/miss counters are exposed for serving metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "recsys/recommender.hpp"

namespace alsmf::serve {

class TopNCache {
 public:
  /// Capacity 0 disables the cache (every get misses, put is a no-op).
  explicit TopNCache(std::size_t capacity);

  /// Looks up (user, n); hits only when the stored entry was computed by
  /// snapshot `version`. A version-stale entry counts as a miss and is
  /// evicted eagerly.
  bool get(index_t user, int n, std::uint64_t version,
           std::vector<Recommendation>* out);

  /// Inserts or replaces the entry for (user, n), evicting the least
  /// recently used entry when full.
  void put(index_t user, int n, std::uint64_t version,
           std::vector<Recommendation> topn);

  /// Drops every entry (called on model and index swaps).
  void invalidate_all();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Key {
    index_t user;
    int n;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      // splitmix64-style mix of the two fields.
      auto z = static_cast<std::uint64_t>(key.user) * 0x9e3779b97f4a7c15ULL;
      z ^= static_cast<std::uint64_t>(static_cast<unsigned>(key.n)) << 32;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      return static_cast<std::size_t>(z ^ (z >> 31));
    }
  };
  struct Entry {
    Key key;
    std::uint64_t version;
    std::vector<Recommendation> topn;
  };

  std::size_t capacity_;
  mutable std::mutex m_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, evictions_{0};
};

}  // namespace alsmf::serve
