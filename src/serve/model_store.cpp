#include "serve/model_store.hpp"

#include "common/error.hpp"
#include "index/ivf_index.hpp"
#include "recsys/recommender.hpp"

namespace alsmf::serve {

std::shared_ptr<ModelSnapshot> snapshot_from_recommender(const Recommender& rec,
                                                         real lambda) {
  ALSMF_CHECK_MSG(rec.trained(), "snapshot of an untrained Recommender");
  auto snap = std::make_shared<ModelSnapshot>();
  snap->x = rec.user_factors();
  snap->y = rec.item_factors();
  if (rec.has_bias()) {
    snap->bias = rec.bias();
    snap->has_bias = true;
  }
  snap->lambda = lambda;
  return snap;
}

std::shared_ptr<ModelSnapshot> snapshot_from_factors(Matrix x, Matrix y,
                                                     real lambda) {
  ALSMF_CHECK_MSG(x.cols() == y.cols(), "factor rank mismatch");
  auto snap = std::make_shared<ModelSnapshot>();
  snap->x = std::move(x);
  snap->y = std::move(y);
  snap->lambda = lambda;
  return snap;
}

void attach_ivf_index(ModelSnapshot& snap, const index::IvfOptions& options) {
  snap.ann = index::IvfIndex::build(snap.y, options,
                                    snap.has_bias ? &snap.bias : nullptr);
}

ModelStore::ModelStore(std::shared_ptr<ModelSnapshot> initial) {
  if (initial) publish(std::move(initial));
}

std::uint64_t ModelStore::publish(std::shared_ptr<ModelSnapshot> next) {
  ALSMF_CHECK_MSG(next != nullptr, "publishing a null snapshot");
  ALSMF_CHECK_MSG(next->x.cols() == next->y.cols(),
                  "snapshot factor rank mismatch");
  // A mismatched model+index pair must never become visible to readers.
  ALSMF_CHECK_MSG(!next->ann || (next->ann->items() == next->y.rows() &&
                                 next->ann->k() == next->y.cols()),
                  "snapshot index was built for a different item factor "
                  "matrix shape");
  const std::uint64_t v = next_version_.fetch_add(1, std::memory_order_relaxed);
  next->version = v;
  snap_.store(std::shared_ptr<const ModelSnapshot>(std::move(next)),
              std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return v;
}

std::uint64_t ModelStore::version() const {
  const auto snap = current();
  return snap ? snap->version : 0;
}

}  // namespace alsmf::serve
