#include "serve/model_store.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/halfprec.hpp"
#include "index/ivf_index.hpp"
#include "recsys/recommender.hpp"

namespace alsmf::serve {

const char* to_string(SnapshotQuantization q) {
  switch (q) {
    case SnapshotQuantization::kNone: return "fp32";
    case SnapshotQuantization::kFp16: return "fp16";
    case SnapshotQuantization::kInt8: return "int8";
  }
  return "?";
}

namespace {

void quantize_fp16(Matrix& m) {
  real* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) {
    p[i] = static_cast<real>(fp16_round_ftz(static_cast<float>(p[i])));
  }
}

/// Symmetric per-row int8: scale = maxabs/127, values snapped to the
/// reconstruction grid q*scale. An all-zero row keeps scale 0 and stays
/// exactly zero.
void quantize_int8(Matrix& m) {
  const int k = static_cast<int>(m.cols());
  for (index_t r = 0; r < m.rows(); ++r) {
    real* row = m.data() + static_cast<std::size_t>(r) * k;
    real maxabs = 0;
    for (int j = 0; j < k; ++j) maxabs = std::max(maxabs, std::abs(row[j]));
    if (maxabs == real{0}) continue;
    const real scale = maxabs / real{127};
    for (int j = 0; j < k; ++j) {
      row[j] = std::round(row[j] / scale) * scale;
    }
  }
}

}  // namespace

std::size_t ModelSnapshot::factor_bytes() const {
  const std::size_t elems = x.size() + y.size();
  const std::size_t rows =
      static_cast<std::size_t>(x.rows()) + static_cast<std::size_t>(y.rows());
  switch (quantization) {
    case SnapshotQuantization::kNone: return elems * 4;
    case SnapshotQuantization::kFp16: return elems * 2;
    case SnapshotQuantization::kInt8: return elems + rows * sizeof(float);
  }
  return elems * 4;
}

void quantize_snapshot(ModelSnapshot& snap, SnapshotQuantization q) {
  ALSMF_CHECK_MSG(snap.ann == nullptr,
                  "quantize_snapshot must run before attach_ivf_index so the "
                  "index is built over the values requests score against");
  snap.quantization = q;
  if (q == SnapshotQuantization::kNone) return;
  if (q == SnapshotQuantization::kFp16) {
    quantize_fp16(snap.x);
    quantize_fp16(snap.y);
  } else {
    quantize_int8(snap.x);
    quantize_int8(snap.y);
  }
}

std::shared_ptr<ModelSnapshot> snapshot_from_recommender(const Recommender& rec,
                                                         real lambda) {
  ALSMF_CHECK_MSG(rec.trained(), "snapshot of an untrained Recommender");
  auto snap = std::make_shared<ModelSnapshot>();
  snap->x = rec.user_factors();
  snap->y = rec.item_factors();
  if (rec.has_bias()) {
    snap->bias = rec.bias();
    snap->has_bias = true;
  }
  snap->lambda = lambda;
  return snap;
}

std::shared_ptr<ModelSnapshot> snapshot_from_factors(Matrix x, Matrix y,
                                                     real lambda) {
  ALSMF_CHECK_MSG(x.cols() == y.cols(), "factor rank mismatch");
  auto snap = std::make_shared<ModelSnapshot>();
  snap->x = std::move(x);
  snap->y = std::move(y);
  snap->lambda = lambda;
  return snap;
}

void attach_ivf_index(ModelSnapshot& snap, const index::IvfOptions& options) {
  snap.ann = index::IvfIndex::build(snap.y, options,
                                    snap.has_bias ? &snap.bias : nullptr);
}

ModelStore::ModelStore(std::shared_ptr<ModelSnapshot> initial) {
  if (initial) publish(std::move(initial));
}

std::uint64_t ModelStore::publish(std::shared_ptr<ModelSnapshot> next) {
  ALSMF_CHECK_MSG(next != nullptr, "publishing a null snapshot");
  ALSMF_CHECK_MSG(next->x.cols() == next->y.cols(),
                  "snapshot factor rank mismatch");
  // A mismatched model+index pair must never become visible to readers.
  ALSMF_CHECK_MSG(!next->ann || (next->ann->items() == next->y.rows() &&
                                 next->ann->k() == next->y.cols()),
                  "snapshot index was built for a different item factor "
                  "matrix shape");
  const std::uint64_t v = next_version_.fetch_add(1, std::memory_order_relaxed);
  next->version = v;
  snap_.store(std::shared_ptr<const ModelSnapshot>(std::move(next)),
              std::memory_order_release);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return v;
}

std::uint64_t ModelStore::version() const {
  const auto snap = current();
  return snap ? snap->version : 0;
}

}  // namespace alsmf::serve
