// RCU-style published model snapshots for zero-downtime retraining.
//
// A ModelSnapshot is an immutable copy of everything serving needs (factor
// matrices, optional bias block, the fold-in λ). The ModelStore publishes
// snapshots through an atomic shared_ptr: readers acquire the current
// snapshot with one lock-free load and keep serving from it even while a
// retrained model is swapped in — in-flight requests finish on the old
// snapshot, which is reclaimed when its last reader drops the reference
// (exactly the read-copy-update pattern, with shared_ptr as the grace
// period).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "linalg/dense.hpp"
#include "recsys/bias.hpp"

namespace alsmf {
class Recommender;
}

namespace alsmf::index {
class IvfIndex;
struct IvfOptions;
}

namespace alsmf::serve {

/// Factor-snapshot compression for serving. Quantization happens once at
/// snapshot-build time (before the IVF index is attached, so the index is
/// built over the values requests actually score against); the serving path
/// keeps scoring in fp32 over the dequantized values, so only the resident
/// footprint and refresh traffic shrink, not the scoring kernels.
enum class SnapshotQuantization {
  kNone,  ///< fp32 factors as trained (4 B/element)
  kFp16,  ///< IEEE half storage, subnormals flushed (2 B/element)
  kInt8,  ///< symmetric per-row int8, scale = maxabs/127 (1 B + scale/row)
};

const char* to_string(SnapshotQuantization q);

struct ModelSnapshot {
  Matrix x;  ///< user factors (users × k)
  Matrix y;  ///< item factors (items × k)
  BiasModel bias;
  bool has_bias = false;
  real lambda = 0.1f;  ///< regularization used for fold-in row solves
  std::uint64_t version = 0;  ///< assigned by ModelStore::publish
  /// Optional ANN top-N index over `y`. Built before publish and immutable
  /// alongside the factors, so one snapshot acquire always yields a matched
  /// model+index pair — there is no window where a request could score
  /// against one model version and probe an index built for another.
  /// Null = exhaustive scoring.
  std::shared_ptr<const index::IvfIndex> ann;
  /// Storage format the factors were rounded through (quantize_snapshot).
  SnapshotQuantization quantization = SnapshotQuantization::kNone;

  index_t users() const { return x.rows(); }
  index_t items() const { return y.rows(); }
  int k() const { return static_cast<int>(y.cols()); }

  /// Modeled resident bytes of the factor block under `quantization`
  /// (int8 includes the per-row fp32 scales).
  std::size_t factor_bytes() const;
};

/// Deep-copies a trained Recommender into a publishable snapshot.
std::shared_ptr<ModelSnapshot> snapshot_from_recommender(const Recommender& rec,
                                                         real lambda = 0.1f);

/// Wraps raw factor matrices (moved in) into a snapshot.
std::shared_ptr<ModelSnapshot> snapshot_from_factors(Matrix x, Matrix y,
                                                     real lambda = 0.1f);

/// Builds an IVF index over `snap->y` (honoring the snapshot's bias model)
/// and attaches it. Call before publishing; the snapshot must not be
/// visible to readers yet.
void attach_ivf_index(ModelSnapshot& snap, const index::IvfOptions& options);

/// Rounds both factor matrices through the requested storage format in
/// place and records it on the snapshot. Call before attach_ivf_index /
/// publish, while the snapshot is still private — quantizing a published
/// snapshot would mutate state concurrent readers are scoring against.
void quantize_snapshot(ModelSnapshot& snap, SnapshotQuantization q);

class ModelStore {
 public:
  /// Starts empty when `initial` is null; publish() before serving.
  explicit ModelStore(std::shared_ptr<ModelSnapshot> initial = nullptr);

  /// Atomically replaces the served snapshot. Assigns the next version
  /// number to `next` and returns it. The previous snapshot stays alive
  /// until the last in-flight reader releases it.
  std::uint64_t publish(std::shared_ptr<ModelSnapshot> next);

  /// Lock-free acquire of the current snapshot (null before first publish).
  std::shared_ptr<const ModelSnapshot> current() const {
    return snap_.load(std::memory_order_acquire);
  }

  /// Version of the currently published snapshot (0 when empty).
  std::uint64_t version() const;

  /// Number of publishes so far.
  std::uint64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> snap_;
  std::atomic<std::uint64_t> next_version_{1};
  std::atomic<std::uint64_t> publishes_{0};
};

}  // namespace alsmf::serve
