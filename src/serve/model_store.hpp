// RCU-style published model snapshots for zero-downtime retraining.
//
// A ModelSnapshot is an immutable copy of everything serving needs (factor
// matrices, optional bias block, the fold-in λ). The ModelStore publishes
// snapshots through an atomic shared_ptr: readers acquire the current
// snapshot with one lock-free load and keep serving from it even while a
// retrained model is swapped in — in-flight requests finish on the old
// snapshot, which is reclaimed when its last reader drops the reference
// (exactly the read-copy-update pattern, with shared_ptr as the grace
// period).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "linalg/dense.hpp"
#include "recsys/bias.hpp"

namespace alsmf {
class Recommender;
}

namespace alsmf::index {
class IvfIndex;
struct IvfOptions;
}

namespace alsmf::serve {

struct ModelSnapshot {
  Matrix x;  ///< user factors (users × k)
  Matrix y;  ///< item factors (items × k)
  BiasModel bias;
  bool has_bias = false;
  real lambda = 0.1f;  ///< regularization used for fold-in row solves
  std::uint64_t version = 0;  ///< assigned by ModelStore::publish
  /// Optional ANN top-N index over `y`. Built before publish and immutable
  /// alongside the factors, so one snapshot acquire always yields a matched
  /// model+index pair — there is no window where a request could score
  /// against one model version and probe an index built for another.
  /// Null = exhaustive scoring.
  std::shared_ptr<const index::IvfIndex> ann;

  index_t users() const { return x.rows(); }
  index_t items() const { return y.rows(); }
  int k() const { return static_cast<int>(y.cols()); }
};

/// Deep-copies a trained Recommender into a publishable snapshot.
std::shared_ptr<ModelSnapshot> snapshot_from_recommender(const Recommender& rec,
                                                         real lambda = 0.1f);

/// Wraps raw factor matrices (moved in) into a snapshot.
std::shared_ptr<ModelSnapshot> snapshot_from_factors(Matrix x, Matrix y,
                                                     real lambda = 0.1f);

/// Builds an IVF index over `snap->y` (honoring the snapshot's bias model)
/// and attaches it. Call before publishing; the snapshot must not be
/// visible to readers yet.
void attach_ivf_index(ModelSnapshot& snap, const index::IvfOptions& options);

class ModelStore {
 public:
  /// Starts empty when `initial` is null; publish() before serving.
  explicit ModelStore(std::shared_ptr<ModelSnapshot> initial = nullptr);

  /// Atomically replaces the served snapshot. Assigns the next version
  /// number to `next` and returns it. The previous snapshot stays alive
  /// until the last in-flight reader releases it.
  std::uint64_t publish(std::shared_ptr<ModelSnapshot> next);

  /// Lock-free acquire of the current snapshot (null before first publish).
  std::shared_ptr<const ModelSnapshot> current() const {
    return snap_.load(std::memory_order_acquire);
  }

  /// Version of the currently published snapshot (0 when empty).
  std::uint64_t version() const;

  /// Number of publishes so far.
  std::uint64_t publish_count() const {
    return publishes_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::shared_ptr<const ModelSnapshot>> snap_;
  std::atomic<std::uint64_t> next_version_{1};
  std::atomic<std::uint64_t> publishes_{0};
};

}  // namespace alsmf::serve
