// Request/result types exchanged between RecommendService and its
// micro-batcher. Requests carry a promise; results always name the model
// snapshot version that produced them so callers (and tests) can prove each
// answer came from exactly one snapshot.
#pragma once

#include <chrono>
#include <future>
#include <vector>

#include "common/types.hpp"
#include "recsys/recommender.hpp"

namespace alsmf::serve {

enum class RequestKind { kPredict, kTopN, kFoldIn };

inline const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPredict: return "predict";
    case RequestKind::kTopN: return "topn";
    case RequestKind::kFoldIn: return "fold_in";
  }
  return "unknown";
}

/// Why a request's result is (or is not) a real answer. Overload and
/// degraded-mode outcomes are statuses, not exceptions: under load they are
/// expected, frequent, and must stay cheap to produce and to count.
enum class ServeStatus : int {
  kOk = 0,
  kRejectedQueueFull,  ///< bounded queue was full at submit
  kShedDeadline,       ///< deadline expired in the queue; dropped at dequeue
  kCircuitOpen,        ///< fold-in breaker is open (recent solve failures)
  kSolveFailed,        ///< this fold-in's solve failed
  kDegraded,           ///< popularity fallback answered (no model published)
  kNoModel,            ///< no model and no fallback can answer this kind
};

inline const char* to_string(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk: return "ok";
    case ServeStatus::kRejectedQueueFull: return "rejected_queue_full";
    case ServeStatus::kShedDeadline: return "shed_deadline";
    case ServeStatus::kCircuitOpen: return "circuit_open";
    case ServeStatus::kSolveFailed: return "solve_failed";
    case ServeStatus::kDegraded: return "degraded";
    case ServeStatus::kNoModel: return "no_model";
  }
  return "unknown";
}

struct ServeResult {
  ServeStatus status = ServeStatus::kOk;
  std::uint64_t model_version = 0;  ///< snapshot that produced this answer
  real score = 0;                   ///< predict
  std::vector<Recommendation> topn; ///< top-N and fold-in
  std::vector<real> factor;         ///< fold-in: the solved user factor
  bool cache_hit = false;           ///< answered from the LRU cache

  bool ok() const { return status == ServeStatus::kOk; }
};

struct ServeRequest {
  RequestKind kind = RequestKind::kTopN;
  index_t user = -1;
  index_t item = -1;
  int n = 0;
  std::vector<index_t> fold_items;  ///< fold-in: rated item ids
  std::vector<real> fold_ratings;   ///< fold-in: ratings, same length
  std::chrono::steady_clock::time_point enqueue_time;
  /// Latest acceptable execution start; expired requests are shed at
  /// dequeue instead of wasting a batch slot on a stale answer.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::promise<ServeResult> promise;
};

}  // namespace alsmf::serve
