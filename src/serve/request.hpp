// Request/result types exchanged between RecommendService and its
// micro-batcher. Requests carry a promise; results always name the model
// snapshot version that produced them so callers (and tests) can prove each
// answer came from exactly one snapshot.
#pragma once

#include <chrono>
#include <future>
#include <vector>

#include "common/types.hpp"
#include "recsys/recommender.hpp"

namespace alsmf::serve {

enum class RequestKind { kPredict, kTopN, kFoldIn };

inline const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPredict: return "predict";
    case RequestKind::kTopN: return "topn";
    case RequestKind::kFoldIn: return "fold_in";
  }
  return "unknown";
}

struct ServeResult {
  std::uint64_t model_version = 0;  ///< snapshot that produced this answer
  real score = 0;                   ///< predict
  std::vector<Recommendation> topn; ///< top-N and fold-in
  std::vector<real> factor;         ///< fold-in: the solved user factor
  bool cache_hit = false;           ///< answered from the LRU cache
};

struct ServeRequest {
  RequestKind kind = RequestKind::kTopN;
  index_t user = -1;
  index_t item = -1;
  int n = 0;
  std::vector<index_t> fold_items;  ///< fold-in: rated item ids
  std::vector<real> fold_ratings;   ///< fold-in: ratings, same length
  std::chrono::steady_clock::time_point enqueue_time;
  std::promise<ServeResult> promise;
};

}  // namespace alsmf::serve
