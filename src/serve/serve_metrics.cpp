#include "serve/serve_metrics.hpp"

#include "common/json.hpp"

namespace alsmf::serve {

namespace {
// Latency buckets: 0.5 µs to ~0.5 s at 25% relative resolution.
Histogram latency_histogram() { return Histogram(0.5, 1.25, 64); }
// Size buckets: 1 to ~4096 at fine resolution.
Histogram size_histogram() { return Histogram(1.0, 1.2, 48); }
}  // namespace

ServeMetrics::ServeMetrics(obs::Registry* registry)
    : owned_registry_(registry ? nullptr : std::make_unique<obs::Registry>()),
      registry_(registry ? registry : owned_registry_.get()) {
  auto& r = *registry_;
  submitted_ = &r.counter("serve_requests_submitted_total", {},
                          "Requests accepted into the serving queue");
  completed_ = &r.counter("serve_requests_completed_total", {},
                          "Requests whose promise was fulfilled");
  rejected_ = &r.counter("serve_requests_rejected_total", {},
                         "Requests that failed validation");
  swaps_ = &r.counter("serve_model_swaps_total", {}, "Hot model swaps");
  batches_ = &r.counter("serve_batches_total", {}, "Micro-batches drained");
  shed_queue_full_ = &r.counter("serve_shed_total", {{"reason", "queue_full"}},
                                "Requests shed before execution");
  shed_deadline_ = &r.counter("serve_shed_total", {{"reason", "deadline"}},
                              "Requests shed before execution");
  circuit_open_ = &r.counter("serve_status_total", {{"status", "circuit_open"}},
                             "Completed requests with a non-ok status");
  solve_failures_ =
      &r.counter("serve_status_total", {{"status", "solve_failed"}},
                 "Completed requests with a non-ok status");
  degraded_ = &r.counter("serve_status_total", {{"status", "degraded"}},
                         "Completed requests with a non-ok status");
  no_model_ = &r.counter("serve_status_total", {{"status", "no_model"}},
                         "Completed requests with a non-ok status");
  for (int kind = 0; kind < 3; ++kind) {
    by_kind_[kind] =
        &r.counter("serve_requests_total",
                   {{"kind", to_string(static_cast<RequestKind>(kind))}},
                   "Requests submitted per kind");
  }
  queue_us_ = &r.histogram("serve_queue_us", {}, "Queue wait per request (µs)",
                           latency_histogram());
  exec_us_ = &r.histogram("serve_exec_us", {}, "Batch executor time (µs)",
                          latency_histogram());
  total_us_ = &r.histogram("serve_total_us", {},
                           "End-to-end request latency (µs)",
                           latency_histogram());
  batch_size_ = &r.histogram("serve_batch_size", {}, "Drained batch sizes",
                             size_histogram());
  queue_depth_ = &r.histogram("serve_queue_depth", {},
                              "Queue depth after each drain", size_histogram());

  // Conservation of requests: nothing completes or is shed that was not
  // submitted. Equality holds at quiescence; mid-flight the queue holds the
  // difference. Capture the counters (registry-owned), not `this`.
  auto* submitted = submitted_;
  auto* completed = completed_;
  auto* shed_full = shed_queue_full_;
  auto* shed_deadline = shed_deadline_;
  r.add_assertion("serve_requests_conservation", [=]() -> std::string {
    const auto sub = submitted->value();
    const auto acc =
        completed->value() + shed_full->value() + shed_deadline->value();
    if (acc <= sub) return "";
    return "completed+shed = " + std::to_string(acc) + " exceeds submitted = " +
           std::to_string(sub);
  });
}

void ServeMetrics::record_enqueue(RequestKind kind) {
  submitted_->inc();
  by_kind_[static_cast<int>(kind)]->inc();
}

void ServeMetrics::record_batch(std::size_t batch_size,
                                std::size_t queue_depth_after, double exec_us) {
  batches_->inc();
  batch_size_->observe(static_cast<double>(batch_size));
  queue_depth_->observe(static_cast<double>(queue_depth_after));
  exec_us_->observe(exec_us);
}

void ServeMetrics::record_done(RequestKind, double queue_us, double total_us) {
  completed_->inc();
  queue_us_->observe(queue_us);
  total_us_->observe(total_us);
}

void ServeMetrics::record_cache_fast_path(double total_us) {
  completed_->inc();
  total_us_->observe(total_us);
}

void ServeMetrics::record_swap() { swaps_->inc(); }

void ServeMetrics::record_rejected() { rejected_->inc(); }

void ServeMetrics::record_shed(ServeStatus status) {
  if (status == ServeStatus::kRejectedQueueFull) {
    shed_queue_full_->inc();
  } else if (status == ServeStatus::kShedDeadline) {
    shed_deadline_->inc();
  }
}

void ServeMetrics::record_status(ServeStatus status) {
  switch (status) {
    case ServeStatus::kCircuitOpen: circuit_open_->inc(); break;
    case ServeStatus::kSolveFailed: solve_failures_->inc(); break;
    case ServeStatus::kDegraded: degraded_->inc(); break;
    case ServeStatus::kNoModel: no_model_->inc(); break;
    default: break;
  }
}

double ServeMetrics::qps() const {
  const double s = uptime_.seconds();
  return s > 0 ? static_cast<double>(completed()) / s : 0.0;
}

double ServeMetrics::total_us_percentile(double p) const {
  return total_us_->percentile(p);
}

double ServeMetrics::queue_us_percentile(double p) const {
  return queue_us_->percentile(p);
}

double ServeMetrics::mean_batch_size() const { return batch_size_->mean(); }

std::string ServeMetrics::to_json(const CacheStats& cache,
                                  const std::string& breaker_json) const {
  json::JsonWriter w;
  w.begin_object();
  w.field("uptime_seconds", uptime_seconds());
  w.field("qps", qps());
  w.key("requests").begin_object();
  w.field("submitted", submitted());
  w.field("completed", completed());
  w.field("rejected", rejected_->value());
  for (int kind = 0; kind < 3; ++kind) {
    w.field(to_string(static_cast<RequestKind>(kind)),
            by_kind_[kind]->value());
  }
  w.end_object();
  w.key("overload").begin_object();
  w.field("shed_queue_full", shed_queue_full());
  w.field("shed_deadline", shed_deadline());
  w.field("circuit_open", circuit_open());
  w.field("solve_failures", solve_failures());
  w.field("degraded", degraded());
  w.field("no_model", no_model_->value());
  w.end_object();
  if (!breaker_json.empty()) w.field_raw("breaker", breaker_json);
  w.key("cache").begin_object();
  w.field("hits", cache.hits);
  w.field("misses", cache.misses);
  w.field("evictions", cache.evictions);
  w.field("size", cache.size);
  w.field("hit_rate", cache.hit_rate());
  w.end_object();
  w.field("swaps", swaps());
  w.field("batches", batches());
  w.field_raw("batch_size", batch_size_->snapshot().summary_json());
  w.field_raw("queue_depth", queue_depth_->snapshot().summary_json());
  w.key("latency_us").begin_object();
  w.field_raw("queue", queue_us_->snapshot().summary_json());
  w.field_raw("exec", exec_us_->snapshot().summary_json());
  w.field_raw("total", total_us_->snapshot().summary_json());
  w.end_object();
  w.end_object();
  return w.str();
}

void ServeMetrics::reset() {
  uptime_.reset();
  for (obs::Counter* c :
       {submitted_, completed_, rejected_, swaps_, batches_, shed_queue_full_,
        shed_deadline_, circuit_open_, solve_failures_, degraded_, no_model_,
        by_kind_[0], by_kind_[1], by_kind_[2]}) {
    c->reset();
  }
  for (obs::HistogramMetric* h :
       {queue_us_, exec_us_, total_us_, batch_size_, queue_depth_}) {
    h->reset();
  }
}

}  // namespace alsmf::serve
