#include "serve/serve_metrics.hpp"

#include <sstream>

namespace alsmf::serve {

namespace {
// Latency buckets: 0.5 µs to ~0.5 s at 25% relative resolution.
Histogram latency_histogram() { return Histogram(0.5, 1.25, 64); }
// Size buckets: 1 to ~4096 at fine resolution.
Histogram size_histogram() { return Histogram(1.0, 1.2, 48); }
}  // namespace

ServeMetrics::ServeMetrics()
    : queue_us_(latency_histogram()),
      exec_us_(latency_histogram()),
      total_us_(latency_histogram()),
      batch_size_(size_histogram()),
      queue_depth_(size_histogram()) {}

void ServeMetrics::record_enqueue(RequestKind kind) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  by_kind_[static_cast<int>(kind)].fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::record_batch(std::size_t batch_size,
                                std::size_t queue_depth_after, double exec_us) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lk(m_);
  batch_size_.add(static_cast<double>(batch_size));
  queue_depth_.add(static_cast<double>(queue_depth_after));
  exec_us_.add(exec_us);
}

void ServeMetrics::record_done(RequestKind, double queue_us, double total_us) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lk(m_);
  queue_us_.add(queue_us);
  total_us_.add(total_us);
}

void ServeMetrics::record_cache_fast_path(double total_us) {
  completed_.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lk(m_);
  total_us_.add(total_us);
}

void ServeMetrics::record_swap() {
  swaps_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::record_rejected() {
  rejected_.fetch_add(1, std::memory_order_relaxed);
}

void ServeMetrics::record_shed(ServeStatus status) {
  if (status == ServeStatus::kRejectedQueueFull) {
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
  } else if (status == ServeStatus::kShedDeadline) {
    shed_deadline_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeMetrics::record_status(ServeStatus status) {
  switch (status) {
    case ServeStatus::kCircuitOpen:
      circuit_open_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kSolveFailed:
      solve_failures_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ServeStatus::kNoModel:
      no_model_.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      break;
  }
}

double ServeMetrics::qps() const {
  const double s = uptime_.seconds();
  return s > 0 ? static_cast<double>(completed()) / s : 0.0;
}

double ServeMetrics::total_us_percentile(double p) const {
  std::scoped_lock lk(m_);
  return total_us_.percentile(p);
}

double ServeMetrics::queue_us_percentile(double p) const {
  std::scoped_lock lk(m_);
  return queue_us_.percentile(p);
}

double ServeMetrics::mean_batch_size() const {
  std::scoped_lock lk(m_);
  return batch_size_.mean();
}

std::string ServeMetrics::to_json(const CacheStats& cache,
                                  const std::string& breaker_json) const {
  std::ostringstream out;
  out << "{\"uptime_seconds\":" << uptime_seconds() << ",\"qps\":" << qps()
      << ",\"requests\":{\"submitted\":" << submitted()
      << ",\"completed\":" << completed()
      << ",\"rejected\":" << rejected_.load(std::memory_order_relaxed);
  for (int kind = 0; kind < 3; ++kind) {
    out << ",\"" << to_string(static_cast<RequestKind>(kind))
        << "\":" << by_kind_[kind].load(std::memory_order_relaxed);
  }
  out << "},\"overload\":{\"shed_queue_full\":" << shed_queue_full()
      << ",\"shed_deadline\":" << shed_deadline()
      << ",\"circuit_open\":" << circuit_open()
      << ",\"solve_failures\":" << solve_failures()
      << ",\"degraded\":" << degraded()
      << ",\"no_model\":" << no_model_.load(std::memory_order_relaxed) << "}";
  if (!breaker_json.empty()) out << ",\"breaker\":" << breaker_json;
  out << ",\"cache\":{\"hits\":" << cache.hits << ",\"misses\":" << cache.misses
      << ",\"evictions\":" << cache.evictions << ",\"size\":" << cache.size
      << ",\"hit_rate\":" << cache.hit_rate() << "}"
      << ",\"swaps\":" << swaps() << ",\"batches\":" << batches();
  {
    std::scoped_lock lk(m_);
    out << ",\"batch_size\":" << batch_size_.summary_json()
        << ",\"queue_depth\":" << queue_depth_.summary_json()
        << ",\"latency_us\":{\"queue\":" << queue_us_.summary_json()
        << ",\"exec\":" << exec_us_.summary_json()
        << ",\"total\":" << total_us_.summary_json() << "}";
  }
  out << "}";
  return out.str();
}

void ServeMetrics::reset() {
  uptime_.reset();
  submitted_ = completed_ = rejected_ = swaps_ = batches_ = 0;
  shed_queue_full_ = shed_deadline_ = 0;
  circuit_open_ = solve_failures_ = degraded_ = no_model_ = 0;
  for (auto& counter : by_kind_) counter = 0;
  std::scoped_lock lk(m_);
  queue_us_.clear();
  exec_us_.clear();
  total_us_.clear();
  batch_size_.clear();
  queue_depth_.clear();
}

}  // namespace alsmf::serve
