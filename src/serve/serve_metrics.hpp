// Serving metrics: QPS, per-stage latency histograms (queue wait, batch
// execution, end-to-end), queue depth and batch-size distributions, request
// counters per kind, swap count. Exported as JSON in the same hand-rolled
// style as devsim's Chrome-trace writer (no JSON dependency).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/histogram.hpp"
#include "common/timer.hpp"
#include "serve/request.hpp"

namespace alsmf::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class ServeMetrics {
 public:
  ServeMetrics();

  void record_enqueue(RequestKind kind);
  /// One drained batch: its size, the queue depth left behind, and the
  /// executor time in microseconds.
  void record_batch(std::size_t batch_size, std::size_t queue_depth_after,
                    double exec_us);
  /// One completed request with its stage latencies in microseconds.
  void record_done(RequestKind kind, double queue_us, double total_us);
  /// A request answered straight from the cache (no queue traversal).
  void record_cache_fast_path(double total_us);
  void record_swap();
  void record_rejected();  ///< request failed validation
  /// A request shed before execution (queue full or expired deadline).
  /// Shed requests never reach record_done, so
  /// submitted == completed + shed_queue_full + shed_deadline.
  void record_shed(ServeStatus status);
  /// A request that executed but got a non-ok status (breaker open,
  /// fold-in solve failure, degraded/no-model answer).
  void record_status(ServeStatus status);

  std::uint64_t submitted() const { return submitted_.load(std::memory_order_relaxed); }
  std::uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }
  std::uint64_t swaps() const { return swaps_.load(std::memory_order_relaxed); }
  std::uint64_t batches() const { return batches_.load(std::memory_order_relaxed); }
  std::uint64_t shed_queue_full() const { return shed_queue_full_.load(std::memory_order_relaxed); }
  std::uint64_t shed_deadline() const { return shed_deadline_.load(std::memory_order_relaxed); }
  std::uint64_t circuit_open() const { return circuit_open_.load(std::memory_order_relaxed); }
  std::uint64_t solve_failures() const { return solve_failures_.load(std::memory_order_relaxed); }
  std::uint64_t degraded() const { return degraded_.load(std::memory_order_relaxed); }
  double uptime_seconds() const { return uptime_.seconds(); }
  /// Completed requests per second of uptime.
  double qps() const;

  double total_us_percentile(double p) const;
  double queue_us_percentile(double p) const;
  double mean_batch_size() const;

  /// Full JSON report; pass the cache's counters to include them, and
  /// optionally the fold-in circuit breaker's JSON object.
  std::string to_json(const CacheStats& cache,
                      const std::string& breaker_json = "") const;

  void reset();

 private:
  Timer uptime_;
  std::atomic<std::uint64_t> submitted_{0}, completed_{0}, rejected_{0};
  std::atomic<std::uint64_t> swaps_{0}, batches_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0}, shed_deadline_{0};
  std::atomic<std::uint64_t> circuit_open_{0}, solve_failures_{0};
  std::atomic<std::uint64_t> degraded_{0}, no_model_{0};
  std::atomic<std::uint64_t> by_kind_[3] = {};

  mutable std::mutex m_;  // guards the histograms
  Histogram queue_us_;    // enqueue -> batch drain
  Histogram exec_us_;     // batch executor wall time
  Histogram total_us_;    // enqueue -> promise fulfilled (incl. cache hits)
  Histogram batch_size_;
  Histogram queue_depth_;
};

}  // namespace alsmf::serve
