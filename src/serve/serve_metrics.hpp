// Serving metrics: QPS, per-stage latency histograms (queue wait, batch
// execution, end-to-end), queue depth and batch-size distributions, request
// counters per kind, swap count.
//
// Since the observability rework the counters and histograms live in an
// obs::Registry (passed in, or privately owned when none is given), so
// serving traffic shows up in the same Prometheus/JSON expositions as the
// solver and devsim series. The conservation invariant
//   submitted >= completed + shed_queue_full + shed_deadline
// (equality once the queue is drained) is registered as a registry-level
// assertion. The legacy getter and to_json() surfaces are unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/histogram.hpp"
#include "common/timer.hpp"
#include "obs/registry.hpp"
#include "serve/request.hpp"

namespace alsmf::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t size = 0;
  double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class ServeMetrics {
 public:
  /// Reports into `registry` when given (must outlive this object); with
  /// the default null a private registry is created, isolating services
  /// from one another. Two ServeMetrics on the same registry share series.
  explicit ServeMetrics(obs::Registry* registry = nullptr);

  void record_enqueue(RequestKind kind);
  /// One drained batch: its size, the queue depth left behind, and the
  /// executor time in microseconds.
  void record_batch(std::size_t batch_size, std::size_t queue_depth_after,
                    double exec_us);
  /// One completed request with its stage latencies in microseconds.
  void record_done(RequestKind kind, double queue_us, double total_us);
  /// A request answered straight from the cache (no queue traversal).
  void record_cache_fast_path(double total_us);
  void record_swap();
  void record_rejected();  ///< request failed validation
  /// A request shed before execution (queue full or expired deadline).
  /// Shed requests never reach record_done, so
  /// submitted == completed + shed_queue_full + shed_deadline.
  void record_shed(ServeStatus status);
  /// A request that executed but got a non-ok status (breaker open,
  /// fold-in solve failure, degraded/no-model answer).
  void record_status(ServeStatus status);

  std::uint64_t submitted() const { return submitted_->value(); }
  std::uint64_t completed() const { return completed_->value(); }
  std::uint64_t swaps() const { return swaps_->value(); }
  std::uint64_t batches() const { return batches_->value(); }
  std::uint64_t shed_queue_full() const { return shed_queue_full_->value(); }
  std::uint64_t shed_deadline() const { return shed_deadline_->value(); }
  std::uint64_t circuit_open() const { return circuit_open_->value(); }
  std::uint64_t solve_failures() const { return solve_failures_->value(); }
  std::uint64_t degraded() const { return degraded_->value(); }
  double uptime_seconds() const { return uptime_.seconds(); }
  /// Completed requests per second of uptime.
  double qps() const;

  double total_us_percentile(double p) const;
  double queue_us_percentile(double p) const;
  double mean_batch_size() const;

  /// The registry these metrics report into.
  obs::Registry& registry() { return *registry_; }
  const obs::Registry& registry() const { return *registry_; }
  /// Prometheus text exposition of the backing registry.
  std::string prometheus_text() const { return registry_->prometheus_text(); }

  /// Full JSON report; pass the cache's counters to include them, and
  /// optionally the fold-in circuit breaker's JSON object.
  std::string to_json(const CacheStats& cache,
                      const std::string& breaker_json = "") const;

  void reset();

 private:
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;

  Timer uptime_;
  obs::Counter* submitted_;
  obs::Counter* completed_;
  obs::Counter* rejected_;
  obs::Counter* swaps_;
  obs::Counter* batches_;
  obs::Counter* shed_queue_full_;
  obs::Counter* shed_deadline_;
  obs::Counter* circuit_open_;
  obs::Counter* solve_failures_;
  obs::Counter* degraded_;
  obs::Counter* no_model_;
  obs::Counter* by_kind_[3];

  obs::HistogramMetric* queue_us_;    // enqueue -> batch drain
  obs::HistogramMetric* exec_us_;     // batch executor wall time
  obs::HistogramMetric* total_us_;    // enqueue -> promise fulfilled
  obs::HistogramMetric* batch_size_;
  obs::HistogramMetric* queue_depth_;
};

}  // namespace alsmf::serve
