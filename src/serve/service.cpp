#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <exception>

#include <cmath>

#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "index/ivf_index.hpp"
#include "linalg/batched.hpp"
#include "linalg/vecops.hpp"
#include "recsys/batch_score.hpp"
#include "robust/fault_injection.hpp"

namespace alsmf::serve {

namespace {

using clock = std::chrono::steady_clock;

double micros_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

ServeResult cache_hit_result(std::uint64_t version,
                             std::vector<Recommendation> topn) {
  ServeResult result;
  result.model_version = version;
  result.topn = std::move(topn);
  result.cache_hit = true;
  return result;
}

/// Validates a request against the snapshot it is about to execute on.
/// Throws alsmf::Error with an actionable message.
void validate(const ServeRequest& request, const ModelSnapshot& snap) {
  ALSMF_CHECK_MSG(request.n >= 0, "top-n count must be non-negative");
  switch (request.kind) {
    case RequestKind::kPredict:
      ALSMF_CHECK_MSG(request.user >= 0 && request.user < snap.users(),
                      "predict user id " + std::to_string(request.user) +
                          " outside [0, " + std::to_string(snap.users()) + ")");
      ALSMF_CHECK_MSG(request.item >= 0 && request.item < snap.items(),
                      "predict item id " + std::to_string(request.item) +
                          " outside [0, " + std::to_string(snap.items()) + ")");
      break;
    case RequestKind::kTopN:
      ALSMF_CHECK_MSG(request.user >= 0 && request.user < snap.users(),
                      "top-n user id " + std::to_string(request.user) +
                          " outside [0, " + std::to_string(snap.users()) + ")");
      break;
    case RequestKind::kFoldIn:
      ALSMF_CHECK_MSG(!request.fold_items.empty(),
                      "fold-in needs at least one rating");
      ALSMF_CHECK_MSG(request.fold_items.size() == request.fold_ratings.size(),
                      "fold-in items/ratings length mismatch");
      for (const index_t item : request.fold_items) {
        ALSMF_CHECK_MSG(item >= 0 && item < snap.items(),
                        "fold-in item id " + std::to_string(item) +
                            " outside [0, " + std::to_string(snap.items()) + ")");
      }
      for (const real rating : request.fold_ratings) {
        ALSMF_CHECK_MSG(std::isfinite(rating),
                        "fold-in rating is not finite; refusing to poison the "
                        "normal equations");
      }
      break;
  }
}

}  // namespace

RecommendService::RecommendService(std::shared_ptr<ModelSnapshot> initial,
                                   ServiceOptions options)
    : options_(options),
      pool_(options.pool ? options.pool : &ThreadPool::global()),
      cache_(options.cache_capacity),
      metrics_(options.registry),
      breaker_(options.breaker) {
  if (initial) store_.publish(std::move(initial));
  BatcherOptions batcher_options;
  batcher_options.max_batch = options_.max_batch;
  batcher_options.max_wait = std::chrono::microseconds(options_.max_wait_us);
  batcher_options.max_queue = options_.max_queue;
  batcher_ = std::make_unique<MicroBatcher>(
      batcher_options,
      [this](std::vector<ServeRequest>&& batch) { execute_batch(std::move(batch)); },
      [this](const ServeRequest&, ServeStatus status) {
        metrics_.record_shed(status);
      });
}

RecommendService::~RecommendService() { stop(); }

void RecommendService::stop() {
  if (batcher_) batcher_->stop();
}

std::future<ServeResult> RecommendService::enqueue(ServeRequest&& request) {
  metrics_.record_enqueue(request.kind);
  if (options_.default_deadline_us > 0) {
    request.deadline = clock::now() +
                       std::chrono::microseconds(options_.default_deadline_us);
  }
  auto future = request.promise.get_future();
  batcher_->submit(std::move(request));
  return future;
}

std::future<ServeResult> RecommendService::submit_predict(index_t user,
                                                          index_t item) {
  ServeRequest request;
  request.kind = RequestKind::kPredict;
  request.user = user;
  request.item = item;
  return enqueue(std::move(request));
}

std::future<ServeResult> RecommendService::submit_topn(index_t user, int n) {
  // Fast path: hot users answer from the LRU cache without queueing.
  const Timer lookup;
  const auto snap = store_.current();
  std::vector<Recommendation> cached;
  if (snap && cache_.get(user, n, snap->version, &cached)) {
    metrics_.record_enqueue(RequestKind::kTopN);
    metrics_.record_cache_fast_path(lookup.seconds() * 1e6);
    std::promise<ServeResult> promise;
    promise.set_value(cache_hit_result(snap->version, std::move(cached)));
    return promise.get_future();
  }
  ServeRequest request;
  request.kind = RequestKind::kTopN;
  request.user = user;
  request.n = n;
  return enqueue(std::move(request));
}

std::future<ServeResult> RecommendService::submit_fold_in(
    std::vector<index_t> items, std::vector<real> ratings, int n) {
  ServeRequest request;
  request.kind = RequestKind::kFoldIn;
  request.fold_items = std::move(items);
  request.fold_ratings = std::move(ratings);
  request.n = n;
  return enqueue(std::move(request));
}

ServeResult RecommendService::predict(index_t user, index_t item) {
  return submit_predict(user, item).get();
}

ServeResult RecommendService::topn(index_t user, int n) {
  return submit_topn(user, n).get();
}

ServeResult RecommendService::fold_in(std::vector<index_t> items,
                                      std::vector<real> ratings, int n) {
  return submit_fold_in(std::move(items), std::move(ratings), n).get();
}

std::uint64_t RecommendService::swap_model(std::shared_ptr<ModelSnapshot> next) {
  const std::uint64_t version = store_.publish(std::move(next));
  // Entries computed by older snapshots are dropped eagerly here and
  // rejected lazily by the cache's version tag if a slow in-flight batch
  // re-inserts one afterwards.
  cache_.invalidate_all();
  metrics_.record_swap();
  return version;
}

std::uint64_t RecommendService::swap_index(
    std::shared_ptr<const index::IvfIndex> ann) {
  const auto snap = store_.current();
  ALSMF_CHECK_MSG(snap != nullptr, "swap_index before any model is published");
  // Same factors, new (or no) index, published as a fresh snapshot version:
  // the version tag is what lets the cache reject a stale top-N that a slow
  // in-flight batch computed with the old index.
  auto next = std::make_shared<ModelSnapshot>(*snap);
  next->ann = std::move(ann);
  return swap_model(std::move(next));
}

void RecommendService::set_popularity_fallback(
    std::vector<Recommendation> ranked) {
  fallback_.store(std::make_shared<const std::vector<Recommendation>>(
                      std::move(ranked)),
                  std::memory_order_release);
}

CacheStats RecommendService::cache_stats() const {
  CacheStats stats;
  stats.hits = cache_.hits();
  stats.misses = cache_.misses();
  stats.evictions = cache_.evictions();
  stats.size = cache_.size();
  return stats;
}

std::string RecommendService::stats_json() const {
  return metrics_.to_json(cache_stats(), breaker_.to_json());
}

void RecommendService::execute_batch_degraded(
    std::vector<ServeRequest>&& batch) {
  const auto drain_time = clock::now();
  const Timer exec;
  const auto fallback = fallback_.load(std::memory_order_acquire);
  metrics_.record_batch(batch.size(), batcher_ ? batcher_->queue_depth() : 0,
                        exec.seconds() * 1e6);
  for (auto& request : batch) {
    ServeResult result;
    if (request.kind == RequestKind::kTopN && fallback && !fallback->empty()) {
      result.status = ServeStatus::kDegraded;
      const auto n = std::min<std::size_t>(
          request.n > 0 ? static_cast<std::size_t>(request.n) : 0,
          fallback->size());
      result.topn.assign(fallback->begin(),
                         fallback->begin() + static_cast<std::ptrdiff_t>(n));
    } else {
      result.status = ServeStatus::kNoModel;
    }
    metrics_.record_status(result.status);
    metrics_.record_done(request.kind,
                         micros_between(request.enqueue_time, drain_time),
                         micros_between(request.enqueue_time, clock::now()));
    request.promise.set_value(std::move(result));
  }
}

void RecommendService::execute_batch(std::vector<ServeRequest>&& batch) {
  const auto drain_time = clock::now();
  const Timer exec;
  // One snapshot per batch: every request in it is answered by the same
  // immutable model, even if swap_model runs concurrently.
  const auto snap = store_.current();
  if (!snap) {
    execute_batch_degraded(std::move(batch));
    return;
  }
  const auto k = static_cast<std::size_t>(snap->k());

  // Validate serially (cheap), collecting the fold-in sub-batch. Fold-ins
  // pass through the circuit breaker: while it is open they fail fast with
  // kCircuitOpen instead of occupying solve slots.
  std::vector<std::exception_ptr> errors(batch.size());
  std::vector<ServeStatus> statuses(batch.size(), ServeStatus::kOk);
  std::vector<std::size_t> foldins;  // indices into batch
  std::vector<std::size_t> foldin_slot(batch.size(), 0);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    try {
      validate(batch[i], *snap);
      if (batch[i].kind == RequestKind::kFoldIn) {
        if (!breaker_.allow()) {
          statuses[i] = ServeStatus::kCircuitOpen;
          continue;
        }
        foldin_slot[i] = foldins.size();
        foldins.push_back(i);
      }
    } catch (...) {
      errors[i] = std::current_exception();
      metrics_.record_rejected();
    }
  }

  // Stage 1 — fold-ins: assemble all normal equations, then solve them as
  // one batched Cholesky (each cold user is one row of the batch).
  std::vector<real> gram(foldins.size() * k * k);
  std::vector<real> rhs(foldins.size() * k);
  std::vector<char> foldin_failed(foldins.size(), 0);
  if (!foldins.empty()) {
    pool_->parallel_for(0, foldins.size(), [&](std::size_t b, std::size_t e,
                                               unsigned) {
      for (std::size_t f = b; f < e; ++f) {
        if (robust::fault_at(robust::FaultSite::kFoldInSolve)) {
          foldin_failed[f] = 1;
          continue;
        }
        const ServeRequest& request = batch[foldins[f]];
        std::span<const real> vals = request.fold_ratings;
        std::vector<real> residuals;
        if (snap->has_bias) {
          // Factors were trained on baseline residuals: remove the cold
          // user's baseline μ + b_i before the row solve.
          residuals.assign(vals.begin(), vals.end());
          for (std::size_t p = 0; p < residuals.size(); ++p) {
            residuals[p] -= snap->bias.global_mean() +
                            snap->bias.item_bias(request.fold_items[p]);
          }
          vals = residuals;
        }
        assemble_normal_equations(request.fold_items, vals, snap->y,
                                  snap->lambda, static_cast<int>(k),
                                  gram.data() + f * k * k, rhs.data() + f * k);
      }
    });
    batched_cholesky_solve(gram.data(), rhs.data(), foldins.size(),
                           static_cast<int>(k), *pool_);
    // Feed the breaker per fold-in: injected faults and non-finite factors
    // count as failures, everything else as success.
    for (std::size_t f = 0; f < foldins.size(); ++f) {
      if (!foldin_failed[f]) {
        const real* factor = rhs.data() + f * k;
        for (std::size_t c = 0; c < k; ++c) {
          if (!std::isfinite(factor[c])) {
            foldin_failed[f] = 1;
            break;
          }
        }
      }
      if (foldin_failed[f]) {
        breaker_.record_failure();
        statuses[foldins[f]] = ServeStatus::kSolveFailed;
      } else {
        breaker_.record_success();
      }
    }
  }

  // Stage 2 — score every request in parallel against the one snapshot.
  std::vector<ServeResult> results(batch.size());
  pool_->parallel_for(0, batch.size(), [&](std::size_t b, std::size_t e,
                                           unsigned) {
    for (std::size_t i = b; i < e; ++i) {
      if (errors[i]) continue;
      ServeRequest& request = batch[i];
      ServeResult& result = results[i];
      result.model_version = snap->version;
      if (statuses[i] != ServeStatus::kOk) {
        result.status = statuses[i];
        continue;
      }
      try {
        switch (request.kind) {
          case RequestKind::kPredict: {
            real score = vdot(snap->x.row(request.user).data(),
                              snap->y.row(request.item).data(), k);
            if (snap->has_bias) {
              score = snap->bias.combine(request.user, request.item, score);
            }
            result.score = score;
            break;
          }
          case RequestKind::kTopN: {
            const auto* bias = snap->has_bias ? &snap->bias : nullptr;
            result.topn =
                snap->ann
                    ? snap->ann->topn(snap->x.row(request.user), snap->y,
                                      request.n, options_.nprobe, bias,
                                      request.user)
                    : topn_from_factor(snap->x.row(request.user), snap->y,
                                       request.n, bias, request.user);
            cache_.put(request.user, request.n, snap->version, result.topn);
            break;
          }
          case RequestKind::kFoldIn: {
            const real* factor = rhs.data() + foldin_slot[i] * k;
            result.factor.assign(factor, factor + k);
            std::vector<index_t> exclude = request.fold_items;
            std::sort(exclude.begin(), exclude.end());
            const auto* bias = snap->has_bias ? &snap->bias : nullptr;
            result.topn =
                snap->ann ? snap->ann->topn(result.factor, snap->y, request.n,
                                            options_.nprobe, bias, -1, exclude)
                          : topn_from_factor(result.factor, snap->y, request.n,
                                             bias, -1, exclude);
            break;
          }
        }
      } catch (...) {
        errors[i] = std::current_exception();
      }
    }
  });

  const double exec_us = exec.seconds() * 1e6;
  metrics_.record_batch(batch.size(), batcher_ ? batcher_->queue_depth() : 0,
                        exec_us);

  // Fulfill promises last, after all shared state is settled.
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const double queue_us = micros_between(batch[i].enqueue_time, drain_time);
    // Record before fulfilling: a client that wakes on the future must see
    // its own request already counted in the metrics.
    if (statuses[i] != ServeStatus::kOk) metrics_.record_status(statuses[i]);
    metrics_.record_done(batch[i].kind, queue_us,
                         micros_between(batch[i].enqueue_time, clock::now()));
    if (errors[i]) {
      batch[i].promise.set_exception(errors[i]);
    } else {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

}  // namespace alsmf::serve
