// RecommendService: the thread-safe online serving front-end.
//
//   client threads ──submit──▶ MicroBatcher ──batch──▶ execute_batch
//                     │                                   │
//                     └─ LRU fast path (hot top-N)        ├─ batched fold-in
//                                                         │  Cholesky solves
//   retrainer ──swap_model──▶ ModelStore (RCU publish)    └─ parallel top-N
//                                                            scoring
//
// Every batch executes against exactly one model snapshot acquired at drain
// time; swap_model publishes a new snapshot without blocking in-flight
// batches and invalidates the result cache. All answers carry the snapshot
// version that produced them.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "robust/circuit_breaker.hpp"
#include "serve/batcher.hpp"
#include "serve/lru_cache.hpp"
#include "serve/model_store.hpp"
#include "serve/request.hpp"
#include "serve/serve_metrics.hpp"

namespace alsmf::serve {

struct ServiceOptions {
  std::size_t max_batch = 64;
  long max_wait_us = 200;          ///< batching window (latency/QPS knob)
  std::size_t cache_capacity = 4096;  ///< top-N LRU entries; 0 disables
  ThreadPool* pool = nullptr;      ///< solve/score pool; null = global pool
  /// Queued requests beyond which submits are rejected immediately
  /// (kRejectedQueueFull). 0 = unbounded.
  std::size_t max_queue = 0;
  /// Deadline stamped on every request at submit; requests still queued
  /// past it are shed at dequeue (kShedDeadline). 0 = no deadline.
  long default_deadline_us = 0;
  /// Fold-in circuit breaker: repeated solve failures temporarily fail
  /// fold-ins fast (kCircuitOpen) instead of burning batch slots.
  robust::CircuitBreakerOptions breaker;
  /// Partitions scanned per top-N query when the snapshot carries an ANN
  /// index; <= 0 uses the index's build-time default. Ignored for
  /// exhaustive snapshots.
  int nprobe = 0;
  /// Metrics registry the service reports into; null = a private registry
  /// owned by the service's ServeMetrics (the pipeline driver passes one
  /// shared registry so serving, index and staleness series co-reside).
  obs::Registry* registry = nullptr;
};

class RecommendService {
 public:
  /// `initial` may be null: the service starts in degraded mode, answering
  /// top-N from the popularity fallback (kDegraded) and everything else
  /// with kNoModel until swap_model publishes a snapshot.
  RecommendService(std::shared_ptr<ModelSnapshot> initial,
                   ServiceOptions options = {});
  ~RecommendService();  ///< stop(): drains the queue, fulfilling all promises

  RecommendService(const RecommendService&) = delete;
  RecommendService& operator=(const RecommendService&) = delete;

  // --- Asynchronous API (thread-safe) -------------------------------------
  /// Predicted score for (user, item). Future throws alsmf::Error on
  /// out-of-range ids (validated against the executing snapshot).
  std::future<ServeResult> submit_predict(index_t user, index_t item);
  /// Top-n recommendations for a known user. Hot users resolve from the
  /// LRU cache without entering the queue.
  std::future<ServeResult> submit_topn(index_t user, int n);
  /// Cold-start: solves the user's factor from their ratings (one row of
  /// the batch's Cholesky solve) and returns top-n over unrated items.
  std::future<ServeResult> submit_fold_in(std::vector<index_t> items,
                                          std::vector<real> ratings, int n);

  // --- Synchronous conveniences -------------------------------------------
  ServeResult predict(index_t user, index_t item);
  ServeResult topn(index_t user, int n);
  ServeResult fold_in(std::vector<index_t> items, std::vector<real> ratings,
                      int n);

  // --- Model lifecycle -----------------------------------------------------
  /// Publishes a retrained model with zero downtime: in-flight batches
  /// finish on the old snapshot, later batches use the new one, and the
  /// result cache is invalidated. Returns the new version.
  std::uint64_t swap_model(std::shared_ptr<ModelSnapshot> next);

  /// Publishes a rebuilt ANN index for the *current* factors (e.g. new
  /// cluster/nprobe parameters, or attaching/detaching the index) as a new
  /// snapshot version. The result cache is invalidated exactly as on a
  /// model swap — eagerly, plus lazily via the version tag — so a top-N
  /// list computed by the old index can never be served afterwards. Null
  /// detaches the index (back to exhaustive scoring). Returns the new
  /// version; requires a published snapshot.
  std::uint64_t swap_index(std::shared_ptr<const index::IvfIndex> ann);

  std::shared_ptr<const ModelSnapshot> snapshot() const { return store_.current(); }
  std::uint64_t model_version() const { return store_.version(); }

  /// Installs the degraded-mode answer: items ranked by global popularity,
  /// served as every user's top-N while no model snapshot is published.
  void set_popularity_fallback(std::vector<Recommendation> ranked);

  // --- Introspection -------------------------------------------------------
  const ServeMetrics& metrics() const { return metrics_; }
  const robust::CircuitBreaker& breaker() const { return breaker_; }
  CacheStats cache_stats() const;
  std::size_t queue_depth() const { return batcher_ ? batcher_->queue_depth() : 0; }
  /// Full metrics + cache report as a JSON object.
  std::string stats_json() const;
  /// Prometheus text exposition of the service's metric registry.
  std::string prometheus_text() const { return metrics_.prometheus_text(); }

  /// Stops the batcher after draining outstanding requests. Subsequent
  /// submits are executed inline (degraded, but never lost). Idempotent.
  void stop();

 private:
  std::future<ServeResult> enqueue(ServeRequest&& request);
  void execute_batch(std::vector<ServeRequest>&& batch);
  /// No snapshot published: answer the whole batch from the popularity
  /// fallback (top-N) or kNoModel (predict, fold-in).
  void execute_batch_degraded(std::vector<ServeRequest>&& batch);

  ServiceOptions options_;
  ThreadPool* pool_;
  ModelStore store_;
  TopNCache cache_;
  ServeMetrics metrics_;
  robust::CircuitBreaker breaker_;
  std::atomic<std::shared_ptr<const std::vector<Recommendation>>> fallback_;
  std::unique_ptr<MicroBatcher> batcher_;  // last: stops before members die
};

}  // namespace alsmf::serve
