#include "sparse/convert.hpp"

#include <algorithm>
#include <numeric>

namespace alsmf {

namespace {

/// Counting-sort style compression along `major` using key extractor
/// functions. Produces sorted-within-slice output.
struct Compressed {
  aligned_vector<nnz_t> ptr;
  aligned_vector<index_t> idx;
  aligned_vector<real> values;
};

Compressed compress(index_t major, const std::vector<Triplet>& entries,
                    bool row_major) {
  Compressed out;
  out.ptr.assign(static_cast<std::size_t>(major) + 1, 0);
  out.idx.resize(entries.size());
  out.values.resize(entries.size());

  for (const auto& t : entries) {
    auto key = static_cast<std::size_t>(row_major ? t.row : t.col);
    ++out.ptr[key + 1];
  }
  std::partial_sum(out.ptr.begin(), out.ptr.end(), out.ptr.begin());

  aligned_vector<nnz_t> cursor(out.ptr.begin(), out.ptr.end() - 1);
  for (const auto& t : entries) {
    auto key = static_cast<std::size_t>(row_major ? t.row : t.col);
    auto pos = static_cast<std::size_t>(cursor[key]++);
    out.idx[pos] = row_major ? t.col : t.row;
    out.values[pos] = t.value;
  }
  // Sort each slice by minor index (counting pass preserves input order, not
  // minor order, when the COO is unsorted).
  for (std::size_t u = 0; u < static_cast<std::size_t>(major); ++u) {
    auto b = static_cast<std::size_t>(out.ptr[u]);
    auto e = static_cast<std::size_t>(out.ptr[u + 1]);
    if (e - b < 2) continue;
    // Sort (idx, value) pairs jointly via index permutation.
    std::vector<std::size_t> perm(e - b);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::sort(perm.begin(), perm.end(), [&](std::size_t a, std::size_t c) {
      return out.idx[b + a] < out.idx[b + c];
    });
    aligned_vector<index_t> tmp_idx(e - b);
    aligned_vector<real> tmp_val(e - b);
    for (std::size_t p = 0; p < perm.size(); ++p) {
      tmp_idx[p] = out.idx[b + perm[p]];
      tmp_val[p] = out.values[b + perm[p]];
    }
    std::copy(tmp_idx.begin(), tmp_idx.end(), out.idx.begin() + static_cast<std::ptrdiff_t>(b));
    std::copy(tmp_val.begin(), tmp_val.end(), out.values.begin() + static_cast<std::ptrdiff_t>(b));
  }
  return out;
}

}  // namespace

Csr coo_to_csr(const Coo& coo) {
  auto c = compress(coo.rows(), coo.entries(), /*row_major=*/true);
  return Csr(coo.rows(), coo.cols(), std::move(c.ptr), std::move(c.idx),
             std::move(c.values));
}

Csc coo_to_csc(const Coo& coo) {
  auto c = compress(coo.cols(), coo.entries(), /*row_major=*/false);
  return Csc(coo.rows(), coo.cols(), std::move(c.ptr), std::move(c.idx),
             std::move(c.values));
}

Coo csr_to_coo(const Csr& csr) {
  Coo coo(csr.rows(), csr.cols());
  coo.reserve(csr.nnz());
  for (index_t u = 0; u < csr.rows(); ++u) {
    auto cols = csr.row_cols(u);
    auto vals = csr.row_values(u);
    for (std::size_t p = 0; p < cols.size(); ++p) coo.add(u, cols[p], vals[p]);
  }
  return coo;
}

Csc csr_to_csc(const Csr& csr) {
  const auto cols = static_cast<std::size_t>(csr.cols());
  aligned_vector<nnz_t> col_ptr(cols + 1, 0);
  aligned_vector<index_t> row_idx(static_cast<std::size_t>(csr.nnz()));
  aligned_vector<real> values(static_cast<std::size_t>(csr.nnz()));

  for (auto j : csr.col_idx()) ++col_ptr[static_cast<std::size_t>(j) + 1];
  std::partial_sum(col_ptr.begin(), col_ptr.end(), col_ptr.begin());

  aligned_vector<nnz_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  for (index_t u = 0; u < csr.rows(); ++u) {
    auto cs = csr.row_cols(u);
    auto vs = csr.row_values(u);
    for (std::size_t p = 0; p < cs.size(); ++p) {
      auto pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(cs[p])]++);
      row_idx[pos] = u;
      values[pos] = vs[p];
    }
  }
  return Csc(csr.rows(), csr.cols(), std::move(col_ptr), std::move(row_idx),
             std::move(values));
}

Csr csc_to_csr(const Csc& csc) {
  const auto rows = static_cast<std::size_t>(csc.rows());
  aligned_vector<nnz_t> row_ptr(rows + 1, 0);
  aligned_vector<index_t> col_idx(static_cast<std::size_t>(csc.nnz()));
  aligned_vector<real> values(static_cast<std::size_t>(csc.nnz()));

  for (auto u : csc.row_idx()) ++row_ptr[static_cast<std::size_t>(u) + 1];
  std::partial_sum(row_ptr.begin(), row_ptr.end(), row_ptr.begin());

  aligned_vector<nnz_t> cursor(row_ptr.begin(), row_ptr.end() - 1);
  for (index_t i = 0; i < csc.cols(); ++i) {
    auto rs = csc.col_rows(i);
    auto vs = csc.col_values(i);
    for (std::size_t p = 0; p < rs.size(); ++p) {
      auto pos = static_cast<std::size_t>(cursor[static_cast<std::size_t>(rs[p])]++);
      col_idx[pos] = i;
      values[pos] = vs[p];
    }
  }
  return Csr(csc.rows(), csc.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

Csr transpose(const Csr& csr) {
  Csc csc = csr_to_csc(csr);
  // CSC arrays of R are exactly the CSR arrays of Rᵀ.
  return Csr(csr.cols(), csr.rows(),
             aligned_vector<nnz_t>(csc.col_ptr()),
             aligned_vector<index_t>(csc.row_idx()),
             aligned_vector<real>(csc.values()));
}

}  // namespace alsmf
