// Conversions between sparse formats.
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// COO → CSR. Input need not be sorted; duplicates are an error.
Csr coo_to_csr(const Coo& coo);

/// COO → CSC.
Csc coo_to_csc(const Coo& coo);

/// CSR → COO (row-major canonical order).
Coo csr_to_coo(const Csr& csr);

/// CSR → CSC of the *same* matrix (i.e. a column-oriented view of R).
/// Linear-time two-pass counting transpose.
Csc csr_to_csc(const Csr& csr);

/// CSC → CSR of the same matrix.
Csr csc_to_csr(const Csc& csc);

/// Explicit transpose: returns CSR of Rᵀ.
Csr transpose(const Csr& csr);

}  // namespace alsmf
