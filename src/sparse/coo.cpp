#include "sparse/coo.hpp"

#include <algorithm>

namespace alsmf {

void Coo::sort_row_major() {
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Triplet& a, const Triplet& b) {
                     if (a.row != b.row) return a.row < b.row;
                     return a.col < b.col;
                   });
}

void Coo::dedup_keep_last() {
  if (entries_.empty()) return;
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (out > 0 && entries_[out - 1].row == entries_[i].row &&
        entries_[out - 1].col == entries_[i].col) {
      entries_[out - 1].value = entries_[i].value;  // keep last
    } else {
      entries_[out++] = entries_[i];
    }
  }
  entries_.resize(out);
}

bool Coo::is_canonical() const {
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const auto& a = entries_[i - 1];
    const auto& b = entries_[i];
    if (a.row > b.row) return false;
    if (a.row == b.row && a.col >= b.col) return false;
  }
  return true;
}

}  // namespace alsmf
