// Coordinate-format sparse matrix (triplets). Entry point for dataset
// loading and synthetic generation; converted to CSR/CSC before compute.
#pragma once

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace alsmf {

/// One rating: user u rated item i with value v.
struct Triplet {
  index_t row;
  index_t col;
  real value;

  friend bool operator==(const Triplet&, const Triplet&) = default;
};

/// Coordinate-format (COO) sparse matrix.
class Coo {
 public:
  Coo() = default;
  Coo(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
    ALSMF_CHECK(rows >= 0 && cols >= 0);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  nnz_t nnz() const { return static_cast<nnz_t>(entries_.size()); }

  void reserve(nnz_t n) { entries_.reserve(static_cast<std::size_t>(n)); }

  /// Appends an entry; bounds- and finiteness-checked (a single NaN rating
  /// would silently poison every factor it touches).
  void add(index_t row, index_t col, real value) {
    ALSMF_CHECK_MSG(row >= 0 && row < rows_, "row out of range");
    ALSMF_CHECK_MSG(col >= 0 && col < cols_, "col out of range");
    ALSMF_CHECK_MSG(std::isfinite(value), "non-finite rating");
    entries_.push_back({row, col, value});
  }

  const std::vector<Triplet>& entries() const { return entries_; }
  std::vector<Triplet>& entries() { return entries_; }

  /// Sorts entries row-major (row, then col). Stable order for determinism.
  void sort_row_major();

  /// Merges duplicate (row, col) pairs, keeping the last value.
  /// Requires row-major sorted input; keeps the matrix sorted.
  void dedup_keep_last();

  /// Sorts row-major and merges duplicates (last value wins) — the form
  /// conversions require. Raw rating logs often repeat (user, item) pairs.
  void canonicalize() {
    sort_row_major();
    dedup_keep_last();
  }

  /// True when entries are sorted row-major with no duplicates.
  bool is_canonical() const;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<Triplet> entries_;
};

}  // namespace alsmf
