#include "sparse/csr.hpp"

#include <algorithm>

namespace alsmf {

namespace {

/// Shared invariant check for a compressed axis: ptr has `major+1` monotone
/// entries ending at nnz; indices are in [0, minor) and strictly increasing
/// within each major slice.
bool check_compressed(index_t major, index_t minor,
                      const aligned_vector<nnz_t>& ptr,
                      const aligned_vector<index_t>& idx,
                      const aligned_vector<real>& values) {
  if (major < 0 || minor < 0) return false;
  if (ptr.size() != static_cast<std::size_t>(major) + 1) return false;
  if (idx.size() != values.size()) return false;
  if (ptr.front() != 0) return false;
  if (ptr.back() != static_cast<nnz_t>(idx.size())) return false;
  for (std::size_t u = 0; u < static_cast<std::size_t>(major); ++u) {
    if (ptr[u] > ptr[u + 1]) return false;
    for (nnz_t p = ptr[u]; p < ptr[u + 1]; ++p) {
      auto j = idx[static_cast<std::size_t>(p)];
      if (j < 0 || j >= minor) return false;
      if (p > ptr[u] && idx[static_cast<std::size_t>(p - 1)] >= j) return false;
    }
  }
  return true;
}

}  // namespace

Csr::Csr(index_t rows, index_t cols, aligned_vector<nnz_t> row_ptr,
         aligned_vector<index_t> col_idx, aligned_vector<real> values)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  ALSMF_CHECK_MSG(check_invariants(), "invalid CSR arrays");
}

real Csr::at(index_t row, index_t col) const {
  ALSMF_CHECK(row >= 0 && row < rows_);
  ALSMF_CHECK(col >= 0 && col < cols_);
  auto cols_span = row_cols(row);
  auto it = std::lower_bound(cols_span.begin(), cols_span.end(), col);
  if (it == cols_span.end() || *it != col) return real{0};
  auto offset = static_cast<std::size_t>(it - cols_span.begin());
  return row_values(row)[offset];
}

bool Csr::check_invariants() const {
  return check_compressed(rows_, cols_, row_ptr_, col_idx_, values_);
}

Csc::Csc(index_t rows, index_t cols, aligned_vector<nnz_t> col_ptr,
         aligned_vector<index_t> row_idx, aligned_vector<real> values)
    : rows_(rows),
      cols_(cols),
      col_ptr_(std::move(col_ptr)),
      row_idx_(std::move(row_idx)),
      values_(std::move(values)) {
  ALSMF_CHECK_MSG(check_invariants(), "invalid CSC arrays");
}

bool Csc::check_invariants() const {
  return check_compressed(cols_, rows_, col_ptr_, row_idx_, values_);
}

}  // namespace alsmf
