// Compressed sparse row (CSR) storage of the rating matrix R, exactly the
// three-array layout described in the paper (Fig. 2): `value`, `col_idx`,
// and `row_ptr`.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace alsmf {

class Coo;

class Csr {
 public:
  Csr() = default;

  /// Builds from pre-assembled arrays (validated).
  Csr(index_t rows, index_t cols, aligned_vector<nnz_t> row_ptr,
      aligned_vector<index_t> col_idx, aligned_vector<real> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  nnz_t nnz() const { return static_cast<nnz_t>(values_.size()); }

  /// Number of stored entries in row u (the paper's `omegaSize`).
  nnz_t row_nnz(index_t u) const {
    ALSMF_CHECK(u >= 0 && u < rows_);
    return row_ptr_[static_cast<std::size_t>(u) + 1] -
           row_ptr_[static_cast<std::size_t>(u)];
  }

  /// Column indices of row u's stored entries.
  std::span<const index_t> row_cols(index_t u) const {
    auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(u)]);
    auto e = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(u) + 1]);
    return {col_idx_.data() + b, e - b};
  }

  /// Values of row u's stored entries.
  std::span<const real> row_values(index_t u) const {
    auto b = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(u)]);
    auto e = static_cast<std::size_t>(row_ptr_[static_cast<std::size_t>(u) + 1]);
    return {values_.data() + b, e - b};
  }

  const aligned_vector<nnz_t>& row_ptr() const { return row_ptr_; }
  const aligned_vector<index_t>& col_idx() const { return col_idx_; }
  const aligned_vector<real>& values() const { return values_; }
  aligned_vector<real>& values() { return values_; }

  /// Reads a single entry (linear scan of the row); 0 when absent.
  real at(index_t row, index_t col) const;

  /// Structural + ordering invariants (monotone row_ptr, in-range sorted
  /// columns). Used by tests and after deserialization.
  bool check_invariants() const;

  friend bool operator==(const Csr&, const Csr&) = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  aligned_vector<nnz_t> row_ptr_;
  aligned_vector<index_t> col_idx_;
  aligned_vector<real> values_;
};

/// Compressed sparse column (CSC) storage, used when updating Y (the paper
/// stores R in both forms). Structurally the CSR of Rᵀ with named accessors.
class Csc {
 public:
  Csc() = default;
  Csc(index_t rows, index_t cols, aligned_vector<nnz_t> col_ptr,
      aligned_vector<index_t> row_idx, aligned_vector<real> values);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  nnz_t nnz() const { return static_cast<nnz_t>(values_.size()); }

  nnz_t col_nnz(index_t i) const {
    ALSMF_CHECK(i >= 0 && i < cols_);
    return col_ptr_[static_cast<std::size_t>(i) + 1] -
           col_ptr_[static_cast<std::size_t>(i)];
  }

  std::span<const index_t> col_rows(index_t i) const {
    auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(i)]);
    auto e = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(i) + 1]);
    return {row_idx_.data() + b, e - b};
  }

  std::span<const real> col_values(index_t i) const {
    auto b = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(i)]);
    auto e = static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(i) + 1]);
    return {values_.data() + b, e - b};
  }

  const aligned_vector<nnz_t>& col_ptr() const { return col_ptr_; }
  const aligned_vector<index_t>& row_idx() const { return row_idx_; }
  const aligned_vector<real>& values() const { return values_; }

  bool check_invariants() const;

  friend bool operator==(const Csc&, const Csc&) = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  aligned_vector<nnz_t> col_ptr_;
  aligned_vector<index_t> row_idx_;
  aligned_vector<real> values_;
};

}  // namespace alsmf
