#include "sparse/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace alsmf {

namespace {

/// Splits a line on any of the separator characters, collapsing runs.
void split_fields(const std::string& line, const std::string& seps,
                  std::vector<std::string>& out) {
  out.clear();
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && seps.find(line[i]) != std::string::npos) ++i;
    std::size_t j = i;
    while (j < line.size() && seps.find(line[j]) == std::string::npos) ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
}

constexpr char kMagic[8] = {'A', 'L', 'S', 'C', 'S', 'R', '0', '1'};

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
void read_pod(std::istream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  ALSMF_CHECK_MSG(in.good(), "truncated binary CSR stream");
}

template <class T>
void write_array(std::ostream& out, const aligned_vector<T>& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <class T>
aligned_vector<T> read_array(std::istream& in, std::uint64_t expected) {
  std::uint64_t n = 0;
  read_pod(in, n);
  // Validate the stored length before allocating: a corrupted length field
  // must throw, not attempt a multi-terabyte allocation.
  ALSMF_CHECK_MSG(n == expected, "binary CSR array length mismatch");
  aligned_vector<T> v(static_cast<std::size_t>(n));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(T)));
  ALSMF_CHECK_MSG(in.good(), "truncated binary CSR stream");
  return v;
}

}  // namespace

Coo read_ratings_text(std::istream& in, const TextFormat& fmt,
                      index_t rows_hint, index_t cols_hint) {
  std::vector<Triplet> raw;
  index_t max_row = -1, max_col = -1;
  std::string line;
  std::vector<std::string> fields;
  const index_t base = fmt.one_based_ids ? 1 : 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (fmt.comment_chars.find(line[0]) != std::string::npos) continue;
    split_fields(line, fmt.separators, fields);
    if (fields.size() < 3) continue;  // tolerate ragged trailer lines
    const index_t u = static_cast<index_t>(std::stoll(fields[0])) - base;
    const index_t i = static_cast<index_t>(std::stoll(fields[1])) - base;
    const real v = static_cast<real>(std::stod(fields[2]));
    ALSMF_CHECK_MSG(u >= 0 && i >= 0, "negative id after base adjustment");
    raw.push_back({u, i, v});
    max_row = std::max(max_row, u);
    max_col = std::max(max_col, i);
  }
  const index_t rows = rows_hint > 0 ? rows_hint : max_row + 1;
  const index_t cols = cols_hint > 0 ? cols_hint : max_col + 1;
  Coo coo(rows, cols);
  coo.reserve(static_cast<nnz_t>(raw.size()));
  for (const auto& t : raw) coo.add(t.row, t.col, t.value);
  return coo;
}

Coo read_ratings_file(const std::string& path, const TextFormat& fmt) {
  std::ifstream in(path);
  ALSMF_CHECK_MSG(in.good(), "cannot open ratings file: " + path);
  return read_ratings_text(in, fmt);
}

void write_ratings_text(std::ostream& out, const Coo& coo,
                        const TextFormat& fmt) {
  const index_t base = fmt.one_based_ids ? 1 : 0;
  for (const auto& t : coo.entries()) {
    out << (t.row + base) << ' ' << (t.col + base) << ' ' << t.value << '\n';
  }
}

Coo read_matrix_market(std::istream& in) {
  std::string line;
  ALSMF_CHECK_MSG(std::getline(in, line), "empty MatrixMarket stream");
  std::vector<std::string> fields;
  split_fields(line, " \t", fields);
  ALSMF_CHECK_MSG(fields.size() >= 4 && fields[0] == "%%MatrixMarket" &&
                      fields[1] == "matrix" && fields[2] == "coordinate",
                  "not a MatrixMarket coordinate header");
  const std::string& value_type = fields[3];
  ALSMF_CHECK_MSG(value_type == "real" || value_type == "integer" ||
                      value_type == "pattern",
                  "unsupported MatrixMarket value type: " + value_type);
  const bool pattern = value_type == "pattern";
  bool symmetric = false;
  if (fields.size() >= 5) {
    if (fields[4] == "symmetric") {
      symmetric = true;
    } else {
      ALSMF_CHECK_MSG(fields[4] == "general",
                      "unsupported MatrixMarket symmetry: " + fields[4]);
    }
  }

  // Skip comments, read the size line.
  index_t rows = 0, cols = 0;
  nnz_t nnz = 0;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    split_fields(line, " \t", fields);
    ALSMF_CHECK_MSG(fields.size() >= 3, "bad MatrixMarket size line");
    rows = static_cast<index_t>(std::stoll(fields[0]));
    cols = static_cast<index_t>(std::stoll(fields[1]));
    nnz = static_cast<nnz_t>(std::stoll(fields[2]));
    break;
  }
  ALSMF_CHECK_MSG(rows > 0 && cols > 0, "missing MatrixMarket size line");

  Coo coo(rows, cols);
  coo.reserve(symmetric ? 2 * nnz : nnz);
  nnz_t read = 0;
  while (read < nnz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    split_fields(line, " \t", fields);
    ALSMF_CHECK_MSG(fields.size() >= (pattern ? 2u : 3u),
                    "bad MatrixMarket entry line");
    const index_t r = static_cast<index_t>(std::stoll(fields[0])) - 1;
    const index_t c = static_cast<index_t>(std::stoll(fields[1])) - 1;
    const real v =
        pattern ? real{1} : static_cast<real>(std::stod(fields[2]));
    coo.add(r, c, v);
    if (symmetric && r != c) coo.add(c, r, v);
    ++read;
  }
  ALSMF_CHECK_MSG(read == nnz, "truncated MatrixMarket stream");
  coo.sort_row_major();
  return coo;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  ALSMF_CHECK_MSG(in.good(), "cannot open MatrixMarket file: " + path);
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Coo& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by alsmf\n";
  out << coo.rows() << " " << coo.cols() << " " << coo.nnz() << "\n";
  for (const auto& t : coo.entries()) {
    out << (t.row + 1) << " " << (t.col + 1) << " " << t.value << "\n";
  }
}

void write_matrix_market_file(const std::string& path, const Coo& coo) {
  std::ofstream out(path);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_matrix_market(out, coo);
}

void write_csr_binary(std::ostream& out, const Csr& csr) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, static_cast<std::int64_t>(csr.rows()));
  write_pod(out, static_cast<std::int64_t>(csr.cols()));
  write_array(out, csr.row_ptr());
  write_array(out, csr.col_idx());
  write_array(out, csr.values());
}

Csr read_csr_binary(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  ALSMF_CHECK_MSG(in.good() && std::memcmp(magic, kMagic, 8) == 0,
                  "bad CSR binary magic");
  std::int64_t rows = 0, cols = 0;
  read_pod(in, rows);
  read_pod(in, cols);
  // Sanity-bound the header before sizing any allocation from it.
  constexpr std::int64_t kMaxDim = std::int64_t{1} << 40;
  ALSMF_CHECK_MSG(rows >= 0 && cols >= 0 && rows < kMaxDim && cols < kMaxDim,
                  "implausible binary CSR dimensions");
  auto row_ptr = read_array<nnz_t>(in, static_cast<std::uint64_t>(rows) + 1);
  const nnz_t nnz = row_ptr.empty() ? 0 : row_ptr.back();
  // Dense bound checked in floating point to avoid int64 overflow.
  const long double dense_cells =
      static_cast<long double>(rows) * static_cast<long double>(std::max<std::int64_t>(cols, 1));
  ALSMF_CHECK_MSG(nnz >= 0 && (rows == 0 ||
                               static_cast<long double>(nnz) <= dense_cells),
                  "implausible binary CSR nonzero count");
  auto col_idx = read_array<index_t>(in, static_cast<std::uint64_t>(nnz));
  auto values = read_array<real>(in, static_cast<std::uint64_t>(nnz));
  return Csr(rows, cols, std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

void write_csr_binary_file(const std::string& path, const Csr& csr) {
  std::ofstream out(path, std::ios::binary);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_csr_binary(out, csr);
}

Csr read_csr_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  ALSMF_CHECK_MSG(in.good(), "cannot open for read: " + path);
  return read_csr_binary(in);
}

}  // namespace alsmf
