// Dataset I/O: the paper's `<userID, itemID, rating>` text format plus a
// compact binary format for preprocessed matrices.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// Options for parsing `<userID, itemID, rating>` text files
/// (MovieLens `::`-separated, Netflix/Yahoo whitespace or comma separated).
struct TextFormat {
  /// Accepted field separators; any of these characters splits fields.
  std::string separators = " \t,:";
  /// Whether IDs in the file are 1-based (MovieLens) and must be shifted.
  bool one_based_ids = true;
  /// Lines starting with any of these characters are skipped.
  std::string comment_chars = "#%";
};

/// Parses rating triplets from a stream. Grows dimensions to fit the data
/// unless rows/cols hints are provided (then out-of-range entries throw).
Coo read_ratings_text(std::istream& in, const TextFormat& fmt = {},
                      index_t rows_hint = 0, index_t cols_hint = 0);

/// Convenience file wrapper around read_ratings_text.
Coo read_ratings_file(const std::string& path, const TextFormat& fmt = {});

/// Writes triplets as `user item rating` lines (1-based when fmt says so).
void write_ratings_text(std::ostream& out, const Coo& coo,
                        const TextFormat& fmt = {});

/// Matrix Market coordinate format (the sparse-matrix community's
/// interchange format): `%%MatrixMarket matrix coordinate real general`,
/// a `rows cols nnz` size line, then 1-based `row col value` triplets.
/// `pattern` matrices read with value 1; `symmetric` matrices are
/// expanded. Throws on other qualifiers.
Coo read_matrix_market(std::istream& in);
Coo read_matrix_market_file(const std::string& path);
void write_matrix_market(std::ostream& out, const Coo& coo);
void write_matrix_market_file(const std::string& path, const Coo& coo);

/// Binary snapshot of a CSR matrix (little-endian, versioned header).
void write_csr_binary(std::ostream& out, const Csr& csr);
Csr read_csr_binary(std::istream& in);

void write_csr_binary_file(const std::string& path, const Csr& csr);
Csr read_csr_binary_file(const std::string& path);

}  // namespace alsmf
