#include "sparse/reorder.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace alsmf {

Csr permute_rows(const Csr& csr, const std::vector<index_t>& perm) {
  ALSMF_CHECK(static_cast<index_t>(perm.size()) == csr.rows());
  // Validate it is a permutation.
  {
    std::vector<bool> seen(perm.size(), false);
    for (auto p : perm) {
      ALSMF_CHECK_MSG(p >= 0 && p < csr.rows() && !seen[static_cast<std::size_t>(p)],
                      "not a permutation");
      seen[static_cast<std::size_t>(p)] = true;
    }
  }

  aligned_vector<nnz_t> row_ptr(perm.size() + 1, 0);
  aligned_vector<index_t> col_idx(static_cast<std::size_t>(csr.nnz()));
  aligned_vector<real> values(static_cast<std::size_t>(csr.nnz()));
  nnz_t out = 0;
  for (std::size_t u = 0; u < perm.size(); ++u) {
    const index_t src = perm[u];
    auto cols = csr.row_cols(src);
    auto vals = csr.row_values(src);
    std::copy(cols.begin(), cols.end(), col_idx.begin() + static_cast<std::ptrdiff_t>(out));
    std::copy(vals.begin(), vals.end(), values.begin() + static_cast<std::ptrdiff_t>(out));
    out += static_cast<nnz_t>(cols.size());
    row_ptr[u + 1] = out;
  }
  return Csr(csr.rows(), csr.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

std::vector<index_t> sort_rows_by_length(const Csr& csr) {
  std::vector<index_t> perm(static_cast<std::size_t>(csr.rows()));
  std::iota(perm.begin(), perm.end(), index_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](index_t a, index_t b) {
    return csr.row_nnz(a) > csr.row_nnz(b);
  });
  return perm;
}

std::vector<index_t> invert_permutation(const std::vector<index_t>& perm) {
  std::vector<index_t> inv(perm.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<index_t>(i);
  }
  return inv;
}

}  // namespace alsmf
