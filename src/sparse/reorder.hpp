// Row reordering: the classic load-balancing remedy for the flat mapping's
// warp divergence — sort rows by length so that lanes of a bundle process
// similar-length rows. Used by the reordering ablation bench.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace alsmf {

/// Applies a row permutation: row `perm[u]` of the input becomes row u of
/// the output. `perm` must be a permutation of [0, rows).
Csr permute_rows(const Csr& csr, const std::vector<index_t>& perm);

/// Permutation that sorts rows by descending nonzero count (ties by index,
/// so the result is deterministic).
std::vector<index_t> sort_rows_by_length(const Csr& csr);

/// Inverse permutation (for mapping factor rows back to original ids).
std::vector<index_t> invert_permutation(const std::vector<index_t>& perm);

}  // namespace alsmf
