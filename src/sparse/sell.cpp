#include "sparse/sell.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

SellMatrix::SellMatrix(const Csr& csr, int c, int sigma)
    : rows_(csr.rows()), cols_(csr.cols()), nnz_(csr.nnz()), c_(c),
      sigma_(sigma) {
  ALSMF_CHECK(c > 0);
  ALSMF_CHECK_MSG(sigma >= c && sigma % c == 0,
                  "sigma must be a positive multiple of C");

  lengths_.resize(static_cast<std::size_t>(rows_));
  for (index_t u = 0; u < rows_; ++u) {
    lengths_[static_cast<std::size_t>(u)] = csr.row_nnz(u);
  }

  // Sort rows by descending length inside each sigma window.
  std::vector<index_t> order(static_cast<std::size_t>(rows_));
  std::iota(order.begin(), order.end(), index_t{0});
  for (std::size_t base = 0; base < order.size();
       base += static_cast<std::size_t>(sigma_)) {
    const auto end = std::min(order.size(), base + static_cast<std::size_t>(sigma_));
    std::stable_sort(order.begin() + static_cast<std::ptrdiff_t>(base),
                     order.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](index_t a, index_t b) {
                       return lengths_[static_cast<std::size_t>(a)] >
                              lengths_[static_cast<std::size_t>(b)];
                     });
  }

  const index_t slices = num_slices();
  perm_.assign(static_cast<std::size_t>(slices) * static_cast<std::size_t>(c_),
               index_t{-1});
  for (std::size_t i = 0; i < order.size(); ++i) perm_[i] = order[i];

  // Slice widths and offsets.
  slice_ptr_.assign(static_cast<std::size_t>(slices) + 1, 0);
  for (index_t s = 0; s < slices; ++s) {
    nnz_t width = 0;
    for (int lane = 0; lane < c_; ++lane) {
      const index_t r = perm_[static_cast<std::size_t>(s) * c_ + static_cast<std::size_t>(lane)];
      if (r >= 0) width = std::max(width, lengths_[static_cast<std::size_t>(r)]);
    }
    slice_ptr_[static_cast<std::size_t>(s) + 1] =
        slice_ptr_[static_cast<std::size_t>(s)] + width * c_;
  }

  // Fill padded column-major slices (padding: col 0, value 0).
  col_idx_.assign(static_cast<std::size_t>(slice_ptr_.back()), 0);
  values_.assign(static_cast<std::size_t>(slice_ptr_.back()), real{0});
  for (index_t s = 0; s < slices; ++s) {
    for (int lane = 0; lane < c_; ++lane) {
      const index_t r = row_of(s, lane);
      if (r < 0) continue;
      auto cols = csr.row_cols(r);
      auto vals = csr.row_values(r);
      for (std::size_t j = 0; j < cols.size(); ++j) {
        const std::size_t o = offset(s, lane, static_cast<nnz_t>(j));
        col_idx_[o] = cols[j];
        values_[o] = vals[j];
      }
    }
  }
}

Csr SellMatrix::to_csr() const {
  Coo coo(rows_, cols_);
  coo.reserve(nnz_);
  for (index_t s = 0; s < num_slices(); ++s) {
    for (int lane = 0; lane < c_; ++lane) {
      const index_t r = row_of(s, lane);
      if (r < 0) continue;
      const nnz_t len = lane_length(s, lane);
      for (nnz_t j = 0; j < len; ++j) {
        coo.add(r, entry_col(s, lane, j), entry_value(s, lane, j));
      }
    }
  }
  coo.sort_row_major();
  return coo_to_csr(coo);
}

}  // namespace alsmf
