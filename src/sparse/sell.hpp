// SELL-C-sigma (sliced ELLPACK with local sorting): the storage-format
// remedy for SIMD-unfriendly CSR traversal, from the sparse-kernel line of
// work the paper builds on (Liu's CSR5 [9] and related formats).
//
// Rows are sorted by length inside windows of `sigma` rows, grouped into
// slices of `C` rows, and each slice is padded to its longest row and laid
// out column-major. Lanes of a SIMD bundle then walk equal-length columns:
// divergence becomes slice padding, which the local sort keeps small.
#pragma once

#include <vector>

#include "common/aligned_buffer.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

class SellMatrix {
 public:
  /// Builds from CSR. C = slice height (SIMD width), sigma = sorting window
  /// (a multiple of C; larger windows cut padding but scramble rows more).
  SellMatrix(const Csr& csr, int c, int sigma);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  nnz_t nnz() const { return nnz_; }
  int c() const { return c_; }
  int sigma() const { return sigma_; }
  index_t num_slices() const {
    return (rows_ + c_ - 1) / c_;
  }

  /// Stored entries including padding.
  nnz_t padded_size() const { return static_cast<nnz_t>(col_idx_.size()); }
  /// padded / nnz: the storage/compute overhead of the format (>= 1).
  double padding_factor() const {
    return nnz_ > 0 ? static_cast<double>(padded_size()) /
                          static_cast<double>(nnz_)
                    : 1.0;
  }

  /// Width (max row length) of slice s.
  nnz_t slice_width(index_t s) const {
    return (slice_ptr_[static_cast<std::size_t>(s) + 1] -
            slice_ptr_[static_cast<std::size_t>(s)]) /
           c_;
  }

  /// Original row id stored in lane `lane` of slice `s`.
  index_t row_of(index_t s, int lane) const {
    return perm_[static_cast<std::size_t>(s) * static_cast<std::size_t>(c_) +
                 static_cast<std::size_t>(lane)];
  }

  /// True row length (without padding) for a lane of a slice.
  nnz_t lane_length(index_t s, int lane) const {
    const index_t r = row_of(s, lane);
    return r < 0 ? 0 : lengths_[static_cast<std::size_t>(r)];
  }

  /// Element (column index / value) at position j of a lane's padded row.
  /// Padding positions return column 0 / value 0 (safe to multiply).
  index_t entry_col(index_t s, int lane, nnz_t j) const {
    return col_idx_[offset(s, lane, j)];
  }
  real entry_value(index_t s, int lane, nnz_t j) const {
    return values_[offset(s, lane, j)];
  }

  /// Backing arrays and the flat position of (s, lane, j) in them — used by
  /// the checked-execution accessors to mark exactly the entries a lane
  /// touches.
  const aligned_vector<index_t>& col_idx() const { return col_idx_; }
  const aligned_vector<real>& values() const { return values_; }
  std::size_t entry_offset(index_t s, int lane, nnz_t j) const {
    return offset(s, lane, j);
  }

  /// Reconstructs the CSR (for round-trip verification).
  Csr to_csr() const;

 private:
  std::size_t offset(index_t s, int lane, nnz_t j) const {
    // Column-major inside the slice: lane-adjacent elements contiguous.
    return static_cast<std::size_t>(slice_ptr_[static_cast<std::size_t>(s)]) +
           static_cast<std::size_t>(j) * static_cast<std::size_t>(c_) +
           static_cast<std::size_t>(lane);
  }

  index_t rows_ = 0, cols_ = 0;
  nnz_t nnz_ = 0;
  int c_ = 0, sigma_ = 0;
  aligned_vector<nnz_t> slice_ptr_;   ///< start offset of each slice
  aligned_vector<index_t> col_idx_;   ///< padded, column-major per slice
  aligned_vector<real> values_;
  std::vector<index_t> perm_;         ///< slice*C+lane -> original row (-1 pad)
  std::vector<nnz_t> lengths_;        ///< original row lengths
};

}  // namespace alsmf
