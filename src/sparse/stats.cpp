#include "sparse/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace alsmf {

namespace {

SliceStats stats_from_lengths(const std::vector<nnz_t>& lengths) {
  SliceStats s;
  s.count = static_cast<index_t>(lengths.size());
  if (lengths.empty()) return s;
  s.min = *std::min_element(lengths.begin(), lengths.end());
  s.max = *std::max_element(lengths.begin(), lengths.end());
  s.nnz = std::accumulate(lengths.begin(), lengths.end(), nnz_t{0});
  s.mean = static_cast<double>(s.nnz) / static_cast<double>(s.count);
  double var = 0.0;
  for (auto l : lengths) {
    const double d = static_cast<double>(l) - s.mean;
    var += d * d;
  }
  var /= static_cast<double>(s.count);
  s.stddev = std::sqrt(var);
  s.imbalance = s.mean > 0 ? static_cast<double>(s.max) / s.mean : 0.0;
  s.empty_slices = static_cast<index_t>(
      std::count(lengths.begin(), lengths.end(), nnz_t{0}));

  // Gini: 2*sum(i*x_i_sorted)/(n*sum(x)) - (n+1)/n
  if (s.nnz > 0) {
    std::vector<nnz_t> sorted = lengths;
    std::sort(sorted.begin(), sorted.end());
    long double weighted = 0.0L;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      weighted += static_cast<long double>(i + 1) * static_cast<long double>(sorted[i]);
    }
    const auto n = static_cast<long double>(sorted.size());
    const auto total = static_cast<long double>(s.nnz);
    s.gini = static_cast<double>(2.0L * weighted / (n * total) - (n + 1.0L) / n);
  }
  return s;
}

}  // namespace

std::vector<nnz_t> row_lengths(const Csr& csr) {
  std::vector<nnz_t> lengths(static_cast<std::size_t>(csr.rows()));
  for (index_t u = 0; u < csr.rows(); ++u) {
    lengths[static_cast<std::size_t>(u)] = csr.row_nnz(u);
  }
  return lengths;
}

std::vector<nnz_t> col_lengths(const Csr& csr) {
  std::vector<nnz_t> lengths(static_cast<std::size_t>(csr.cols()), 0);
  for (auto j : csr.col_idx()) ++lengths[static_cast<std::size_t>(j)];
  return lengths;
}

SliceStats row_stats(const Csr& csr) { return stats_from_lengths(row_lengths(csr)); }

SliceStats col_stats(const Csr& csr) { return stats_from_lengths(col_lengths(csr)); }

double warp_divergence_factor(const std::vector<nnz_t>& lengths, int warp) {
  if (lengths.empty() || warp <= 0) return 1.0;
  long double serial = 0.0L;  // sum over warps of warp-max length
  long double useful = 0.0L;  // sum of lengths
  for (std::size_t base = 0; base < lengths.size();
       base += static_cast<std::size_t>(warp)) {
    nnz_t mx = 0;
    const std::size_t end = std::min(lengths.size(), base + static_cast<std::size_t>(warp));
    for (std::size_t i = base; i < end; ++i) {
      mx = std::max(mx, lengths[i]);
      useful += static_cast<long double>(lengths[i]);
    }
    // Every lane of the warp (even idle trailing lanes) steps mx times.
    serial += static_cast<long double>(mx) * static_cast<long double>(warp);
  }
  if (useful <= 0.0L) return 1.0;
  return static_cast<double>(serial / useful);
}

std::vector<nnz_t> log2_histogram(const std::vector<nnz_t>& lengths) {
  std::vector<nnz_t> hist;
  for (auto l : lengths) {
    std::size_t b = 0;
    nnz_t v = l;
    while (v > 1) {
      v >>= 1;
      ++b;
    }
    if (hist.size() <= b) hist.resize(b + 1, 0);
    ++hist[b];
  }
  return hist;
}

}  // namespace alsmf
