// Row/column length statistics of the rating matrix. These drive both the
// paper's motivation (uneven row lengths => warp divergence) and the
// feature-based code-variant selector.
#pragma once

#include <vector>

#include "sparse/csr.hpp"

namespace alsmf {

/// Summary of nonzeros-per-slice (row or column) distribution.
struct SliceStats {
  index_t count = 0;     ///< number of rows (or columns)
  nnz_t nnz = 0;         ///< total stored entries
  nnz_t min = 0;         ///< shortest slice
  nnz_t max = 0;         ///< longest slice
  double mean = 0.0;
  double stddev = 0.0;
  /// max / mean: the load-imbalance factor a flat one-thread-per-row mapping
  /// suffers inside a warp.
  double imbalance = 0.0;
  /// Gini coefficient of slice lengths in [0, 1); 0 = perfectly even.
  double gini = 0.0;
  index_t empty_slices = 0;
};

/// Statistics over rows of a CSR matrix.
SliceStats row_stats(const Csr& csr);

/// Statistics over columns of a CSR matrix (via column counting).
SliceStats col_stats(const Csr& csr);

/// Expected serialization factor when consecutive slices are assigned to
/// lanes of `warp` threads: sum over warps of max(len) divided by sum of
/// len. 1.0 means divergence-free; larger means wasted lanes. This is the
/// quantity the paper's thread-batching removes.
double warp_divergence_factor(const std::vector<nnz_t>& lengths, int warp);

/// Slice lengths helper.
std::vector<nnz_t> row_lengths(const Csr& csr);
std::vector<nnz_t> col_lengths(const Csr& csr);

/// Histogram of slice lengths with log2 bucket boundaries; bucket b counts
/// slices with length in [2^b, 2^(b+1)).
std::vector<nnz_t> log2_histogram(const std::vector<nnz_t>& lengths);

}  // namespace alsmf
