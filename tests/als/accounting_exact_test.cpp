// Exact-count regression tests for the kernels' device-activity formulas.
// A single row with a known nonzero count makes every recorded quantity a
// closed-form number; these tests pin the accounting so model changes are
// deliberate, not accidental.
#include <gtest/gtest.h>

#include "als/kernels.hpp"
#include "als/reference.hpp"
#include "linalg/cholesky.hpp"
#include "sparse/convert.hpp"

namespace alsmf {
namespace {

constexpr int kK = 10;
constexpr double kOmega = 7;
constexpr double kPairs = 0.5 * kK * (kK + 1);  // 55

/// One row with 7 nonzeros; src factor sized to match.
struct OneRow {
  Csr r;
  Matrix src, dst;
  OneRow() {
    Coo coo(1, 16);
    for (index_t i = 0; i < static_cast<index_t>(kOmega); ++i) {
      coo.add(0, i * 2, 3.0f);
    }
    r = coo_to_csr(coo);
    src = Matrix(16, kK, 0.1f);
    dst = Matrix(1, kK);
  }
};

devsim::LaunchCounters run(const AlsVariant& v,
                           const devsim::DeviceProfile& p, int ws,
                           LinearSolverKind solver = LinearSolverKind::kCholesky) {
  OneRow fixture;
  devsim::Device device(p);
  UpdateArgs args;
  args.r = &fixture.r;
  args.src = &fixture.src;
  args.dst = &fixture.dst;
  args.lambda = 0.1f;
  args.k = kK;
  args.variant = v;
  args.solver = solver;
  return launch_update(device, "u", args, 1, ws, false).counters;
}

devsim::LaunchCounters section(const AlsVariant& v,
                               const devsim::DeviceProfile& p, int ws,
                               const std::string& name) {
  OneRow fixture;
  devsim::Device device(p);
  UpdateArgs args;
  args.r = &fixture.r;
  args.src = &fixture.src;
  args.dst = &fixture.dst;
  args.lambda = 0.1f;
  args.k = kK;
  args.variant = v;
  launch_update(device, "u", args, 1, ws, false);
  for (const auto& [key, s] : device.stats()) {
    if (key == "u/" + name) return s.counters;
  }
  return {};
}

TEST(AccountingExact, BatchedS1OpsGpuWs32) {
  // ws=32 on a 32-wide SIMT device: 1 bundle, 1 pass.
  // S1 ops = 1 bundle * 32 lanes * 1 pass * omega * k = 32*7*10 = 2240,
  // plus one staging chunk's two barriers: 2 * 30 * 1 bundle * 32 = 1920.
  const auto s1 = section(AlsVariant::batch_local(), devsim::k20c(), 32, "S1");
  EXPECT_DOUBLE_EQ(s1.lane_ops_scalar, 2240.0 + 1920.0);
}

TEST(AccountingExact, BatchedS1PassesDoubleAtWs8) {
  // ws=8 with k=10: passes = ceil(10/8) = 2 — the Fig. 10 mechanism.
  // The bundle still occupies a full 32-wide warp: 1*32*2*7*10 = 4480,
  // plus barriers 2*30*1*32 = 1920.
  const auto s1 = section(AlsVariant::batch_local(), devsim::k20c(), 8, "S1");
  EXPECT_DOUBLE_EQ(s1.lane_ops_scalar, 4480.0 + 1920.0);
}

TEST(AccountingExact, BatchedS1BundlesDoubleAtWs64) {
  // ws=64: 2 resident bundles, 1 pass: 2*32*1*7*10 = 4480, plus barriers
  // 2*30*2*32 = 3840.
  const auto s1 = section(AlsVariant::batch_local(), devsim::k20c(), 64, "S1");
  EXPECT_DOUBLE_EQ(s1.lane_ops_scalar, 4480.0 + 3840.0);
}

TEST(AccountingExact, BatchedS2OpsAndFlops) {
  const auto s2 = section(AlsVariant::batch_local(), devsim::k20c(), 32, "S2");
  // ops = 1*32*1*7 = 224; flops = 2*k*omega = 140.
  EXPECT_DOUBLE_EQ(s2.lane_ops_scalar, 224.0);
  EXPECT_DOUBLE_EQ(s2.useful_flops, 140.0);
}

TEST(AccountingExact, BatchedS3IsSolverFlopsTimesGroupWidth) {
  const auto s3 = section(AlsVariant::batch_local(), devsim::k20c(), 32, "S3");
  EXPECT_DOUBLE_EQ(s3.lane_ops_scalar, 32.0 * cholesky_solve_flops(kK));
  EXPECT_DOUBLE_EQ(s3.useful_flops, cholesky_solve_flops(kK));
}

TEST(AccountingExact, S1UsefulFlops) {
  const auto s1 = section(AlsVariant::batch_local(), devsim::k20c(), 32, "S1");
  EXPECT_DOUBLE_EQ(s1.useful_flops, 2.0 * kPairs * kOmega);  // 770
}

TEST(AccountingExact, LocalVariantTraffic) {
  const auto s1 = section(AlsVariant::batch_local(), devsim::k20c(), 32, "S1");
  // Stage: write omega*k*4 = 280 B; replay: 2*passes*omega*k*4 = 560 B.
  EXPECT_DOUBLE_EQ(s1.local_bytes, 280.0 + 560.0);
  // Cold gather: omega scattered accesses of k*4 useful bytes.
  EXPECT_DOUBLE_EQ(s1.scattered_accesses, kOmega);
  EXPECT_DOUBLE_EQ(s1.scattered_useful_bytes, kOmega * kK * 4.0);
  // CSR segment streams coalesced: omega * 8 B.
  EXPECT_DOUBLE_EQ(s1.global_bytes, kOmega * 8.0);
}

TEST(AccountingExact, UnstagedGpuPaysRereadsAndLatency) {
  const auto s1 =
      section(AlsVariant::batching_only(), devsim::k20c(), 32, "S1");
  // Rereads: 2*passes*omega - omega = 7 row-granular accesses + cold 7.
  EXPECT_DOUBLE_EQ(s1.scattered_accesses, 7.0 + 7.0);
  // Latency: 2*passes*omega*bundles*W*slots = 2*7*1*32*6 = 2688 extra ops.
  EXPECT_DOUBLE_EQ(s1.lane_ops_scalar, 2240.0 + 2688.0);
}

TEST(AccountingExact, NoRegistersSpillsOnGpuOnly) {
  const auto gpu =
      section(AlsVariant::batching_only(), devsim::k20c(), 32, "S1");
  // spill = 8*k*passes*omega*bundles*W = 8*10*7*32 = 17920 B.
  EXPECT_DOUBLE_EQ(gpu.spill_bytes, 17920.0);
  EXPECT_EQ(gpu.register_demand_peak, kK * kK + 8);

  const auto gpu_reg = section(AlsVariant::from_mask(1), devsim::k20c(), 32, "S1");
  EXPECT_DOUBLE_EQ(gpu_reg.spill_bytes, 0.0);
  EXPECT_EQ(gpu_reg.register_demand_peak, kK + 8);

  const auto cpu =
      section(AlsVariant::batching_only(), devsim::xeon_e5_2670_dual(), 32, "S1");
  EXPECT_DOUBLE_EQ(cpu.spill_bytes, 0.0);  // stack arrays stay in L1
}

TEST(AccountingExact, CpuGatherOpsOnUnstaged) {
  const auto p = devsim::xeon_e5_2670_dual();
  const auto s1 = section(AlsVariant::batching_only(), p, 32, "S1");
  // Base ops: bundles(4)*W(8)*passes(1)*omega*k = 2240, plus gathers:
  // 2*passes*omega*k*gather_ops scaled by scalar_eff/flat_eff.
  const double gather = 2.0 * kOmega * kK * p.gather_scalar_ops *
                        p.scalar_efficiency / p.flat_mapping_efficiency;
  EXPECT_NEAR(s1.lane_ops_scalar, 2240.0 + gather, 1e-9);
}

TEST(AccountingExact, VectorVariantMovesS1S2ToVectorOps) {
  const auto s1 =
      section(AlsVariant::batch_vectors(), devsim::k20c(), 32, "S1");
  EXPECT_DOUBLE_EQ(s1.lane_ops_vector, 2240.0);
  // The unstaged latency ops remain scalar.
  EXPECT_DOUBLE_EQ(s1.lane_ops_scalar, 2688.0);
}

TEST(AccountingExact, FlatOpsIncludeDivergencePadding) {
  // Single row in a 32-lane flat group: omega_max = omega, lanes padded to
  // the full warp on SIMT. S1 flat ops = 32 * omega * pairs * 4.
  const auto s1 =
      section(AlsVariant::flat_baseline(), devsim::k20c(), 32, "S1");
  const double base = 32.0 * kOmega * kPairs * 4.0;
  const double latency = 32.0 * kOmega * 2.0 * kPairs * 6.0;
  EXPECT_DOUBLE_EQ(s1.lane_ops_scalar, base + latency);
}

TEST(AccountingExact, TotalsEqualSumOfSections) {
  const auto total = run(AlsVariant::batch_local_reg(), devsim::k20c(), 32);
  double s = 0;
  for (const char* name : {"S1", "S2", "S3"}) {
    s += section(AlsVariant::batch_local_reg(), devsim::k20c(), 32, name)
             .lane_ops_scalar;
  }
  EXPECT_DOUBLE_EQ(total.lane_ops_scalar, s);
}

}  // namespace
}  // namespace alsmf
