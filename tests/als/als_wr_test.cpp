// ALS-WR (weighted-lambda regularization) behaviour across reference and
// device paths, plus the run_until stopping rule.
#include <gtest/gtest.h>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "als/solver.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions wr_opts() {
  AlsOptions o;
  o.k = 5;
  o.lambda = 0.05f;
  o.iterations = 5;
  o.seed = 3;
  o.num_groups = 128;
  o.weighted_regularization = true;
  return o;
}

TEST(AlsWr, DeviceMatchesReferenceBitwise) {
  const Csr train = testing::random_csr(60, 40, 0.15, 110);
  const AlsOptions o = wr_opts();
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batch_local_reg(), device);
  solver.run({});
  const auto ref = reference_als(train, o);
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(AlsWr, FlatAndBatchedAgree) {
  const Csr train = testing::random_csr(50, 30, 0.2, 111);
  const AlsOptions o = wr_opts();
  devsim::Device d1(devsim::k20c());
  AlsSolver batched(train, o, AlsVariant::batching_only(), d1);
  batched.run({});
  devsim::Device d2(devsim::k20c());
  AlsSolver flat(train, o, AlsVariant::flat_baseline(), d2);
  flat.run({});
  EXPECT_EQ(batched.x(), flat.x());
}

TEST(AlsWr, DiffersFromPlainAls) {
  const Csr train = testing::random_csr(50, 30, 0.2, 112);
  AlsOptions wr = wr_opts();
  AlsOptions plain = wr_opts();
  plain.weighted_regularization = false;
  const auto a = reference_als(train, wr);
  const auto b = reference_als(train, plain);
  EXPECT_NE(a.x, b.x);
}

TEST(AlsWr, WeightedLossDecreasesMonotonically) {
  const Csr train = testing::random_csr(70, 50, 0.1, 113);
  const AlsOptions o = wr_opts();
  devsim::Device device(devsim::xeon_e5_2670_dual());
  AlsSolver solver(train, o, AlsVariant::batch_local(), device);
  double prev = solver.train_loss();
  for (int it = 0; it < 5; ++it) {
    solver.run_iteration();
    const double cur = solver.train_loss();
    EXPECT_LE(cur, prev * (1 + 1e-4)) << it;
    prev = cur;
  }
}

TEST(AlsWr, ShrinksHeavyRowsMore) {
  // Weighted ridge penalizes high-degree rows harder; with a large lambda
  // the heavy row's factor norm shrinks relative to plain ALS.
  Coo coo(4, 30);
  for (index_t i = 0; i < 30; ++i) coo.add(0, i, 4.0f);  // heavy row
  coo.add(1, 0, 4.0f);                                   // light row
  coo.add(2, 5, 4.0f);
  coo.add(3, 9, 4.0f);
  const Csr train = coo_to_csr(coo);
  AlsOptions wr = wr_opts();
  wr.lambda = 1.0f;
  wr.iterations = 3;
  AlsOptions plain = wr;
  plain.weighted_regularization = false;
  const auto a = reference_als(train, wr);
  const auto b = reference_als(train, plain);
  const auto norm = [](const Matrix& m, index_t r) {
    double s = 0;
    for (auto v : m.row(r)) s += static_cast<double>(v) * v;
    return s;
  };
  EXPECT_LT(norm(a.x, 0), norm(b.x, 0));
}

TEST(RunUntil, StopsOnConvergence) {
  // Planted low-rank data: ALS converges fast (random dense noise would
  // keep grinding slowly and never hit a tight tolerance).
  SyntheticSpec spec;
  spec.users = 150;
  spec.items = 100;
  spec.nnz = 6000;
  spec.planted_rank = 3;
  spec.noise = 0.05;
  spec.seed = 114;
  const Csr train = coo_to_csr(generate_synthetic(spec));
  AlsOptions o = wr_opts();
  o.weighted_regularization = false;
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batch_local_reg(), device);
  const auto report = solver.run_until(2e-2, 50);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.iterations, 50);
  EXPECT_EQ(report.loss_per_iteration.size(),
            static_cast<std::size_t>(report.iterations));
  // Trajectory is non-increasing.
  for (std::size_t i = 1; i < report.loss_per_iteration.size(); ++i) {
    EXPECT_LE(report.loss_per_iteration[i],
              report.loss_per_iteration[i - 1] * (1 + 1e-4));
  }
}

TEST(RunUntil, RespectsIterationCap) {
  const Csr train = testing::random_csr(40, 30, 0.2, 115);
  AlsOptions o = wr_opts();
  o.weighted_regularization = false;
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batching_only(), device);
  const auto report = solver.run_until(0.0, 3);  // tol 0: never converges
  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.iterations, 3);
}

TEST(RunUntil, RequiresFunctionalMode) {
  const Csr train = testing::random_csr(20, 20, 0.2, 116);
  AlsOptions o = wr_opts();
  o.functional = false;
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batching_only(), device);
  EXPECT_THROW(solver.run_until(1e-3, 5), Error);
}

TEST(AlsWr, BetterHoldoutOnSparseTail) {
  // WR's per-row weighting typically generalizes at least as well on data
  // with many low-degree users.
  SyntheticSpec spec;
  spec.users = 500;
  spec.items = 300;
  spec.nnz = 10000;
  spec.user_alpha = 1.1;  // long tail of 1-2 rating users
  spec.planted_rank = 3;
  spec.noise = 0.2;
  spec.seed = 117;
  const Coo all = generate_synthetic(spec);
  auto [train_coo, test_coo] = split_holdout(all, 0.15, 5);
  const Csr train = coo_to_csr(train_coo);

  AlsOptions wr = wr_opts();
  wr.k = 6;
  wr.iterations = 10;
  AlsOptions plain = wr;
  plain.weighted_regularization = false;
  const auto a = reference_als(train, wr);
  const auto b = reference_als(train, plain);
  const double rmse_wr = rmse(test_coo, a.x, a.y);
  const double rmse_plain = rmse(test_coo, b.x, b.y);
  EXPECT_LT(rmse_wr, rmse_plain * 1.1);  // no worse than plain (usually better)
}

}  // namespace
}  // namespace alsmf
