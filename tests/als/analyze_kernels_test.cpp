// The analyze-kernels sweep (the static CI gate): every generated kernel on
// every built-in profile must deep-lint clean and produce a well-formed
// StaticKernelProfile, and the JSON the gate emits must parse.
#include "als/analyze_kernels.hpp"

#include <gtest/gtest.h>

#include <set>

#include "als/options.hpp"
#include "common/json.hpp"

namespace alsmf {
namespace {

AnalyzeKernelsOptions small_options() {
  AnalyzeKernelsOptions o;
  o.users = 120;
  o.items = 80;
  o.nnz = 1500;
  o.profiles = {"cpu", "gpu"};
  return o;
}

TEST(AnalyzeKernels, SweepIsCleanAndCoversEveryKernel) {
  const auto result = analyze_kernels(small_options());
  EXPECT_TRUE(result.clean()) << result.to_json();
  // 8 batched x {cholesky, cg, fp16, bf16} + flat + SELL, per profile.
  EXPECT_EQ(result.entries.size(), 2 * (4 * AlsVariant::kVariantCount + 2));
  std::set<std::string> kernels;
  for (const auto& e : result.entries) {
    kernels.insert(e.kernel);
    EXPECT_GT(e.data.counters.useful_flops, 0.0) << e.kernel;
    EXPECT_GT(e.data.register_estimate, 0) << e.kernel;
    EXPECT_GT(e.data.groups, 0u) << e.kernel;
    EXPECT_FALSE(e.json.empty()) << e.kernel;
  }
  EXPECT_EQ(kernels.size(), 4 * AlsVariant::kVariantCount + 2);
  EXPECT_TRUE(kernels.count("als_update_flat"));
  EXPECT_TRUE(kernels.count("als_update_flat_sell"));
  EXPECT_TRUE(kernels.count("als_update_batch_local_reg"));
}

TEST(AnalyzeKernels, LocalVariantsReportStagingOthersDoNot) {
  const auto result = analyze_kernels(small_options());
  for (const auto& e : result.entries) {
    const bool is_local = e.kernel.find("_local") != std::string::npos;
    if (is_local) {
      EXPECT_GT(e.data.tile_rows, 0u) << e.kernel;
      EXPECT_GT(e.data.declared_local_bytes, 0) << e.kernel;
    } else {
      EXPECT_EQ(e.data.tile_rows, 0u) << e.kernel;
    }
  }
}

TEST(AnalyzeKernels, EmittedJsonParses) {
  const auto result = analyze_kernels(small_options());
  const json::Value root = json::parse(result.to_json());
  const json::Value* clean = root.find("clean");
  ASSERT_NE(clean, nullptr);
  const json::Value* entries = root.find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_FALSE(entries->array().empty());
  // Spot-check one embedded static profile.
  const json::Value& first = entries->array().front();
  ASSERT_NE(first.find("kernel"), nullptr);
  const json::Value* sp = first.find("static_profile");
  ASSERT_NE(sp, nullptr);
  EXPECT_NE(sp->find("counters"), nullptr);
  EXPECT_NE(sp->find("accesses"), nullptr);
  EXPECT_NE(sp->find("resources"), nullptr);
}

TEST(AnalyzeKernels, ForcedTinyTileShowsMultiChunkStaging) {
  AnalyzeKernelsOptions o = small_options();
  o.tile_rows = 4;
  const auto result = analyze_kernels(o);
  EXPECT_TRUE(result.clean());
  bool saw_chunked = false;
  for (const auto& e : result.entries) {
    if (e.kernel.find("_local") == std::string::npos) continue;
    EXPECT_EQ(e.data.tile_rows, 4u) << e.kernel;
    saw_chunked |= e.data.chunks > 1;
  }
  EXPECT_TRUE(saw_chunked);
}

}  // namespace
}  // namespace alsmf
