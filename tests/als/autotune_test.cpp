#include "als/autotune.hpp"

#include <gtest/gtest.h>

#include "als/solver.hpp"
#include "als/variant_select.hpp"
#include "data/datasets.hpp"
#include "devsim/device.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts() {
  AlsOptions o;
  o.k = 10;
  o.iterations = 2;
  o.num_groups = 1024;
  return o;
}

TEST(Autotune, ReturnsSortedGrid) {
  const Csr train = make_replica("YMR4", 8.0);
  const auto all = autotune_all(train, opts(), devsim::k20c());
  ASSERT_GT(all.size(), 8u);
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].modeled_seconds, all[i].modeled_seconds);
  }
}

TEST(Autotune, BeatsOrMatchesDefaultConfiguration) {
  const Csr train = make_replica("NTFX", 512.0);
  for (const char* dev : {"gpu", "cpu", "mic"}) {
    const auto profile = devsim::profile_by_name(dev);
    const TunedConfig best = autotune(train, opts(), profile);
    // The default: paper config (empirical best variant at ws=32).
    const AlsVariant default_variant =
        select_variant_empirical(train, opts(), profile);
    devsim::Device device(profile);
    AlsOptions o = opts();
    o.functional = false;
    AlsSolver solver(train, o, default_variant, device);
    const double default_time = solver.run({}).modeled_seconds;
    EXPECT_LE(best.modeled_seconds, default_time * (1 + 1e-9)) << dev;
  }
}

TEST(Autotune, GpuPrefersGroupCoveringK) {
  // §V-E: on the GPU the best group size is the smallest covering k.
  const Csr train = make_replica("NTFX", 512.0);
  const TunedConfig best = autotune(train, opts(), devsim::k20c());
  EXPECT_GE(best.group_size, 10);  // k = 10
  EXPECT_LE(best.group_size, 32);
}

TEST(Autotune, CpuPrefersSmallGroups) {
  const Csr train = make_replica("NTFX", 512.0);
  const TunedConfig best = autotune(train, opts(), devsim::xeon_e5_2670_dual());
  EXPECT_LE(best.group_size, 16);
}

TEST(Autotune, TileOnlySweptForLocalVariants) {
  const Csr train = make_replica("YMR4", 16.0);
  AutotuneGrid grid;
  grid.all_variants = false;
  grid.group_sizes = {32};
  grid.tile_rows = {0, 64};
  const auto all = autotune_all(train, opts(), devsim::k20c(), grid);
  // 4 stacks: 2 without local (1 tile point each) + 2 with local (2 each).
  EXPECT_EQ(all.size(), 2u + 2u * 2u);
}

TEST(Autotune, ToStringDescribesConfig) {
  TunedConfig c;
  c.variant = AlsVariant::batch_local_reg();
  c.group_size = 16;
  c.tile_rows = 0;
  EXPECT_EQ(c.to_string(), "batch+local+reg ws=16 tile=auto");
  c.tile_rows = 64;
  EXPECT_EQ(c.to_string(), "batch+local+reg ws=16 tile=64");
  c.variant = AlsVariant::batching_only();
  EXPECT_EQ(c.to_string(), "batch ws=16");
}

TEST(Autotune, ApplyTuningSetsLaunchShape) {
  TunedConfig c;
  c.group_size = 8;
  c.tile_rows = 128;
  const AlsOptions tuned = apply_tuning(opts(), c);
  EXPECT_EQ(tuned.group_size, 8);
  EXPECT_EQ(tuned.tile_rows, 128);
  EXPECT_EQ(tuned.k, opts().k);  // untouched
}

TEST(Autotune, EmptyGridRejected) {
  const Csr train = testing::random_csr(10, 10, 0.3, 220);
  AutotuneGrid bad;
  bad.group_sizes = {};
  EXPECT_THROW(autotune(train, opts(), devsim::k20c(), bad), Error);
}

}  // namespace
}  // namespace alsmf
