// Checked execution over the real ALS kernels: the full sweep must be
// clean on every variant × profile, and running under the checker must not
// change a single output bit or any recorded counter.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "als/check_kernels.hpp"
#include "als/kernels.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "devsim/device.hpp"
#include "devsim/profile.hpp"

namespace alsmf {
namespace {

CheckKernelsOptions small_options() {
  CheckKernelsOptions options;
  options.users = 120;
  options.items = 80;
  options.nnz = 1500;
  options.k = 8;
  options.num_groups = 16;
  options.group_size = 16;
  return options;
}

TEST(CheckKernels, SweepIsCleanAcrossVariantsAndProfiles) {
  const CheckKernelsResult result = check_kernels(small_options());
  for (const auto& entry : result.entries) {
    EXPECT_TRUE(entry.report.clean())
        << entry.profile << "/" << entry.kernel << ":\n"
        << entry.report.to_json();
  }
  for (const auto& issue : result.lint_issues) {
    ADD_FAILURE() << "lint: " << issue;
  }
  EXPECT_TRUE(result.clean());
  // flat + 8 variants + their 8 CG flavors + flat/cg + subspace + 4
  // forced-tile re-runs + SELL + implicit, x3 profiles.
  EXPECT_EQ(result.entries.size(), 25u * 3u);
  EXPECT_GT(result.launches, 0u);
}

TEST(CheckKernels, JsonExportCarriesEntries) {
  CheckKernelsOptions options = small_options();
  options.profiles = {"gpu"};
  const CheckKernelsResult result = check_kernels(options);
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"clean\":true"), std::string::npos);
  EXPECT_NE(json.find("\"kernel\":\"flat\""), std::string::npos);
  EXPECT_NE(json.find("\"profile\":\"gpu\""), std::string::npos);
  EXPECT_NE(json.find("\"lint_issues\":[]"), std::string::npos);
}

TEST(CheckKernels, ValidatedOutputsBitIdenticalToPlain) {
  SyntheticSpec spec;
  spec.users = 150;
  spec.items = 90;
  spec.nnz = 2000;
  spec.seed = 7;
  const Csr r = generate_synthetic_csr(spec);
  Rng rng(7);
  Matrix src(r.cols(), 8);
  src.fill_uniform(rng, -0.5f, 0.5f);

  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    UpdateArgs args;
    args.r = &r;
    args.src = &src;
    args.k = 8;
    args.variant = v;

    Matrix plain_dst(r.rows(), 8);
    devsim::Device plain(devsim::k20c());
    args.dst = &plain_dst;
    const auto base = launch_update(plain, "u", args, 16, 16,
                                    /*functional=*/true, /*validate=*/false);

    Matrix checked_dst(r.rows(), 8);
    devsim::Device checked(devsim::k20c());
    args.dst = &checked_dst;
    const auto val = launch_update(checked, "u", args, 16, 16,
                                   /*functional=*/true, /*validate=*/true);

    EXPECT_TRUE(val.check.clean()) << v.name() << ":\n" << val.check.to_json();
    for (std::size_t i = 0; i < plain_dst.size(); ++i) {
      ASSERT_EQ(plain_dst.data()[i], checked_dst.data()[i])
          << v.name() << " diverges at element " << i;
    }
    // The pooled launch merges per-worker partial sums while the validated
    // launch accumulates groups serially, so counter totals may differ by
    // summation rounding — but nothing more.
    auto near = [&](double a, double b, const char* what) {
      EXPECT_NEAR(a, b, 1e-9 * (std::abs(a) + 1.0)) << v.name() << " " << what;
    };
    near(base.counters.lane_ops_scalar, val.counters.lane_ops_scalar, "ops");
    near(base.counters.global_bytes, val.counters.global_bytes, "global");
    near(base.counters.local_bytes, val.counters.local_bytes, "local");
    near(base.counters.spill_bytes, val.counters.spill_bytes, "spill");
    near(base.time.total_s(), val.time.total_s(), "time");
  }
}

}  // namespace
}  // namespace alsmf
