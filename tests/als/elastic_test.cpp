// Elastic-coordinator fault tolerance: device loss, stragglers, link
// faults, checkpoint/resume across fleet sizes. Row solves are partition-
// independent, so every recovered run must reproduce the reference factors
// bit for bit — the strongest form of the convergence-under-faults gate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "als/metrics.hpp"
#include "als/multi_device.hpp"
#include "data/datasets.hpp"
#include "als/reference.hpp"
#include "obs/registry.hpp"
#include "robust/fault_injection.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

using robust::FaultPlan;
using robust::FaultSite;
using robust::ScopedFaultInjector;
using robust::fault_key;

std::uint64_t fault_seed() {
  const char* env = std::getenv("ALSMF_FAULT_SEED");
  return env ? std::strtoull(env, nullptr, 10) : 42;
}

AlsOptions opts() {
  AlsOptions o;
  o.k = 5;
  o.lambda = 0.1f;
  o.iterations = 3;
  o.seed = 7;
  o.num_groups = 256;
  return o;
}

std::vector<devsim::DeviceProfile> gpus(std::size_t n) {
  return std::vector<devsim::DeviceProfile>(n, devsim::k20c());
}

std::string fresh_dir(const char* name) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

TEST(ElasticMultiDevice, ZeroFaultBitwiseIdenticalToReference) {
  const Csr train = testing::random_csr(70, 45, 0.15, 201);
  const auto ref = reference_als(train, opts());
  // Injector installed, but the plan selects nothing: the elastic
  // coordinator must be indistinguishable from the synchronous trainer.
  ScopedFaultInjector scoped(FaultPlan{});
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(), gpus(4));
  solver.run();
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
  const auto& report = solver.elastic_report();
  EXPECT_EQ(report.device_failures, 0u);
  EXPECT_EQ(report.repartitions, 0u);
  EXPECT_EQ(report.stragglers_detected, 0u);
  EXPECT_FALSE(report.degraded());
  EXPECT_GT(report.heartbeats, 0u);
}

TEST(ElasticMultiDevice, DisabledElasticStillMatchesReference) {
  const Csr train = testing::random_csr(50, 30, 0.2, 202);
  const auto ref = reference_als(train, opts());
  ElasticOptions elastic;
  elastic.enabled = false;
  MultiDeviceAls solver(train, opts(), AlsVariant::batching_only(), gpus(3),
                        elastic);
  solver.run();
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(ElasticMultiDevice, DeviceLossRepartitionsAndMatchesReference) {
  const Csr train = testing::random_csr(80, 50, 0.12, 203);
  const auto ref = reference_als(train, opts());

  // Kill device 1 on its third shard launch (mid-run, iteration 2's X
  // half-step) — the exact key fires for every seed.
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.exact[static_cast<int>(FaultSite::kDeviceFailure)] = {fault_key(1, 2)};
  ScopedFaultInjector scoped(plan);

  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(), gpus(4));
  solver.run();

  EXPECT_EQ(solver.alive_device_count(), 3);
  const auto& report = solver.elastic_report();
  EXPECT_EQ(report.device_failures, 1u);
  EXPECT_EQ(report.launch_failures, 1u);
  EXPECT_GE(report.repartitions, 1u);
  EXPECT_GE(report.recoveries, 1u);
  EXPECT_GT(report.mttr_total_seconds, 0.0);
  EXPECT_TRUE(report.degraded());
  EXPECT_EQ(solver.health(1).state, DeviceHealth::State::kDead);

  // Survivors recompute the lost ranges from identical inputs: the factors
  // are bit-for-bit the no-fault factors, so the RMSE delta is exactly 0.
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
  EXPECT_DOUBLE_EQ(rmse(train, solver.x(), solver.y()),
                   rmse(train, ref.x, ref.y));

  // The post-loss layout covers all rows disjointly across 3 shards.
  const auto parts = solver.row_partitions();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts.front().first, 0);
  EXPECT_EQ(parts.back().second, train.rows());
  for (std::size_t p = 1; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].first, parts[p - 1].second);
  }
}

TEST(ElasticMultiDevice, ProbabilisticFailuresStillConverge) {
  // Seed-swept in CI: whatever the seed selects, the run must complete with
  // the reference factors as long as one device survives. A low per-launch
  // probability on 4 devices x 6 half-steps keeps P(all dead) negligible,
  // and max_faults = 2 bounds it outright.
  const Csr train = testing::random_csr(60, 40, 0.15, 204);
  const auto ref = reference_als(train, opts());

  FaultPlan plan;
  plan.seed = fault_seed();
  plan.probability[static_cast<int>(FaultSite::kDeviceFailure)] = 0.05;
  plan.max_faults = 2;
  ScopedFaultInjector scoped(plan);

  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(), gpus(4));
  solver.run();
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
  EXPECT_EQ(solver.elastic_report().device_failures,
            scoped.injector().triggered(FaultSite::kDeviceFailure));
}

TEST(ElasticMultiDevice, StragglerTriggersSpeculationAndWins) {
  const Csr train = make_replica("MVLE", 256.0);
  AlsOptions o = opts();
  o.functional = false;  // accounting-only: modeled time is what matters

  // Baseline modeled time with no faults.
  MultiDeviceAls clean(train, o, AlsVariant::batch_local_reg(), gpus(3));
  const double clean_seconds = clean.run();

  // Device 2's first launch runs >= 8x slow; the other shards set the
  // median, the deadline (3x median) expires, and the shard re-executes
  // speculatively on the fastest healthy device.
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.exact[static_cast<int>(FaultSite::kStraggler)] = {fault_key(2, 0)};
  ElasticOptions elastic;
  elastic.faults.straggler_slowdown_min = 8.0;
  elastic.faults.straggler_slowdown_max = 16.0;
  ScopedFaultInjector scoped(plan);

  MultiDeviceAls solver(train, o, AlsVariant::batch_local_reg(), gpus(3),
                        elastic);
  const double slow_seconds = solver.run();

  const auto& report = solver.elastic_report();
  EXPECT_GE(report.stragglers_detected, 1u);
  EXPECT_GE(report.speculative_reexecs, 1u);
  EXPECT_GE(report.speculation_wins, 1u);
  EXPECT_EQ(report.device_failures, 0u);
  EXPECT_EQ(solver.alive_device_count(), 3);

  // Speculation bounds the wave at deadline + re-execution: slower than the
  // clean run, but far below the raw 8-16x straggler tail.
  EXPECT_GT(slow_seconds, clean_seconds);
  EXPECT_LT(slow_seconds, 8.0 * clean_seconds);
}

TEST(ElasticMultiDevice, SpeculationPreservesFactors) {
  const Csr train = testing::random_csr(60, 40, 0.15, 205);
  const auto ref = reference_als(train, opts());
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.exact[static_cast<int>(FaultSite::kStraggler)] = {fault_key(0, 0),
                                                         fault_key(1, 3)};
  ElasticOptions elastic;
  elastic.faults.straggler_slowdown_min = 8.0;
  ScopedFaultInjector scoped(plan);
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(), gpus(3),
                        elastic);
  solver.run();
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(ElasticMultiDevice, LinkFaultRetryIsPricedIntoCommunication) {
  const Csr train = make_replica("MVLE", 256.0);
  AlsOptions o = opts();
  o.functional = false;

  MultiDeviceAls clean(train, o, AlsVariant::batch_local_reg(), gpus(2));
  clean.run();

  // Device 0's first transfer attempt faults once, then succeeds on retry.
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.exact[static_cast<int>(FaultSite::kLinkTransfer)] = {fault_key(0, 0)};
  ScopedFaultInjector scoped(plan);
  MultiDeviceAls faulty(train, o, AlsVariant::batch_local_reg(), gpus(2));
  faulty.run();

  const auto& report = faulty.elastic_report();
  EXPECT_EQ(report.transfer_retries, 1u);
  EXPECT_EQ(report.link_failovers, 0u);
  EXPECT_EQ(faulty.health(0).transfer_retries, 1u);
  // The wasted attempt plus backoff shows up in the communication price.
  EXPECT_GT(faulty.communication_seconds(), clean.communication_seconds());
  EXPECT_EQ(faulty.alive_device_count(), 2);
}

TEST(ElasticMultiDevice, LinkExhaustionFailsTheDeviceOver) {
  const Csr train = testing::random_csr(70, 45, 0.15, 206);
  const auto ref = reference_als(train, opts());

  // Every transfer attempt of device 1 faults: initial + 3 retries exhausts
  // the budget and the device fails over.
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.exact[static_cast<int>(FaultSite::kLinkTransfer)] = {
      fault_key(1, 0), fault_key(1, 1), fault_key(1, 2), fault_key(1, 3)};
  ScopedFaultInjector scoped(plan);

  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(), gpus(2));
  solver.run();

  const auto& report = solver.elastic_report();
  EXPECT_EQ(report.link_failovers, 1u);
  EXPECT_EQ(report.device_failures, 1u);
  EXPECT_EQ(solver.alive_device_count(), 1);
  EXPECT_GE(report.repartitions, 1u);
  // The stranded rows were recomputed on the survivor: exact factors.
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(ElasticMultiDevice, AllDevicesLostThrows) {
  const Csr train = testing::random_csr(40, 30, 0.2, 207);
  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kDeviceFailure)] = {fault_key(0, 0),
                                                             fault_key(1, 0)};
  ScopedFaultInjector scoped(plan);
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(), gpus(2));
  EXPECT_THROW(solver.run(), Error);
}

TEST(ElasticMultiDevice, CheckpointResumeAcrossDeviceCounts) {
  const Csr train = testing::random_csr(60, 40, 0.15, 208);
  const auto ref = reference_als(train, opts());
  const std::string dir = fresh_dir("alsmf_elastic_ckpt");

  // 4 devices run 2 of the 3 iterations, checkpointing each.
  {
    MultiDeviceAls writer(train, opts(), AlsVariant::batch_local_reg(),
                          gpus(4));
    MultiRunConfig config;
    config.iterations = 2;
    config.checkpoint = CheckpointConfig{dir, 1, 3};
    const auto report = writer.run(config);
    EXPECT_EQ(report.iterations, 2);
  }

  // A 2-device fleet resumes the same trajectory and finishes it: the
  // checkpoint stores global factors, never the partition layout.
  MultiDeviceAls reader(train, opts(), AlsVariant::batch_local_reg(), gpus(2));
  MultiRunConfig config;
  config.checkpoint = CheckpointConfig{dir, 1, 3};
  config.resume = true;
  const auto report = reader.run(config);
  EXPECT_EQ(report.resumed_from, 2);
  EXPECT_EQ(report.iterations, 1);
  EXPECT_EQ(reader.iterations_done(), 3);
  EXPECT_EQ(reader.x(), ref.x);
  EXPECT_EQ(reader.y(), ref.y);
}

TEST(ElasticMultiDevice, ResumeIgnoresMismatchedTrajectory) {
  const Csr train = testing::random_csr(50, 30, 0.2, 209);
  const std::string dir = fresh_dir("alsmf_elastic_ckpt_mismatch");
  {
    MultiDeviceAls writer(train, opts(), AlsVariant::batch_local_reg(),
                          gpus(2));
    MultiRunConfig config;
    config.iterations = 1;
    config.checkpoint = CheckpointConfig{dir, 1, 3};
    writer.run(config);
  }
  AlsOptions other = opts();
  other.lambda = 0.5f;  // different trajectory
  MultiDeviceAls reader(train, other, AlsVariant::batch_local_reg(), gpus(2));
  EXPECT_EQ(reader.resume_latest(dir), -1);
  EXPECT_EQ(reader.iterations_done(), 0);
}

TEST(ElasticMultiDevice, RecoveryMetricsAreExposed) {
  const Csr train = testing::random_csr(60, 40, 0.15, 210);
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.exact[static_cast<int>(FaultSite::kDeviceFailure)] = {fault_key(0, 1)};
  ScopedFaultInjector scoped(plan);

  obs::Registry registry;
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(), gpus(3));
  MultiRunConfig config;
  config.metrics = &registry;
  solver.run(config);

  const auto& report = solver.elastic_report();
  EXPECT_EQ(registry.counter("elastic_device_failures_total").value(),
            report.device_failures);
  EXPECT_EQ(registry.counter("elastic_repartitions_total").value(),
            report.repartitions);
  EXPECT_EQ(registry.counter("elastic_recoveries_total").value(),
            report.recoveries);
  EXPECT_EQ(registry.histogram("elastic_mttr_seconds").count(),
            report.recoveries);
  EXPECT_DOUBLE_EQ(registry.gauge("elastic_alive_devices").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("elastic_degraded").value(), 1.0);
  // Exposition carries the series end to end.
  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("elastic_device_failures_total"), std::string::npos);
  EXPECT_NE(text.find("elastic_mttr_seconds"), std::string::npos);
  // The devices' own series ride along on the same registry.
  EXPECT_NE(text.find("devsim_"), std::string::npos);
}

TEST(ElasticMultiDevice, ReportSerializesToJson) {
  const Csr train = testing::random_csr(40, 30, 0.2, 211);
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(), gpus(2));
  solver.run();
  const std::string json = solver.elastic_report().to_json();
  EXPECT_NE(json.find("\"device_failures\""), std::string::npos);
  EXPECT_NE(json.find("\"mttr_mean_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded\""), std::string::npos);
}

}  // namespace
}  // namespace alsmf
