#include "als/implicit_device.hpp"

#include <gtest/gtest.h>

#include "als/solver.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

ImplicitOptions opts() {
  ImplicitOptions o;
  o.k = 5;
  o.lambda = 0.1f;
  o.alpha = 15.0f;
  o.iterations = 4;
  o.seed = 21;
  return o;
}

TEST(DeviceImplicit, MatchesHostImplicitBitwise) {
  const Csr train = testing::random_csr(70, 50, 0.1, 270);
  for (const char* dev : {"gpu", "cpu"}) {
    devsim::Device device(devsim::profile_by_name(dev));
    DeviceImplicitAls solver(train, opts(), device);
    solver.run();
    ThreadPool pool(1);
    const ImplicitResult host = implicit_als(train, opts(), &pool);
    EXPECT_EQ(solver.x(), host.x) << dev;
    EXPECT_EQ(solver.y(), host.y) << dev;
  }
}

TEST(DeviceImplicit, LossDecreases) {
  const Csr train = testing::random_csr(60, 40, 0.12, 271);
  devsim::Device device(devsim::k20c());
  DeviceImplicitAls solver(train, opts(), device);
  double prev = -1;
  for (int it = 0; it < 4; ++it) {
    solver.run_iteration();
    const double loss = implicit_loss(train, solver.x(), solver.y(), opts());
    if (prev >= 0) {
      EXPECT_LE(loss, prev * (1 + 1e-5)) << it;
    }
    prev = loss;
  }
}

TEST(DeviceImplicit, ModeledTimeTracked) {
  const Csr train = testing::random_csr(50, 40, 0.15, 272);
  devsim::Device device(devsim::k20c());
  DeviceImplicitAls solver(train, opts(), device);
  solver.functional = false;
  solver.run_iteration();
  EXPECT_GT(solver.modeled_seconds(), 0.0);
  const Matrix x0(train.rows(), opts().k, real{0});
  EXPECT_EQ(solver.x(), x0);  // accounting only
}

TEST(DeviceImplicit, CostlierThanExplicitPerIteration) {
  // The implicit kernel touches the full k x k per nonzero (vs the upper
  // triangle guards of the explicit one) plus the gram broadcast: per
  // iteration it must not be cheaper.
  const Csr train = testing::random_csr(80, 60, 0.1, 273);
  ImplicitOptions io = opts();
  io.iterations = 1;
  devsim::Device d1(devsim::k20c());
  DeviceImplicitAls implicit_solver(train, io, d1);
  implicit_solver.functional = false;
  const double implicit_time = implicit_solver.run();

  AlsOptions ao;
  ao.k = io.k;
  ao.iterations = 1;
  ao.functional = false;
  devsim::Device d2(devsim::k20c());
  AlsSolver explicit_solver(train, ao, AlsVariant::batching_only(), d2);
  const double explicit_time = explicit_solver.run({}).modeled_seconds;
  EXPECT_GE(implicit_time, explicit_time * 0.5);
}

TEST(DeviceImplicit, InvalidOptionsRejected) {
  const Csr train = testing::random_csr(10, 10, 0.3, 274);
  devsim::Device device(devsim::k20c());
  ImplicitOptions bad = opts();
  bad.k = 0;
  EXPECT_THROW(DeviceImplicitAls(train, bad, device), Error);
}

}  // namespace
}  // namespace alsmf
