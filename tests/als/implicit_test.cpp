#include "als/implicit.hpp"

#include <gtest/gtest.h>

#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "linalg/vecops.hpp"
#include "recsys/ranking.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

ImplicitOptions opts() {
  ImplicitOptions o;
  o.k = 6;
  o.lambda = 0.1f;
  o.alpha = 10.0f;
  o.iterations = 6;
  o.seed = 9;
  return o;
}

/// Interaction data where users only interact with one of two item blocks.
Csr block_interactions(index_t users, index_t items, std::uint64_t seed) {
  Rng rng(seed);
  Coo coo(users, items);
  for (index_t u = 0; u < users; ++u) {
    const bool first_block = (u % 2) == 0;
    const index_t base = first_block ? 0 : items / 2;
    for (int j = 0; j < 8; ++j) {
      const index_t i =
          base + static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(items / 2)));
      coo.add(u, i, static_cast<real>(1.0 + rng.bounded(5)));
    }
  }
  coo.sort_row_major();
  coo.dedup_keep_last();
  return coo_to_csr(coo);
}

TEST(ImplicitAls, LossDecreasesOverIterations) {
  const Csr train = testing::random_csr(80, 60, 0.08, 70);
  ImplicitOptions o = opts();
  double prev = -1;
  for (int iters = 1; iters <= 4; ++iters) {
    o.iterations = iters;
    const ImplicitResult r = implicit_als(train, o);
    const double loss = implicit_loss(train, r.x, r.y, o);
    if (prev >= 0) {
      EXPECT_LE(loss, prev * (1 + 1e-5)) << iters;
    }
    prev = loss;
  }
}

TEST(ImplicitAls, PredictsHigherScoresForObservedItems) {
  const Csr train = block_interactions(100, 60, 3);
  const ImplicitResult r = implicit_als(train, opts());
  // Mean predicted preference on observed cells must exceed unobserved.
  double observed = 0, unobserved = 0;
  nnz_t n_obs = 0, n_un = 0;
  for (index_t u = 0; u < train.rows(); ++u) {
    auto cols = train.row_cols(u);
    std::size_t p = 0;
    for (index_t i = 0; i < train.cols(); ++i) {
      const double pred =
          vdot(r.x.row(u).data(), r.y.row(i).data(), static_cast<std::size_t>(opts().k));
      while (p < cols.size() && cols[p] < i) ++p;
      if (p < cols.size() && cols[p] == i) {
        observed += pred;
        ++n_obs;
      } else {
        unobserved += pred;
        ++n_un;
      }
    }
  }
  EXPECT_GT(observed / static_cast<double>(n_obs),
            unobserved / static_cast<double>(n_un) + 0.2);
}

TEST(ImplicitAls, RecoversBlockStructureInRanking) {
  const Csr all = block_interactions(120, 80, 5);
  // Hold out one interaction per user.
  auto [train_coo, test_coo] = split_leave_one_out(csr_to_coo(all), 11);
  const Csr train = coo_to_csr(train_coo);
  Coo test_resized(train.rows(), train.cols());
  for (const auto& t : test_coo.entries()) test_resized.add(t.row, t.col, t.value);
  const Csr test = coo_to_csr(test_resized);

  const ImplicitResult r = implicit_als(train, opts());
  const RankingMetrics m = evaluate_ranking(train, test, r.x, r.y, 10);
  EXPECT_GT(m.evaluated_users, 0);
  // Items come from the user's own block: ranking must beat chance by far.
  EXPECT_GT(m.auc, 0.7);
  EXPECT_GT(m.hit_rate, 0.2);
}

TEST(ImplicitAls, DeterministicInSeed) {
  const Csr train = testing::random_csr(40, 30, 0.1, 71);
  ThreadPool pool(1);
  const ImplicitResult a = implicit_als(train, opts(), &pool);
  const ImplicitResult b = implicit_als(train, opts(), &pool);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(ImplicitAls, AlphaZeroStillSolves) {
  const Csr train = testing::random_csr(30, 30, 0.15, 72);
  ImplicitOptions o = opts();
  o.alpha = 0.0f;  // all confidences equal 1
  const ImplicitResult r = implicit_als(train, o);
  EXPECT_GT(r.x.frob2(), 0.0);
}

TEST(ImplicitAls, InvalidOptionsRejected) {
  const Csr train = testing::random_csr(10, 10, 0.2, 73);
  ImplicitOptions bad = opts();
  bad.k = 0;
  EXPECT_THROW(implicit_als(train, bad), Error);
  bad = opts();
  bad.alpha = -1.0f;
  EXPECT_THROW(implicit_als(train, bad), Error);
}

TEST(ImplicitAls, EmptyRowsGetZeroNormNearFactors) {
  Coo coo(6, 6);
  coo.add(0, 1, 2.0f);
  coo.add(0, 3, 1.0f);
  const Csr train = coo_to_csr(coo);
  const ImplicitResult r = implicit_als(train, opts());
  // A user with no interactions is pulled to (near) zero by the implicit
  // zeros: far smaller norm than an active user.
  const double active = vnorm2(r.x.row(0).data(), 6);
  const double empty = vnorm2(r.x.row(3).data(), 6);
  EXPECT_LT(empty, active * 0.5 + 1e-9);
}

}  // namespace
}  // namespace alsmf
