#include "als/kernels_sell.hpp"

#include <gtest/gtest.h>

#include "als/kernels.hpp"
#include "als/reference.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

struct Fixture {
  Csr train;
  AlsOptions options;
  Matrix x0, y0;
  Fixture() {
    train = testing::random_csr(90, 60, 0.1, 150);
    options.k = 6;
    options.lambda = 0.1f;
    options.seed = 5;
    init_factors(train.rows(), train.cols(), options, x0, y0);
  }
};

TEST(SellKernel, MatchesReferenceBitwise) {
  Fixture f;
  Matrix expected = f.x0;
  reference_half_update(f.train, f.y0, expected, f.options);

  for (int c : {8, 32}) {
    const SellMatrix sell(f.train, c, c * 4);
    Matrix x = f.x0;
    Matrix y = f.y0;
    SellUpdateArgs args;
    args.r = &sell;
    args.src = &y;
    args.dst = &x;
    args.lambda = f.options.lambda;
    args.k = f.options.k;
    devsim::Device device(devsim::k20c());
    launch_update_flat_sell(device, "sell_x", args, true);
    EXPECT_EQ(x, expected) << "C=" << c;
  }
}

TEST(SellKernel, LessDivergencePaddingThanFlatCsrOnSkewedData) {
  // The ablation claim: on skewed rows, flat-on-SELL records fewer padded
  // lane-ops than flat-on-CSR (but still more than thread batching).
  SyntheticSpec spec;
  spec.users = 1024;
  spec.items = 300;
  spec.nnz = 20000;
  spec.user_alpha = 1.1;
  spec.seed = 151;
  const Csr train = coo_to_csr(generate_synthetic(spec));
  AlsOptions o;
  o.k = 8;
  Matrix x, y;
  init_factors(train.rows(), train.cols(), o, x, y);

  // Flat on CSR.
  devsim::Device d1(devsim::k20c());
  UpdateArgs flat_args;
  flat_args.r = &train;
  flat_args.src = &y;
  flat_args.dst = &x;
  flat_args.lambda = o.lambda;
  flat_args.k = o.k;
  flat_args.variant = AlsVariant::flat_baseline();
  const auto flat =
      launch_update(d1, "u", flat_args, 0, 32, /*functional=*/false);

  // Flat on SELL (sigma = 8 warps of sorting window).
  const SellMatrix sell(train, 32, 256);
  devsim::Device d2(devsim::k20c());
  SellUpdateArgs sell_args;
  sell_args.r = &sell;
  sell_args.src = &y;
  sell_args.dst = &x;
  sell_args.lambda = o.lambda;
  sell_args.k = o.k;
  const auto sled = launch_update_flat_sell(d2, "u", sell_args, false);

  EXPECT_LT(sled.counters.lane_ops_scalar, flat.counters.lane_ops_scalar);

  // Thread batching still wins (divergence-free by construction).
  devsim::Device d3(devsim::k20c());
  flat_args.variant = AlsVariant::batch_local_reg();
  const auto batched = launch_update(d3, "u", flat_args, 512, 32, false);
  EXPECT_LT(batched.time.total_s(), sled.time.total_s());
}

TEST(SellKernel, AccountingOnlyLeavesFactorsUntouched) {
  Fixture f;
  const SellMatrix sell(f.train, 8, 8);
  Matrix x = f.x0;
  Matrix y = f.y0;
  SellUpdateArgs args;
  args.r = &sell;
  args.src = &y;
  args.dst = &x;
  args.lambda = f.options.lambda;
  args.k = f.options.k;
  devsim::Device device(devsim::k20c());
  const auto result = launch_update_flat_sell(device, "u", args, false);
  EXPECT_EQ(x, f.x0);
  EXPECT_GT(result.counters.lane_ops_scalar, 0.0);
}

TEST(SellKernel, InvalidArgsRejected) {
  Fixture f;
  devsim::Device device(devsim::k20c());
  SellUpdateArgs args;
  EXPECT_THROW(launch_update_flat_sell(device, "u", args, true), Error);
}

}  // namespace
}  // namespace alsmf
