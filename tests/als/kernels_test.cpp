#include "als/kernels.hpp"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "als/reference.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

using devsim::Device;
using devsim::DeviceProfile;

struct Fixture {
  Csr train;
  AlsOptions options;
  Matrix x_ref, y_ref;

  Fixture() {
    train = testing::random_csr(80, 50, 0.12, 21);
    options.k = 6;
    options.lambda = 0.1f;
    options.seed = 31;
    init_factors(train.rows(), train.cols(), options, x_ref, y_ref);
  }
};

/// One X half-update through the device kernel; returns the updated X.
Matrix device_update_x(const Fixture& f, const AlsVariant& variant,
                       const DeviceProfile& profile, int group_size = 32,
                       std::size_t groups = 64) {
  Device device(profile);
  Matrix x = f.x_ref;
  Matrix y = f.y_ref;
  UpdateArgs args;
  args.r = &f.train;
  args.src = &y;
  args.dst = &x;
  args.lambda = f.options.lambda;
  args.k = f.options.k;
  args.variant = variant;
  args.solver = f.options.solver;
  launch_update(device, "update_x", args, groups, group_size, true);
  return x;
}

Matrix reference_update_x(const Fixture& f) {
  Matrix x = f.x_ref;
  reference_half_update(f.train, f.y_ref, x, f.options);
  return x;
}

// --- Functional equivalence: every variant x device matches the reference
// bit for bit (same arithmetic in the same order). ---

using VariantDevice = std::tuple<unsigned, std::string>;

class VariantEquivalence : public ::testing::TestWithParam<VariantDevice> {};

TEST_P(VariantEquivalence, MatchesReferenceBitwise) {
  auto [mask, device_name] = GetParam();
  Fixture f;
  const Matrix expected = reference_update_x(f);
  const Matrix actual = device_update_x(f, AlsVariant::from_mask(mask),
                                        devsim::profile_by_name(device_name));
  EXPECT_EQ(expected, actual)
      << "variant " << AlsVariant::from_mask(mask).name() << " on "
      << device_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVariantsAllDevices, VariantEquivalence,
    ::testing::Combine(::testing::Range(0u, AlsVariant::kVariantCount),
                       ::testing::Values("cpu", "gpu", "mic")),
    [](const ::testing::TestParamInfo<VariantDevice>& param_info) {
      std::string name =
          AlsVariant::from_mask(std::get<0>(param_info.param)).name() + "_" +
          std::get<1>(param_info.param);
      for (char& c : name) {
        if (c == '+') c = '_';  // gtest names must be identifiers
      }
      return name;
    });

TEST(FlatKernel, MatchesReferenceBitwise) {
  Fixture f;
  const Matrix expected = reference_update_x(f);
  for (const char* dev : {"cpu", "gpu"}) {
    const Matrix actual = device_update_x(f, AlsVariant::flat_baseline(),
                                          devsim::profile_by_name(dev), 64);
    EXPECT_EQ(expected, actual) << dev;
  }
}

TEST(Kernels, GroupSizeDoesNotChangeResults) {
  Fixture f;
  const Matrix expected = reference_update_x(f);
  for (int ws : {8, 16, 32, 128}) {
    const Matrix actual = device_update_x(f, AlsVariant::batch_local(),
                                          devsim::k20c(), ws);
    EXPECT_EQ(expected, actual) << "ws=" << ws;
  }
}

TEST(Kernels, GroupCountDoesNotChangeResults) {
  Fixture f;
  const Matrix expected = reference_update_x(f);
  for (std::size_t groups : {1u, 7u, 80u, 8192u}) {
    const Matrix actual = device_update_x(f, AlsVariant::batching_only(),
                                          devsim::k20c(), 32, groups);
    EXPECT_EQ(expected, actual) << "groups=" << groups;
  }
}

TEST(Kernels, AccountingOnlyLeavesFactorsUntouched) {
  Fixture f;
  Device device(devsim::k20c());
  Matrix x = f.x_ref;
  Matrix y = f.y_ref;
  UpdateArgs args;
  args.r = &f.train;
  args.src = &y;
  args.dst = &x;
  args.lambda = f.options.lambda;
  args.k = f.options.k;
  args.variant = AlsVariant::batch_local_reg();
  const auto result =
      launch_update(device, "update_x", args, 64, 32, /*functional=*/false);
  EXPECT_EQ(x, f.x_ref);                       // untouched
  EXPECT_GT(result.counters.lane_ops_scalar, 0.0);  // but accounted
}

TEST(Kernels, AccountingIdenticalFunctionalOrNot) {
  Fixture f;
  Matrix x1 = f.x_ref, x2 = f.x_ref;
  Matrix y = f.y_ref;
  UpdateArgs args;
  args.r = &f.train;
  args.src = &y;
  args.lambda = f.options.lambda;
  args.k = f.options.k;
  args.variant = AlsVariant::batch_local();

  Device d1(devsim::k20c());
  args.dst = &x1;
  const auto r1 = launch_update(d1, "u", args, 64, 32, true);
  Device d2(devsim::k20c());
  args.dst = &x2;
  const auto r2 = launch_update(d2, "u", args, 64, 32, false);
  EXPECT_DOUBLE_EQ(r1.counters.lane_ops_scalar, r2.counters.lane_ops_scalar);
  EXPECT_DOUBLE_EQ(r1.counters.global_bytes, r2.counters.global_bytes);
  EXPECT_DOUBLE_EQ(r1.counters.local_bytes, r2.counters.local_bytes);
  EXPECT_DOUBLE_EQ(r1.time.total_s(), r2.time.total_s());
}

// --- Accounting semantics ---

TEST(Kernels, LocalVariantMovesTrafficOnChip) {
  Fixture f;
  Device d_plain(devsim::k20c());
  Device d_local(devsim::k20c());
  Matrix x = f.x_ref, y = f.y_ref;
  UpdateArgs args;
  args.r = &f.train;
  args.src = &y;
  args.dst = &x;
  args.lambda = f.options.lambda;
  args.k = f.options.k;

  args.variant = AlsVariant::batching_only();
  const auto plain = launch_update(d_plain, "u", args, 64, 32, false);
  args.variant = AlsVariant::batch_local();
  const auto local = launch_update(d_local, "u", args, 64, 32, false);

  EXPECT_GT(local.counters.local_bytes, plain.counters.local_bytes);
  EXPECT_LT(local.counters.scattered_accesses,
            plain.counters.scattered_accesses);
}

TEST(Kernels, RegisterVariantRemovesSpillTraffic) {
  Fixture f;
  Matrix x = f.x_ref, y = f.y_ref;
  UpdateArgs args;
  args.r = &f.train;
  args.src = &y;
  args.dst = &x;
  args.lambda = f.options.lambda;
  args.k = f.options.k;

  Device d1(devsim::k20c());
  args.variant = AlsVariant::batching_only();
  const auto noreg = launch_update(d1, "u", args, 64, 32, false);
  Device d2(devsim::k20c());
  args.variant = AlsVariant::from_mask(1);  // +reg
  const auto reg = launch_update(d2, "u", args, 64, 32, false);

  EXPECT_GT(noreg.counters.spill_bytes, 0.0);
  EXPECT_DOUBLE_EQ(reg.counters.spill_bytes, 0.0);
  EXPECT_LT(reg.counters.register_demand_peak,
            noreg.counters.register_demand_peak);
}

TEST(Kernels, VectorVariantMovesOpsToVectorCounter) {
  Fixture f;
  Matrix x = f.x_ref, y = f.y_ref;
  UpdateArgs args;
  args.r = &f.train;
  args.src = &y;
  args.dst = &x;
  args.lambda = f.options.lambda;
  args.k = f.options.k;

  Device d(devsim::xeon_e5_2670_dual());
  args.variant = AlsVariant::batch_vectors();
  const auto vec = launch_update(d, "u", args, 64, 32, false);
  EXPECT_GT(vec.counters.lane_ops_vector, 0.0);
}

TEST(Kernels, FlatDivergencePenaltyGrowsWithSkew) {
  // Same nnz, one balanced and one skewed; flat GPU ops must be larger on
  // the skewed matrix (warp-max padding).
  Coo balanced(64, 64);
  for (index_t u = 0; u < 64; ++u) {
    for (index_t c = 0; c < 8; ++c) balanced.add(u, c, 1.0f);
  }
  Coo skewed(64, 520);
  for (index_t c = 0; c < 449; ++c) skewed.add(0, c, 1.0f);
  for (index_t u = 1; u < 64; ++u) skewed.add(u, 0, 1.0f);
  const Csr b = coo_to_csr(balanced);
  const Csr s = coo_to_csr(skewed);
  ASSERT_EQ(b.nnz(), s.nnz());

  AlsOptions o;
  o.k = 4;
  auto ops_for = [&](const Csr& r, const Matrix& src) {
    Device device(devsim::k20c());
    Matrix dst(r.rows(), o.k);
    UpdateArgs args;
    args.r = &r;
    args.src = &src;
    args.dst = &dst;
    args.lambda = o.lambda;
    args.k = o.k;
    args.variant = AlsVariant::flat_baseline();
    return launch_update(device, "u", args, 0, 32, false)
        .counters.lane_ops_scalar;
  };
  Matrix src_b(64, o.k, 0.1f), src_s(520, o.k, 0.1f);
  EXPECT_GT(ops_for(s, src_s), 2.0 * ops_for(b, src_b));
}

TEST(Kernels, BatchedIsDivergenceFree) {
  // The batched mapping's compute ops depend only on total nnz, not skew.
  Coo balanced(64, 64);
  for (index_t u = 0; u < 64; ++u) {
    for (index_t c = 0; c < 8; ++c) balanced.add(u, c, 1.0f);
  }
  Coo skewed(64, 520);
  for (index_t c = 0; c < 449; ++c) skewed.add(0, c, 1.0f);
  for (index_t u = 1; u < 64; ++u) skewed.add(u, 0, 1.0f);
  const Csr b = coo_to_csr(balanced);
  const Csr s = coo_to_csr(skewed);

  AlsOptions o;
  o.k = 4;
  auto ops_for = [&](const Csr& r, index_t src_rows) {
    Device device(devsim::k20c());
    Matrix src(src_rows, o.k, 0.1f);
    Matrix dst(r.rows(), o.k);
    UpdateArgs args;
    args.r = &r;
    args.src = &src;
    args.dst = &dst;
    args.lambda = o.lambda;
    args.k = o.k;
    args.variant = AlsVariant::batching_only();
    return launch_update(device, "u", args, 64, 32, false)
        .counters.lane_ops_scalar;
  };
  EXPECT_DOUBLE_EQ(ops_for(b, 64), ops_for(s, 520));
}

TEST(Kernels, RegLocalPenaltyOnlyOnCpuMic) {
  Fixture f;
  Matrix x = f.x_ref, y = f.y_ref;
  UpdateArgs args;
  args.r = &f.train;
  args.src = &y;
  args.dst = &x;
  args.lambda = f.options.lambda;
  args.k = f.options.k;

  // On CPU, local+reg must cost more scalar ops than local alone.
  Device c1(devsim::xeon_e5_2670_dual());
  args.variant = AlsVariant::batch_local();
  const auto local = launch_update(c1, "u", args, 64, 32, false);
  Device c2(devsim::xeon_e5_2670_dual());
  args.variant = AlsVariant::batch_local_reg();
  const auto local_reg = launch_update(c2, "u", args, 64, 32, false);
  EXPECT_GT(local_reg.counters.lane_ops_scalar,
            local.counters.lane_ops_scalar);

  // On GPU, no such penalty: compute time of local+reg <= local.
  Device g1(devsim::k20c());
  args.variant = AlsVariant::batch_local();
  const auto glocal = launch_update(g1, "u", args, 64, 32, false);
  Device g2(devsim::k20c());
  args.variant = AlsVariant::batch_local_reg();
  const auto glocal_reg = launch_update(g2, "u", args, 64, 32, false);
  EXPECT_LE(glocal_reg.time.total_s(), glocal.time.total_s());
}

TEST(Kernels, InvalidArgsRejected) {
  Fixture f;
  Device device(devsim::k20c());
  Matrix x = f.x_ref, y = f.y_ref;
  UpdateArgs args;  // null pointers
  EXPECT_THROW(launch_update(device, "u", args, 64, 32, true), Error);

  args.r = &f.train;
  args.src = &y;
  args.dst = &x;
  args.k = 99;  // mismatched k
  EXPECT_THROW(launch_update(device, "u", args, 64, 32, true), Error);
}

}  // namespace
}  // namespace alsmf
