#include "als/learned_select.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "als/variant_select.hpp"
#include "data/datasets.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

using Row = std::array<double, SelectorFeatures::kCount>;

Row row(double a, double b) {
  Row r{};
  r[0] = a;
  r[1] = b;
  return r;
}

TEST(DecisionTree, FitsSeparableData) {
  // Label = feature0 > 0.5.
  std::vector<Row> x;
  std::vector<unsigned> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(row(i < 10 ? 0.0 : 1.0, static_cast<double>(i)));
    y.push_back(i < 10 ? 2u : 5u);
  }
  const DecisionTree tree = DecisionTree::fit(x, y, 3, 1);
  EXPECT_EQ(tree.predict(row(0.0, 99)), 2u);
  EXPECT_EQ(tree.predict(row(1.0, -5)), 5u);
}

TEST(DecisionTree, PureDataIsSingleLeaf) {
  std::vector<Row> x(5, row(1, 2));
  std::vector<unsigned> y(5, 3u);
  const DecisionTree tree = DecisionTree::fit(x, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(row(42, 0)), 3u);
}

TEST(DecisionTree, DepthLimitRespected) {
  // XOR-ish data needs depth 2; with depth 1 it must still predict the
  // majority without crashing.
  std::vector<Row> x = {row(0, 0), row(0, 1), row(1, 0), row(1, 1),
                        row(0, 0), row(0, 1), row(1, 0), row(1, 1)};
  std::vector<unsigned> y = {0, 1, 1, 0, 0, 1, 1, 0};
  const DecisionTree shallow = DecisionTree::fit(x, y, 1, 1);
  const DecisionTree deep = DecisionTree::fit(x, y, 4, 1);
  EXPECT_LE(shallow.node_count(), 3u);
  // The deep tree solves XOR exactly.
  EXPECT_EQ(deep.predict(row(0, 1)), 1u);
  EXPECT_EQ(deep.predict(row(1, 1)), 0u);
}

TEST(DecisionTree, SaveLoadRoundTrip) {
  std::vector<Row> x;
  std::vector<unsigned> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back(row(i % 3, i % 5));
    y.push_back(static_cast<unsigned>((i % 3 == 0) ? 1 : 6));
  }
  const DecisionTree tree = DecisionTree::fit(x, y, 4, 1);
  std::stringstream s;
  tree.save(s);
  const DecisionTree back = DecisionTree::load(s);
  for (const auto& r : x) EXPECT_EQ(tree.predict(r), back.predict(r));
}

TEST(DecisionTree, LoadRejectsGarbage) {
  std::stringstream s("not-a-tree 3");
  EXPECT_THROW(DecisionTree::load(s), Error);
}

TEST(DecisionTree, ToStringMentionsFeatures) {
  std::vector<Row> x;
  std::vector<unsigned> y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(row(i < 5 ? 0 : 1, 0));
    y.push_back(i < 5 ? 0u : 3u);
  }
  const DecisionTree tree = DecisionTree::fit(x, y, 2, 1);
  const std::string dump = tree.to_string();
  EXPECT_NE(dump.find("is_gpu"), std::string::npos);
  EXPECT_NE(dump.find("batch"), std::string::npos);
}

TEST(LearnedSelector, FeaturesReflectContext) {
  const Csr train = testing::random_csr(50, 40, 0.1, 80);
  AlsOptions options;
  options.k = 12;
  options.group_size = 64;
  const SelectorFeatures f =
      extract_features(train, options, devsim::k20c());
  EXPECT_DOUBLE_EQ(f.is_gpu, 1.0);
  EXPECT_DOUBLE_EQ(f.is_mic, 0.0);
  EXPECT_DOUBLE_EQ(f.k, 12.0);
  EXPECT_DOUBLE_EQ(f.group_size, 64.0);
  EXPECT_GT(f.mean_row_nnz, 0.0);
  EXPECT_DOUBLE_EQ(f.has_hw_local, 1.0);
}

class LearnedSelectorEndToEnd : public ::testing::Test {
 protected:
  static const DecisionTree& tree() {
    static const DecisionTree t =
        train_variant_selector(generate_selector_corpus());
    return t;
  }
};

TEST_F(LearnedSelectorEndToEnd, HighTrainingAccuracy) {
  const auto corpus = generate_selector_corpus();
  ASSERT_FALSE(corpus.empty());
  std::size_t correct = 0;
  for (const auto& ex : corpus) {
    if (tree().predict(ex.features) == ex.best_mask) ++correct;
  }
  EXPECT_GE(static_cast<double>(correct) / static_cast<double>(corpus.size()),
            0.7);
}

TEST_F(LearnedSelectorEndToEnd, NearOptimalOnUnseenDataset) {
  // Evaluate on the Table I replicas (never in the corpus): the predicted
  // variant's modeled time must be within 40% of the empirical optimum.
  AlsOptions options;
  options.k = 10;
  options.iterations = 2;
  options.num_groups = 1024;
  const Csr train = make_replica("YMR4", 8.0);
  for (const char* dev : {"gpu", "cpu", "mic"}) {
    const auto profile = devsim::profile_by_name(dev);
    const AlsVariant pick =
        select_variant_learned(tree(), train, options, profile);
    const auto scores = score_variants(train, options, profile);
    double pick_time = -1;
    for (const auto& s : scores) {
      if (s.variant == pick) pick_time = s.modeled_seconds;
    }
    ASSERT_GE(pick_time, 0.0) << dev;
    EXPECT_LE(pick_time, scores.front().modeled_seconds * 1.4) << dev;
  }
}

TEST_F(LearnedSelectorEndToEnd, AgreesWithPaperOnGpu) {
  // On the GPU the learned rule must pick local+registers like the paper.
  AlsOptions options;
  options.k = 10;
  options.group_size = 32;
  const Csr train = make_replica("MVLE", 512.0);
  const AlsVariant pick =
      select_variant_learned(tree(), train, options, devsim::k20c());
  EXPECT_TRUE(pick.use_local);
  EXPECT_TRUE(pick.use_registers);
}

}  // namespace
}  // namespace alsmf
