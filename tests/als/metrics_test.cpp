#include "als/metrics.hpp"

#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

/// Rank-1 exact factorization: r_ui = u_val * i_val.
struct Exact {
  Csr ratings;
  Matrix x, y;
};

Exact exact_rank1() {
  Exact e;
  e.x = Matrix(3, 1);
  e.y = Matrix(2, 1);
  e.x(0, 0) = 1;
  e.x(1, 0) = 2;
  e.x(2, 0) = 3;
  e.y(0, 0) = 1;
  e.y(1, 0) = 0.5f;
  Coo coo(3, 2);
  for (index_t u = 0; u < 3; ++u) {
    for (index_t i = 0; i < 2; ++i) {
      coo.add(u, i, e.x(u, 0) * e.y(i, 0));
    }
  }
  e.ratings = coo_to_csr(coo);
  return e;
}

TEST(Metrics, RmseZeroForExactFactorization) {
  const Exact e = exact_rank1();
  EXPECT_NEAR(rmse(e.ratings, e.x, e.y), 0.0, 1e-6);
  EXPECT_NEAR(mae(e.ratings, e.x, e.y), 0.0, 1e-6);
}

TEST(Metrics, RmseKnownValue) {
  Exact e = exact_rank1();
  // Perturb one factor entry: every prediction for user 0 shifts.
  e.x(0, 0) = 2;  // predictions for u=0 become 2 and 1 vs truth 1 and 0.5.
  const double expected =
      std::sqrt((1.0 * 1.0 + 0.5 * 0.5) / static_cast<double>(e.ratings.nnz()));
  EXPECT_NEAR(rmse(e.ratings, e.x, e.y), expected, 1e-6);
}

TEST(Metrics, CooAndCsrRmseAgree) {
  const Csr csr = testing::random_csr(20, 15, 0.3, 2);
  const Coo coo = csr_to_coo(csr);
  Matrix x(20, 4), y(15, 4);
  Rng rng(3);
  x.fill_uniform(rng, -1, 1);
  y.fill_uniform(rng, -1, 1);
  EXPECT_NEAR(rmse(csr, x, y), rmse(coo, x, y), 1e-9);
}

TEST(Metrics, EmptyRatingsGiveZero) {
  Csr empty = coo_to_csr(Coo(5, 5));
  Matrix x(5, 2), y(5, 2);
  EXPECT_DOUBLE_EQ(rmse(empty, x, y), 0.0);
  EXPECT_DOUBLE_EQ(mae(empty, x, y), 0.0);
}

TEST(Metrics, LossIsSseePlusRegularization) {
  const Exact e = exact_rank1();
  // Exact fit: loss = lambda * (|X|^2 + |Y|^2).
  const double expected = 0.1 * (e.x.frob2() + e.y.frob2());
  EXPECT_NEAR(als_loss(e.ratings, e.x, e.y, 0.1f), expected, 1e-5);
}

TEST(Metrics, LossGrowsWithLambda) {
  const Exact e = exact_rank1();
  EXPECT_LT(als_loss(e.ratings, e.x, e.y, 0.1f),
            als_loss(e.ratings, e.x, e.y, 1.0f));
}

TEST(Metrics, ShapeMismatchThrows) {
  const Exact e = exact_rank1();
  Matrix wrong(4, 1);
  EXPECT_THROW(rmse(e.ratings, wrong, e.y), Error);
}

}  // namespace
}  // namespace alsmf
