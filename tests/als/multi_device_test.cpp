#include "als/multi_device.hpp"

#include <gtest/gtest.h>

#include "als/reference.hpp"
#include "data/datasets.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts() {
  AlsOptions o;
  o.k = 5;
  o.lambda = 0.1f;
  o.iterations = 3;
  o.seed = 7;
  o.num_groups = 256;
  return o;
}

TEST(MultiDevice, SingleDeviceMatchesReference) {
  const Csr train = testing::random_csr(60, 40, 0.15, 160);
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(),
                        {devsim::k20c()});
  solver.run();
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(MultiDevice, PartitionCountDoesNotChangeFactors) {
  const Csr train = testing::random_csr(80, 50, 0.12, 161);
  const auto ref = reference_als(train, opts());
  for (int devices : {2, 3, 4}) {
    std::vector<devsim::DeviceProfile> profiles(
        static_cast<std::size_t>(devices), devsim::k20c());
    MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(),
                          profiles);
    solver.run();
    EXPECT_EQ(solver.x(), ref.x) << devices << " devices";
    EXPECT_EQ(solver.y(), ref.y) << devices << " devices";
  }
}

TEST(MultiDevice, PartitionsCoverAllRowsDisjointly) {
  const Csr train = make_replica("YMR4", 16.0);
  std::vector<devsim::DeviceProfile> profiles(3, devsim::k20c());
  MultiDeviceAls solver(train, opts(), AlsVariant::batching_only(), profiles);
  const auto& parts = solver.row_partitions();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts.front().first, 0);
  EXPECT_EQ(parts.back().second, train.rows());
  for (std::size_t p = 1; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].first, parts[p - 1].second);
  }
}

TEST(MultiDevice, PartitionsBalanceNonzeros) {
  const Csr train = make_replica("MVLE", 512.0);
  std::vector<devsim::DeviceProfile> profiles(4, devsim::k20c());
  MultiDeviceAls solver(train, opts(), AlsVariant::batching_only(), profiles);
  const auto& parts = solver.row_partitions();
  std::vector<nnz_t> loads;
  for (const auto& [b, e] : parts) {
    nnz_t load = 0;
    for (index_t u = b; u < e; ++u) load += train.row_nnz(u);
    loads.push_back(load);
  }
  const nnz_t mx = *std::max_element(loads.begin(), loads.end());
  const nnz_t mn = *std::min_element(loads.begin(), loads.end());
  // Contiguous prefix-sum balancing: within ~35% of each other on Zipf data.
  EXPECT_LT(static_cast<double>(mx - mn), 0.35 * static_cast<double>(mx) + 64);
}

TEST(MultiDevice, TwoDevicesFasterThanOneButNotDouble) {
  const Csr train = make_replica("MVLE", 256.0);
  AlsOptions o = opts();
  o.functional = false;

  MultiDeviceAls one(train, o, AlsVariant::batch_local_reg(), {devsim::k20c()});
  const double t1 = one.run();
  MultiDeviceAls two(train, o, AlsVariant::batch_local_reg(),
                     {devsim::k20c(), devsim::k20c()});
  const double t2 = two.run();

  EXPECT_LT(t2, t1);             // parallel speedup
  EXPECT_GT(t2, t1 / 2.0);       // but sublinear: comm + imbalance
  EXPECT_GT(two.communication_seconds(), 0.0);
}

TEST(MultiDevice, SingleDeviceHasNoCommunication) {
  const Csr train = testing::random_csr(40, 30, 0.2, 162);
  AlsOptions o = opts();
  o.functional = false;
  MultiDeviceAls solver(train, o, AlsVariant::batching_only(), {devsim::k20c()});
  solver.run();
  EXPECT_DOUBLE_EQ(solver.communication_seconds(), 0.0);
}

TEST(MultiDevice, HeterogeneousDevicesWork) {
  const Csr train = testing::random_csr(50, 40, 0.15, 163);
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local(),
                        {devsim::k20c(), devsim::xeon_e5_2670_dual()});
  solver.run();
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(solver.x(), ref.x);
}

TEST(MultiDevice, EmptyProfileListRejected) {
  const Csr train = testing::random_csr(10, 10, 0.3, 164);
  EXPECT_THROW(
      MultiDeviceAls(train, opts(), AlsVariant::batching_only(), {}),
      Error);
}

TEST(MultiDevice, MoreDevicesThanRows) {
  const Csr train = testing::random_csr(3, 5, 0.5, 165);
  std::vector<devsim::DeviceProfile> profiles(6, devsim::k20c());
  MultiDeviceAls solver(train, opts(), AlsVariant::batching_only(), profiles);
  solver.run();
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(solver.x(), ref.x);
}

}  // namespace
}  // namespace alsmf
