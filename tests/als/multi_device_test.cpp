#include "als/multi_device.hpp"

#include <gtest/gtest.h>

#include "als/reference.hpp"
#include "data/datasets.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts() {
  AlsOptions o;
  o.k = 5;
  o.lambda = 0.1f;
  o.iterations = 3;
  o.seed = 7;
  o.num_groups = 256;
  return o;
}

TEST(MultiDevice, SingleDeviceMatchesReference) {
  const Csr train = testing::random_csr(60, 40, 0.15, 160);
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(),
                        {devsim::k20c()});
  solver.run();
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(MultiDevice, PartitionCountDoesNotChangeFactors) {
  const Csr train = testing::random_csr(80, 50, 0.12, 161);
  const auto ref = reference_als(train, opts());
  for (int devices : {2, 3, 4}) {
    std::vector<devsim::DeviceProfile> profiles(
        static_cast<std::size_t>(devices), devsim::k20c());
    MultiDeviceAls solver(train, opts(), AlsVariant::batch_local_reg(),
                          profiles);
    solver.run();
    EXPECT_EQ(solver.x(), ref.x) << devices << " devices";
    EXPECT_EQ(solver.y(), ref.y) << devices << " devices";
  }
}

TEST(MultiDevice, PartitionsCoverAllRowsDisjointly) {
  const Csr train = make_replica("YMR4", 16.0);
  std::vector<devsim::DeviceProfile> profiles(3, devsim::k20c());
  MultiDeviceAls solver(train, opts(), AlsVariant::batching_only(), profiles);
  const auto& parts = solver.row_partitions();
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts.front().first, 0);
  EXPECT_EQ(parts.back().second, train.rows());
  for (std::size_t p = 1; p < parts.size(); ++p) {
    EXPECT_EQ(parts[p].first, parts[p - 1].second);
  }
}

TEST(MultiDevice, PartitionsBalanceNonzeros) {
  const Csr train = make_replica("MVLE", 512.0);
  std::vector<devsim::DeviceProfile> profiles(4, devsim::k20c());
  MultiDeviceAls solver(train, opts(), AlsVariant::batching_only(), profiles);
  const auto& parts = solver.row_partitions();
  std::vector<nnz_t> loads;
  for (const auto& [b, e] : parts) {
    nnz_t load = 0;
    for (index_t u = b; u < e; ++u) load += train.row_nnz(u);
    loads.push_back(load);
  }
  const nnz_t mx = *std::max_element(loads.begin(), loads.end());
  const nnz_t mn = *std::min_element(loads.begin(), loads.end());
  // Contiguous prefix-sum balancing: within ~35% of each other on Zipf data.
  EXPECT_LT(static_cast<double>(mx - mn), 0.35 * static_cast<double>(mx) + 64);
}

TEST(MultiDevice, TwoDevicesFasterThanOneButNotDouble) {
  const Csr train = make_replica("MVLE", 256.0);
  AlsOptions o = opts();
  o.functional = false;

  MultiDeviceAls one(train, o, AlsVariant::batch_local_reg(), {devsim::k20c()});
  const double t1 = one.run();
  MultiDeviceAls two(train, o, AlsVariant::batch_local_reg(),
                     {devsim::k20c(), devsim::k20c()});
  const double t2 = two.run();

  EXPECT_LT(t2, t1);             // parallel speedup
  EXPECT_GT(t2, t1 / 2.0);       // but sublinear: comm + imbalance
  EXPECT_GT(two.communication_seconds(), 0.0);
}

TEST(MultiDevice, SingleDeviceHasNoCommunication) {
  const Csr train = testing::random_csr(40, 30, 0.2, 162);
  AlsOptions o = opts();
  o.functional = false;
  MultiDeviceAls solver(train, o, AlsVariant::batching_only(), {devsim::k20c()});
  solver.run();
  EXPECT_DOUBLE_EQ(solver.communication_seconds(), 0.0);
}

TEST(MultiDevice, HeterogeneousDevicesWork) {
  const Csr train = testing::random_csr(50, 40, 0.15, 163);
  MultiDeviceAls solver(train, opts(), AlsVariant::batch_local(),
                        {devsim::k20c(), devsim::xeon_e5_2670_dual()});
  solver.run();
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(solver.x(), ref.x);
}

TEST(MultiDevice, EmptyProfileListRejected) {
  const Csr train = testing::random_csr(10, 10, 0.3, 164);
  EXPECT_THROW(
      MultiDeviceAls(train, opts(), AlsVariant::batching_only(), {}),
      Error);
}

void expect_partition_invariants(
    const std::vector<std::pair<index_t, index_t>>& parts, index_t rows) {
  ASSERT_FALSE(parts.empty());
  EXPECT_EQ(parts.front().first, 0);
  EXPECT_EQ(parts.back().second, rows);
  for (std::size_t p = 0; p < parts.size(); ++p) {
    EXPECT_LT(parts[p].first, parts[p].second) << "empty partition " << p;
    if (p > 0) {
      EXPECT_EQ(parts[p].first, parts[p - 1].second);
    }
  }
}

TEST(MultiDevice, BalanceSinglePartition) {
  const Csr m = testing::random_csr(20, 10, 0.3, 166);
  const auto parts = balance_by_nnz(m, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (std::pair<index_t, index_t>{0, 20}));
}

TEST(MultiDevice, BalancePartsEqualToRows) {
  const Csr m = testing::random_csr(6, 8, 0.5, 167);
  const auto parts = balance_by_nnz(m, 6);
  ASSERT_EQ(parts.size(), 6u);  // one row each, all non-empty
  expect_partition_invariants(parts, 6);
}

TEST(MultiDevice, BalancePartsExceedingRowsClampsToRowCount) {
  const Csr m = testing::random_csr(6, 8, 0.5, 168);
  for (std::size_t parts_requested : {7u, 16u, 100u}) {
    const auto parts = balance_by_nnz(m, parts_requested);
    EXPECT_EQ(parts.size(), 6u) << parts_requested << " requested";
    expect_partition_invariants(parts, 6);
  }
}

TEST(MultiDevice, BalanceSingleHotRowProducesNoEmptyShards) {
  // All the mass in one row used to absorb every partition goal, leaving
  // empty ranges; now each partition still takes at least one row.
  Coo coo(8, 50);
  for (index_t c = 0; c < 50; ++c) coo.add(3, c, 1.0f);
  for (index_t r = 0; r < 8; ++r) {
    if (r != 3) coo.add(r, r, 1.0f);
  }
  const Csr m = coo_to_csr(coo);
  for (std::size_t p : {2u, 3u, 4u, 8u}) {
    const auto parts = balance_by_nnz(m, p);
    EXPECT_EQ(parts.size(), p);
    expect_partition_invariants(parts, 8);
  }
}

TEST(MultiDevice, BalanceZeroRows) {
  const Csr empty;
  const auto parts = balance_by_nnz(empty, 4);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (std::pair<index_t, index_t>{0, 0}));
}

TEST(MultiDevice, SkewedTrainingStillMatchesReference) {
  // End to end through the coordinator: hot-row skew with more devices than
  // useful partitions still trains to the exact reference factors.
  Coo coo(10, 40);
  for (index_t c = 0; c < 40; ++c) coo.add(0, c, 2.0f);
  for (index_t r = 1; r < 10; ++r) coo.add(r, r, 1.0f);
  const Csr train = coo_to_csr(coo);
  const auto ref = reference_als(train, opts());
  std::vector<devsim::DeviceProfile> profiles(5, devsim::k20c());
  MultiDeviceAls solver(train, opts(), AlsVariant::batching_only(), profiles);
  solver.run();
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(MultiDevice, MoreDevicesThanRows) {
  const Csr train = testing::random_csr(3, 5, 0.5, 165);
  std::vector<devsim::DeviceProfile> profiles(6, devsim::k20c());
  MultiDeviceAls solver(train, opts(), AlsVariant::batching_only(), profiles);
  solver.run();
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(solver.x(), ref.x);
}

}  // namespace
}  // namespace alsmf
