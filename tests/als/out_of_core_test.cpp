#include "als/out_of_core.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "als/reference.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

std::string temp_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + "/alsmf_ooc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

AlsOptions opts() {
  AlsOptions o;
  o.k = 5;
  o.lambda = 0.1f;
  o.iterations = 3;
  o.seed = 8;
  return o;
}

TEST(OutOfCore, ShardingCoversEveryRowOnce) {
  const Csr m = testing::random_csr(100, 60, 0.1, 230);
  const auto sharded = write_sharded(m, temp_dir("cover"), m.nnz() / 4);
  EXPECT_GT(sharded.shards.size(), 2u);
  index_t next = 0;
  nnz_t total = 0;
  for (const auto& s : sharded.shards) {
    EXPECT_EQ(s.first_row, next);
    next += s.row_count;
    total += s.nnz;
    EXPECT_LE(s.nnz, m.nnz() / 4);
  }
  EXPECT_EQ(next, m.rows());
  EXPECT_EQ(total, m.nnz());
}

TEST(OutOfCore, OversizedRowGetsItsOwnShard) {
  Coo coo(3, 50);
  for (index_t i = 0; i < 50; ++i) coo.add(1, i, 1.0f);  // one huge row
  coo.add(0, 0, 1.0f);
  coo.add(2, 0, 1.0f);
  const Csr m = coo_to_csr(coo);
  // Budget smaller than the big row: the row must still be placed (alone).
  const auto sharded = write_sharded(m, temp_dir("bigrow"), 10);
  nnz_t total = 0;
  for (const auto& s : sharded.shards) total += s.nnz;
  EXPECT_EQ(total, m.nnz());
}

TEST(OutOfCore, ManifestRoundTrip) {
  const Csr m = testing::random_csr(40, 30, 0.2, 231);
  const std::string dir = temp_dir("manifest");
  const auto written = write_sharded(m, dir, 100);
  const auto loaded = read_manifest(dir);
  EXPECT_EQ(loaded.rows, written.rows);
  EXPECT_EQ(loaded.cols, written.cols);
  EXPECT_EQ(loaded.nnz, written.nnz);
  ASSERT_EQ(loaded.shards.size(), written.shards.size());
  for (std::size_t i = 0; i < loaded.shards.size(); ++i) {
    EXPECT_EQ(loaded.shards[i].path, written.shards[i].path);
    EXPECT_EQ(loaded.shards[i].first_row, written.shards[i].first_row);
  }
}

TEST(OutOfCore, MatchesInMemoryReferenceBitwise) {
  const Csr train = testing::random_csr(80, 50, 0.12, 232);
  const Csr train_t = transpose(train);
  const std::string r_dir = temp_dir("r");
  const std::string rt_dir = temp_dir("rt");
  write_sharded(train, r_dir, train.nnz() / 5);
  write_sharded(train_t, rt_dir, train_t.nnz() / 3);

  ThreadPool pool(1);  // deterministic accumulation order per row anyway
  const auto ooc = out_of_core_als(r_dir, rt_dir, opts(), &pool);
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(ooc.x, ref.x);
  EXPECT_EQ(ooc.y, ref.y);
  EXPECT_GT(ooc.peak_resident_nnz, 0);
  EXPECT_LT(ooc.peak_resident_nnz, train.nnz());
}

TEST(OutOfCore, ShardCountIndependence) {
  // The result cannot depend on how the matrix was sharded.
  const Csr train = testing::random_csr(60, 40, 0.15, 233);
  const Csr train_t = transpose(train);
  Matrix first_x;
  bool have = false;
  for (nnz_t budget : {train.nnz(), train.nnz() / 3, train.nnz() / 10}) {
    const std::string r_dir = temp_dir("ri");
    const std::string rt_dir = temp_dir("rti");
    write_sharded(train, r_dir, budget);
    write_sharded(train_t, rt_dir, budget);
    const auto ooc = out_of_core_als(r_dir, rt_dir, opts());
    if (!have) {
      first_x = ooc.x;
      have = true;
    } else {
      EXPECT_EQ(ooc.x, first_x) << "budget " << budget;
    }
  }
}

TEST(OutOfCore, MissingManifestThrows) {
  EXPECT_THROW(read_manifest("/nonexistent/dir"), Error);
}

TEST(OutOfCore, MismatchedTransposeRejected) {
  const Csr a = testing::random_csr(10, 8, 0.3, 234);
  const Csr b = testing::random_csr(9, 10, 0.3, 235);  // wrong shape
  const std::string r_dir = temp_dir("mm_r");
  const std::string rt_dir = temp_dir("mm_rt");
  write_sharded(a, r_dir, 1000);
  write_sharded(b, rt_dir, 1000);
  EXPECT_THROW(out_of_core_als(r_dir, rt_dir, opts()), Error);
}

}  // namespace
}  // namespace alsmf
