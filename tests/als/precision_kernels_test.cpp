// The analyze-precision sweep driver (what the CLI and the CI gate run):
// every flavor certifies, every narrow flavor is witnessed and dominated,
// and the JSON artifact carries the fields CI parses.
#include "als/precision_kernels.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/json.hpp"
#include "ocl/kernel_flavors.hpp"

namespace alsmf {
namespace {

TEST(PrecisionKernels, FullSweepIsClean) {
  PrecisionKernelsOptions opt;
  const PrecisionKernelsResult result = analyze_precision_kernels(opt);
  EXPECT_TRUE(result.errors.empty());
  ASSERT_EQ(result.entries.size(), 4 * AlsVariant::kVariantCount + 2);
  int witnessed = 0;
  for (const auto& e : result.entries) {
    EXPECT_TRUE(e.report.certified) << e.kernel;
    EXPECT_TRUE(e.dominated) << e.kernel;
    EXPECT_FALSE(e.witness_overflow) << e.kernel;
    if (e.witness_ran) {
      ++witnessed;
      EXPECT_GT(e.observed_err, 0.0) << e.kernel;
    }
  }
  // Every narrow flavor (8 fp16 + 8 bf16) gets the dynamic leg.
  EXPECT_EQ(witnessed, 2 * static_cast<int>(AlsVariant::kVariantCount));
  EXPECT_TRUE(result.clean());
}

TEST(PrecisionKernels, StaticOnlySweepAtForcedTileRows) {
  // The CI job also certifies at TILE_ROWS=4 (multiple staging chunks per
  // row); witness off keeps this leg fast.
  PrecisionKernelsOptions opt;
  opt.tile_rows = 4;
  opt.witness = false;
  const PrecisionKernelsResult result = analyze_precision_kernels(opt);
  EXPECT_TRUE(result.clean());
  for (const auto& e : result.entries) {
    EXPECT_FALSE(e.witness_ran) << e.kernel;
    EXPECT_TRUE(e.dominated) << e.kernel;  // vacuous without a witness
  }
}

TEST(PrecisionKernels, JsonArtifactParsesAndCarriesGateFields) {
  PrecisionKernelsOptions opt;
  opt.witness = false;
  const PrecisionKernelsResult result = analyze_precision_kernels(opt);
  const std::string text = result.to_json();
  const json::Value root = json::parse(text);
  EXPECT_TRUE(root.at("clean").as_bool());
  const auto& kernels = root.at("kernels");
  ASSERT_EQ(kernels.array().size(), result.entries.size());
  const auto& first = kernels.array().front();
  EXPECT_FALSE(first.at("certificate").at("kernel").as_string().empty());
  EXPECT_NE(first.find("witness"), nullptr);
}

TEST(PrecisionKernels, TighterAssumptionsStillCertify) {
  // A smaller operating envelope can only shrink the bounds: sanity that
  // the certificate is monotone in the assumptions.
  PrecisionKernelsOptions opt;
  opt.witness = false;
  opt.assumptions.omega_max = 256;
  const PrecisionKernelsResult result = analyze_precision_kernels(opt);
  EXPECT_TRUE(result.clean());
}

}  // namespace
}  // namespace alsmf
