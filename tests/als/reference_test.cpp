#include "als/reference.hpp"

#include <gtest/gtest.h>

#include "als/metrics.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts(int k = 4, int iters = 5) {
  AlsOptions o;
  o.k = k;
  o.lambda = 0.1f;
  o.iterations = iters;
  o.seed = 17;
  return o;
}

TEST(Reference, LossDecreasesMonotonically) {
  const Csr train = testing::random_csr(60, 40, 0.15, 3);
  AlsOptions o = opts();
  Matrix x, y;
  init_factors(train.rows(), train.cols(), o, x, y);
  const Csr train_t = transpose(train);

  double prev = als_loss(train, x, y, o.lambda);
  for (int it = 0; it < 8; ++it) {
    reference_half_update(train, y, x, o);
    const double after_x = als_loss(train, x, y, o.lambda);
    EXPECT_LE(after_x, prev * (1 + 1e-4)) << "X update, iter " << it;
    reference_half_update(train_t, x, y, o);
    const double after_y = als_loss(train, x, y, o.lambda);
    EXPECT_LE(after_y, after_x * (1 + 1e-4)) << "Y update, iter " << it;
    prev = after_y;
  }
}

TEST(Reference, FitsPlantedLowRankData) {
  SyntheticSpec spec;
  spec.users = 300;
  spec.items = 200;
  spec.nnz = 12000;
  spec.planted_rank = 3;
  spec.noise = 0.05;
  spec.integer_ratings = false;
  spec.seed = 2;
  const Csr train = coo_to_csr(generate_synthetic(spec));

  const auto result = reference_als(train, opts(8, 12));
  const double final_rmse = rmse(train, result.x, result.y);
  // With rank 8 >= planted rank 3 and low noise, fit must be close.
  EXPECT_LT(final_rmse, 0.25);
}

TEST(Reference, InitYIsSmallRandomXIsZero) {
  AlsOptions o = opts(6);
  Matrix x, y;
  init_factors(10, 8, o, x, y);
  EXPECT_EQ(x.rows(), 10);
  EXPECT_EQ(y.rows(), 8);
  EXPECT_DOUBLE_EQ(x.frob2(), 0.0);  // Algorithm 1 line 2
  EXPECT_GT(y.frob2(), 0.0);
  // "Small random numbers": bounded by 0.5/sqrt(k).
  for (index_t r = 0; r < y.rows(); ++r) {
    for (index_t c = 0; c < y.cols(); ++c) {
      EXPECT_LE(std::abs(y(r, c)), 0.5 / std::sqrt(6.0) + 1e-6);
    }
  }
}

TEST(Reference, DeterministicInSeed) {
  const Csr train = testing::random_csr(30, 20, 0.2, 5);
  const auto a = reference_als(train, opts());
  const auto b = reference_als(train, opts());
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(Reference, EmptyRowsYieldZeroFactors) {
  Coo coo(5, 5);
  coo.add(0, 0, 3.0f);
  coo.add(0, 1, 4.0f);
  coo.add(2, 2, 5.0f);  // rows 1, 3, 4 empty
  const Csr train = coo_to_csr(coo);
  const auto result = reference_als(train, opts(3, 2));
  for (index_t u : {1, 3, 4}) {
    for (index_t f = 0; f < 3; ++f) {
      EXPECT_FLOAT_EQ(result.x(u, f), 0.0f) << "row " << u;
    }
  }
  // Non-empty rows must be non-zero.
  EXPECT_GT(std::abs(result.x(0, 0)) + std::abs(result.x(0, 1)) +
                std::abs(result.x(0, 2)),
            0.0f);
}

TEST(Reference, HigherLambdaShrinksFactors) {
  const Csr train = testing::random_csr(40, 30, 0.2, 7);
  AlsOptions lo = opts(4, 6);
  lo.lambda = 0.01f;
  AlsOptions hi = opts(4, 6);
  hi.lambda = 10.0f;
  const auto rlo = reference_als(train, lo);
  const auto rhi = reference_als(train, hi);
  EXPECT_LT(rhi.x.frob2(), rlo.x.frob2());
}

TEST(Reference, LuSolverGivesSameResultAsCholesky) {
  const Csr train = testing::random_csr(25, 25, 0.25, 9);
  AlsOptions chol = opts(5, 3);
  AlsOptions lu = opts(5, 3);
  lu.solver = LinearSolverKind::kLu;
  const auto a = reference_als(train, chol);
  const auto b = reference_als(train, lu);
  EXPECT_LT(max_abs_diff(a.x, b.x), 1e-2);
  EXPECT_LT(max_abs_diff(a.y, b.y), 1e-2);
}

}  // namespace
}  // namespace alsmf
