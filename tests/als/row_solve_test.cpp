#include "als/row_solve.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "linalg/vecops.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(RowSolve, AssemblesKnownSystem) {
  // y rows: [1,0], [0,2]; ratings 3 (col 0) and 4 (col 1); lambda = 0.5.
  Matrix y(2, 2);
  y(0, 0) = 1;
  y(1, 1) = 2;
  std::vector<index_t> cols = {0, 1};
  std::vector<real> vals = {3, 4};
  std::vector<real> smat(4), svec(2);
  assemble_normal_equations(cols, vals, y, 0.5f, 2, smat.data(), svec.data());
  // smat = [[1,0],[0,4]] + 0.5 I ; svec = [3, 8].
  EXPECT_FLOAT_EQ(smat[0], 1.5f);
  EXPECT_FLOAT_EQ(smat[1], 0.0f);
  EXPECT_FLOAT_EQ(smat[2], 0.0f);
  EXPECT_FLOAT_EQ(smat[3], 4.5f);
  EXPECT_FLOAT_EQ(svec[0], 3.0f);
  EXPECT_FLOAT_EQ(svec[1], 8.0f);
}

TEST(RowSolve, StagedMatchesDirectBitwise) {
  const int k = 7;
  Matrix y(30, k);
  Rng rng(5);
  y.fill_uniform(rng, -1, 1);
  std::vector<index_t> cols = {2, 5, 9, 14, 28};
  std::vector<real> vals = {1, 2, 3, 4, 5};

  std::vector<real> smat_a(static_cast<std::size_t>(k) * k), svec_a(k);
  assemble_normal_equations(cols, vals, y, 0.1f, k, smat_a.data(),
                            svec_a.data());

  // Build the gathered tile and use the staged path.
  std::vector<real> tile;
  for (auto c : cols) {
    auto row = y.row(c);
    tile.insert(tile.end(), row.begin(), row.end());
  }
  std::vector<real> smat_b(static_cast<std::size_t>(k) * k), svec_b(k);
  assemble_normal_equations_staged(tile, vals, 0.1f, k, smat_b.data(),
                                   svec_b.data());

  EXPECT_EQ(smat_a, smat_b);  // bitwise: identical accumulation order
  EXPECT_EQ(svec_a, svec_b);
}

TEST(RowSolve, SolveRecoversExactRow) {
  // If ratings are exactly y_i . x_true, the solve must recover x_true
  // (up to the lambda-induced shrinkage being small).
  const int k = 3;
  Matrix y(40, k);
  Rng rng(9);
  y.fill_uniform(rng, -1, 1);
  const std::vector<real> x_true = {0.5f, -1.0f, 2.0f};
  std::vector<index_t> cols;
  std::vector<real> vals;
  for (index_t i = 0; i < 40; ++i) {
    cols.push_back(i);
    vals.push_back(vdot(y.row(i).data(), x_true.data(), k));
  }
  std::vector<real> smat(static_cast<std::size_t>(k) * k), svec(k);
  assemble_normal_equations(cols, vals, y, 1e-5f, k, smat.data(), svec.data());
  ASSERT_TRUE(solve_normal_equations(smat.data(), svec.data(), k,
                                     LinearSolverKind::kCholesky));
  for (int f = 0; f < k; ++f) EXPECT_NEAR(svec[static_cast<std::size_t>(f)], x_true[static_cast<std::size_t>(f)], 1e-3);
}

TEST(RowSolve, CholeskyAndLuAgree) {
  const int k = 6;
  Matrix y(25, k);
  Rng rng(4);
  y.fill_uniform(rng, -1, 1);
  std::vector<index_t> cols;
  std::vector<real> vals;
  for (index_t i = 0; i < 25; i += 2) {
    cols.push_back(i);
    vals.push_back(static_cast<real>(rng.uniform(1, 5)));
  }
  std::vector<real> smat1(static_cast<std::size_t>(k) * k), svec1(k);
  assemble_normal_equations(cols, vals, y, 0.1f, k, smat1.data(), svec1.data());
  auto smat2 = smat1;
  auto svec2 = svec1;
  ASSERT_TRUE(solve_normal_equations(smat1.data(), svec1.data(), k,
                                     LinearSolverKind::kCholesky));
  ASSERT_TRUE(solve_normal_equations(smat2.data(), svec2.data(), k,
                                     LinearSolverKind::kLu));
  for (int f = 0; f < k; ++f) EXPECT_NEAR(svec1[static_cast<std::size_t>(f)], svec2[static_cast<std::size_t>(f)], 1e-3);
}

TEST(RowSolve, LambdaAlwaysMakesSystemSolvable) {
  // Even with a single rating (rank-1 gram), lambda > 0 keeps smat SPD.
  const int k = 5;
  Matrix y(3, k);
  Rng rng(2);
  y.fill_uniform(rng, -1, 1);
  std::vector<index_t> cols = {1};
  std::vector<real> vals = {4.0f};
  std::vector<real> smat(static_cast<std::size_t>(k) * k), svec(k);
  assemble_normal_equations(cols, vals, y, 0.1f, k, smat.data(), svec.data());
  EXPECT_TRUE(solve_normal_equations(smat.data(), svec.data(), k,
                                     LinearSolverKind::kCholesky));
}

TEST(RowSolve, FailedSolveZeroFills) {
  const int k = 2;
  std::vector<real> smat = {0, 0, 0, 0};  // not SPD
  std::vector<real> svec = {1, 2};
  EXPECT_FALSE(solve_normal_equations(smat.data(), svec.data(), k,
                                      LinearSolverKind::kCholesky));
  EXPECT_FLOAT_EQ(svec[0], 0.0f);
  EXPECT_FLOAT_EQ(svec[1], 0.0f);
}

}  // namespace
}  // namespace alsmf
