// Property tests for the pluggable S3 row-solver strategies
// (docs/solvers.md): CG's finite-termination agreement with the exact
// solve, warm-start monotonicity, subspace d = k exactness and sweep
// convergence, the exact strategy's bitwise delegation, parse round-trips,
// and Anderson mixing's outer-iteration savings.
#include "als/row_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "als/metrics.hpp"
#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "als/solver.hpp"
#include "data/synthetic.hpp"
#include "linalg/cholesky.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

/// A random SPD k×k normal-equations system (smat, svec) with the exact
/// accumulation order of the real assembly path.
struct System {
  std::vector<real> smat, svec;
  int k;
};

System random_system(int k, std::uint64_t seed, real lambda = 0.1f) {
  Rng rng(seed);
  Matrix y(3 * k, k);
  y.fill_uniform(rng, -1, 1);
  std::vector<index_t> cols;
  std::vector<real> vals;
  for (index_t i = 0; i < y.rows(); i += 2) {
    cols.push_back(i);
    vals.push_back(static_cast<real>(rng.uniform(1, 5)));
  }
  System s;
  s.k = k;
  s.smat.resize(static_cast<std::size_t>(k) * k);
  s.svec.resize(static_cast<std::size_t>(k));
  assemble_normal_equations(cols, vals, y, lambda, k, s.smat.data(),
                            s.svec.data());
  return s;
}

/// ‖smat·x − b‖₂ against the ORIGINAL (unfactorized) system.
double residual_norm(const System& s, const real* x) {
  double sq = 0;
  for (int i = 0; i < s.k; ++i) {
    double r = -static_cast<double>(s.svec[static_cast<std::size_t>(i)]);
    for (int j = 0; j < s.k; ++j) {
      r += static_cast<double>(
               s.smat[static_cast<std::size_t>(i) * s.k + j]) *
           static_cast<double>(x[static_cast<std::size_t>(j)]);
    }
    sq += r * r;
  }
  return std::sqrt(sq);
}

/// Runs `solver` on a copy of the system; returns the solution vector.
std::vector<real> solve_copy(const RowSolver& solver, const System& s,
                             const real* warm = nullptr) {
  auto smat = s.smat;
  auto svec = s.svec;
  std::vector<real> scratch(solver.scratch_reals(s.k));
  EXPECT_TRUE(
      solver.solve(smat.data(), svec.data(), s.k, warm, scratch.data()));
  return svec;
}

AlsOptions strategy_options(RowSolverKind kind) {
  AlsOptions o;
  o.k = 8;
  o.row_solver = kind;
  return o;
}

TEST(RowSolverParse, RoundTripsEveryKind) {
  for (RowSolverKind kind : {RowSolverKind::kCholesky, RowSolverKind::kCg,
                             RowSolverKind::kSubspace}) {
    EXPECT_EQ(parse_row_solver(to_string(kind)), kind);
  }
  for (LinearSolverKind kind :
       {LinearSolverKind::kCholesky, LinearSolverKind::kLu}) {
    EXPECT_EQ(parse_linear_solver(to_string(kind)), kind);
  }
}

TEST(RowSolverParse, RejectsUnknownNamingTheValue) {
  try {
    parse_row_solver("qr");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("'qr'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("subspace"), std::string::npos);
  }
  RowSolverKind out;
  EXPECT_FALSE(try_parse("", out));
  LinearSolverKind lout;
  EXPECT_FALSE(try_parse("qr", lout));
}

TEST(RowSolverValidate, ActionableErrorsForStrategyKnobs) {
  AlsOptions o;
  o.cg_iters = 0;
  EXPECT_THROW(validate(o), Error);
  o = AlsOptions{};
  o.subspace_block = o.k + 1;
  EXPECT_THROW(validate(o), Error);
  o = AlsOptions{};
  o.anderson_m = -1;
  EXPECT_THROW(validate(o), Error);
  o = AlsOptions{};
  EXPECT_NO_THROW(validate(o));
}

TEST(RowSolver, FactoryBuildsSelectedKind) {
  for (RowSolverKind kind : {RowSolverKind::kCholesky, RowSolverKind::kCg,
                             RowSolverKind::kSubspace}) {
    const auto solver = make_row_solver(strategy_options(kind));
    EXPECT_EQ(solver->kind(), kind);
    EXPECT_EQ(solver->uses_warm_start(), kind != RowSolverKind::kCholesky);
  }
  EXPECT_EQ(make_exact_row_solver(LinearSolverKind::kLu)->kind(),
            RowSolverKind::kCholesky);
}

TEST(RowSolver, CholeskyStrategyBitwiseMatchesDirectSolve) {
  // The exact strategy must delegate: byte-for-byte the pre-strategy path.
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const System s = random_system(9, seed);
    const auto strategy = make_exact_row_solver(LinearSolverKind::kCholesky);
    const std::vector<real> via_strategy = solve_copy(*strategy, s);
    auto smat = s.smat;
    auto svec = s.svec;
    ASSERT_TRUE(solve_normal_equations(smat.data(), svec.data(), s.k,
                                       LinearSolverKind::kCholesky));
    EXPECT_EQ(via_strategy, svec);  // bitwise
  }
}

TEST(RowSolver, CgAtKIterationsMatchesExactSolve) {
  // CG's finite-termination property: k steps on a k×k SPD system reach
  // the exact solution up to rounding.
  for (std::uint64_t seed : {4u, 5u, 6u}) {
    const System s = random_system(8, seed);
    const auto exact = make_exact_row_solver(LinearSolverKind::kCholesky);
    AlsOptions o = strategy_options(RowSolverKind::kCg);
    o.cg_iters = s.k;
    const auto cg = make_row_solver(o);
    const std::vector<real> want = solve_copy(*exact, s);
    const std::vector<real> got = solve_copy(*cg, s);
    for (int f = 0; f < s.k; ++f) {
      EXPECT_NEAR(got[static_cast<std::size_t>(f)],
                  want[static_cast<std::size_t>(f)], 2e-3)
          << "seed " << seed << " coord " << f;
    }
  }
}

TEST(RowSolver, CgWarmStartNeverDegradesResidual) {
  // Truncated CG monotonically shrinks the residual, so starting from any
  // warm guess must end at least as close as the guess itself.
  AlsOptions o = strategy_options(RowSolverKind::kCg);
  o.cg_iters = 2;
  const auto cg = make_row_solver(o);
  for (std::uint64_t seed : {7u, 8u, 9u, 10u}) {
    const System s = random_system(10, seed);
    Rng rng(seed + 100);
    std::vector<real> warm(static_cast<std::size_t>(s.k));
    for (auto& w : warm) w = static_cast<real>(rng.uniform(-2, 2));
    const double before = residual_norm(s, warm.data());
    const std::vector<real> refined = solve_copy(*cg, s, warm.data());
    const double after = residual_norm(s, refined.data());
    EXPECT_LE(after, before * (1 + 1e-4)) << "seed " << seed;
    // And strictly better than that from a cold start's first target too:
    // the refined iterate beats doing nothing.
    EXPECT_LT(after, before + 1e-6) << "seed " << seed;
  }
}

TEST(RowSolver, SubspaceFullBlockEqualsExactSolve) {
  // d = k collapses the sweep to one exact solve of the whole system.
  for (std::uint64_t seed : {11u, 12u}) {
    const System s = random_system(7, seed);
    const auto exact = make_exact_row_solver(LinearSolverKind::kCholesky);
    AlsOptions o = strategy_options(RowSolverKind::kSubspace);
    o.k = s.k;
    o.subspace_block = s.k;
    const auto subspace = make_row_solver(o);
    const std::vector<real> want = solve_copy(*exact, s);
    const std::vector<real> got = solve_copy(*subspace, s);
    for (int f = 0; f < s.k; ++f) {
      EXPECT_NEAR(got[static_cast<std::size_t>(f)],
                  want[static_cast<std::size_t>(f)], 1e-4);
    }
  }
}

TEST(RowSolver, SubspaceSweepsConvergeToExactSolution) {
  // Block Gauss-Seidel on an SPD system converges: repeated warm-started
  // sweeps must drive the residual toward zero.
  const System s = random_system(8, 13);
  AlsOptions o = strategy_options(RowSolverKind::kSubspace);
  o.subspace_block = 3;
  const auto subspace = make_row_solver(o);
  std::vector<real> x(static_cast<std::size_t>(s.k), real{0});
  double prev = residual_norm(s, x.data());
  for (int sweep = 0; sweep < 12; ++sweep) {
    x = solve_copy(*subspace, s, x.data());
    const double cur = residual_norm(s, x.data());
    EXPECT_LE(cur, prev * (1 + 1e-4)) << "sweep " << sweep;
    prev = cur;
  }
  const auto exact = make_exact_row_solver(LinearSolverKind::kCholesky);
  const std::vector<real> want = solve_copy(*exact, s);
  for (int f = 0; f < s.k; ++f) {
    EXPECT_NEAR(x[static_cast<std::size_t>(f)],
                want[static_cast<std::size_t>(f)], 1e-3);
  }
}

TEST(RowSolver, FlopModelsOrderSensibly) {
  // The bench's premise: the default subspace sweep undercuts the exact
  // factorization already at k = 16, while truncated CG's O(k²)-per-step
  // cost only overtakes the O(k³/3) factorization at larger k (~24 for 3
  // inner steps) — so the CG comparison is pinned at k = 32.
  const int k = 16;
  AlsOptions o = strategy_options(RowSolverKind::kCholesky);
  o.k = k;
  const double chol = make_row_solver(o)->modeled_flops(k);
  o.row_solver = RowSolverKind::kSubspace;
  const double sub = make_row_solver(o)->modeled_flops(k);
  EXPECT_LT(sub, chol);
  EXPECT_NEAR(subspace_solve_flops(k, k), cholesky_solve_flops(k), 1e-9);

  const int big = 32;
  o.row_solver = RowSolverKind::kCholesky;
  o.k = big;
  const double chol_big = make_row_solver(o)->modeled_flops(big);
  o.row_solver = RowSolverKind::kCg;
  const double cg_big = make_row_solver(o)->modeled_flops(big);
  EXPECT_LT(cg_big, chol_big);
}

TEST(Anderson, MixerAcceleratesLinearFixedPoint) {
  // Scalar-free sanity on a contraction z ← Az + b (A = 0.9·rotation-ish):
  // mixing must reach the fixed point in far fewer steps.
  const std::size_t n = 4;
  const real a[n][n] = {{0.9f, 0.02f, 0, 0},
                        {0, 0.85f, 0.03f, 0},
                        {0, 0, 0.8f, 0.04f},
                        {0.01f, 0, 0, 0.75f}};
  const real b[n] = {1, 2, 3, 4};
  auto apply = [&](const std::vector<real>& z) {
    std::vector<real> g(n);
    for (std::size_t i = 0; i < n; ++i) {
      real s = b[i];
      for (std::size_t j = 0; j < n; ++j) s += a[i][j] * z[j];
      g[i] = s;
    }
    return g;
  };
  auto iterate = [&](AndersonMixer* mixer) {
    std::vector<real> z(n, real{0});
    for (int it = 1; it <= 200; ++it) {
      std::vector<real> g = apply(z);
      if (mixer) mixer->mix(z.data(), g.data());
      real delta = 0;
      for (std::size_t i = 0; i < n; ++i) {
        delta = std::max(delta, std::fabs(g[i] - z[i]));
      }
      z = std::move(g);
      if (delta < 1e-4f) return it;
    }
    return 200;
  };
  const int plain = iterate(nullptr);
  AndersonMixer mixer(n, 3);
  const int mixed = iterate(&mixer);
  EXPECT_GE(plain, 40);  // the plain contraction is genuinely slow
  EXPECT_LE(mixed, plain / 2) << "plain " << plain << " mixed " << mixed;
}

TEST(Anderson, CutsOuterIterationsToPinnedRmse) {
  // The headline property: on an overparameterized planted problem (k above
  // the planted rank, light regularization — the slow linear-tail regime
  // where mixing pays off), Anderson reaches the plain trajectory's pinned
  // RMSE in >= 25% fewer outer iterations.
  SyntheticSpec spec;
  spec.users = 120;
  spec.items = 90;
  spec.nnz = 4000;
  spec.seed = 31;
  spec.planted_rank = 4;
  spec.noise = 0.0;
  spec.integer_ratings = false;
  const Csr train = generate_synthetic_csr(spec);

  AlsOptions o;
  o.k = 12;
  o.lambda = 0.001f;
  o.num_groups = 256;
  const int pin_iters = 48;

  devsim::Device plain_dev(devsim::k20c());
  AlsSolver plain(train, o, AlsVariant::batch_local_reg(), plain_dev);
  for (int i = 0; i < pin_iters; ++i) plain.run_iteration();
  const double target = plain.train_rmse();

  AlsOptions ao = o;
  ao.anderson_m = 3;
  devsim::Device mixed_dev(devsim::k20c());
  AlsSolver mixed(train, ao, AlsVariant::batch_local_reg(), mixed_dev);
  int used = 0;
  bool mixed_steps = false;
  while (used < pin_iters && mixed.train_rmse() > target) {
    mixed.run_iteration();
    mixed_steps = mixed_steps || mixed.anderson_depth() > 0;
    ++used;
  }
  ASSERT_LE(mixed.train_rmse(), target);
  EXPECT_LE(used, (pin_iters * 3) / 4)
      << "anderson needed " << used << " of " << pin_iters
      << " plain iterations to rmse " << target;
  EXPECT_TRUE(mixed_steps);
}

TEST(SolverStrategies, IterativeStrategiesReachCholeskyQuality) {
  // End-to-end: cg and subspace half-updates track the exact trajectory's
  // quality on a small planted problem (slightly looser RMSE allowed).
  SyntheticSpec spec;
  spec.users = 90;
  spec.items = 70;
  spec.nnz = 2500;
  spec.seed = 17;
  spec.planted_rank = 4;
  spec.noise = 0.1;
  spec.integer_ratings = false;
  const Csr train = generate_synthetic_csr(spec);

  AlsOptions o;
  o.k = 8;
  o.lambda = 0.05f;
  o.iterations = 16;
  o.num_groups = 256;

  auto final_rmse = [&](RowSolverKind kind) {
    AlsOptions so = o;
    so.row_solver = kind;
    devsim::Device device(devsim::k20c());
    AlsSolver solver(train, so, AlsVariant::batch_local_reg(), device);
    solver.run({});
    return solver.train_rmse();
  };
  const double chol = final_rmse(RowSolverKind::kCholesky);
  EXPECT_LE(final_rmse(RowSolverKind::kCg), chol * 1.10);
  EXPECT_LE(final_rmse(RowSolverKind::kSubspace), chol * 1.10);
}

}  // namespace
}  // namespace alsmf
