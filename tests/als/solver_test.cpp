#include "als/solver.hpp"

#include <gtest/gtest.h>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts() {
  AlsOptions o;
  o.k = 5;
  o.lambda = 0.1f;
  o.iterations = 4;
  o.seed = 77;
  o.num_groups = 128;
  return o;
}

TEST(Solver, FullRunMatchesReference) {
  const Csr train = testing::random_csr(70, 45, 0.15, 8);
  const AlsOptions o = opts();
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batch_local_reg(), device);
  solver.run({});
  const auto ref = reference_als(train, o);
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(Solver, LossDecreasesOverIterations) {
  const Csr train = testing::random_csr(60, 60, 0.1, 9);
  devsim::Device device(devsim::xeon_e5_2670_dual());
  AlsSolver solver(train, opts(), AlsVariant::batch_local(), device);
  double prev = solver.train_loss();
  for (int it = 0; it < 5; ++it) {
    solver.run_iteration();
    const double cur = solver.train_loss();
    EXPECT_LE(cur, prev * (1 + 1e-4)) << "iteration " << it;
    prev = cur;
  }
}

TEST(Solver, ModeledTimePositiveAndAccumulates) {
  const Csr train = testing::random_csr(50, 30, 0.2, 10);
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, opts(), AlsVariant::batching_only(), device);
  solver.run_iteration();
  const double one = solver.modeled_seconds();
  EXPECT_GT(one, 0.0);
  solver.run_iteration();
  EXPECT_NEAR(solver.modeled_seconds(), 2 * one, one * 0.01);
}

TEST(Solver, StepBreakdownSumsToTotal) {
  const Csr train = testing::random_csr(50, 30, 0.2, 11);
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, opts(), AlsVariant::batching_only(), device);
  solver.run({});
  const StepBreakdown b = solver.step_breakdown();
  EXPECT_GT(b.s1, 0.0);
  EXPECT_GT(b.s2, 0.0);
  EXPECT_GT(b.s3, 0.0);
  EXPECT_NEAR(b.s1_pct() + b.s2_pct() + b.s3_pct(), 100.0, 1e-6);
  EXPECT_NEAR(b.total(), solver.modeled_seconds(), b.total() * 0.01);
}

TEST(Solver, S1DominatesAtPaperConfig) {
  // Fig. 8: S1 (YᵀY) is the hotspot of the unoptimized batched kernel.
  const Csr train = testing::random_csr(100, 60, 0.2, 12);
  AlsOptions o = opts();
  o.k = 10;
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batching_only(), device);
  solver.run({});
  const StepBreakdown b = solver.step_breakdown();
  EXPECT_GT(b.s1_pct(), b.s2_pct());
}

TEST(Solver, AccountingOnlyRunIsFast) {
  const Csr train = testing::random_csr(60, 40, 0.2, 13);
  AlsOptions o = opts();
  o.functional = false;
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batch_local(), device);
  solver.run({});
  // Factors stay at their initial values.
  EXPECT_DOUBLE_EQ(solver.x().frob2(), 0.0);
  EXPECT_GT(solver.modeled_seconds(), 0.0);
}

TEST(Solver, UpdateXOnlyTouchesX) {
  const Csr train = testing::random_csr(40, 30, 0.2, 14);
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, opts(), AlsVariant::batching_only(), device);
  const Matrix y_before = solver.y();
  solver.update_x();
  EXPECT_EQ(solver.y(), y_before);
  EXPECT_GT(solver.x().frob2(), 0.0);
}

TEST(Solver, InvalidOptionsRejected) {
  const Csr train = testing::random_csr(10, 10, 0.3, 15);
  devsim::Device device(devsim::k20c());
  AlsOptions bad_k = opts();
  bad_k.k = 0;
  EXPECT_THROW(AlsSolver(train, bad_k, AlsVariant(), device), Error);
  AlsOptions bad_lambda = opts();
  bad_lambda.lambda = 0.0f;
  EXPECT_THROW(AlsSolver(train, bad_lambda, AlsVariant(), device), Error);
}

TEST(Solver, WallSecondsNonNegative) {
  const Csr train = testing::random_csr(20, 20, 0.2, 16);
  devsim::Device device(devsim::xeon_phi_31sp());
  AlsSolver solver(train, opts(), AlsVariant::batch_vectors(), device);
  solver.run({});
  EXPECT_GE(solver.wall_seconds(), 0.0);
}

}  // namespace
}  // namespace alsmf
