// Static/dynamic agreement: the analyzer's predicted launch activity
// (ocl/analyze/static_profile.hpp, computed from the generated OpenCL source
// alone) must match what the devsim accounting kernels actually record, on
// every variant and device profile. Off-chip traffic is held to 10% (the
// analyzer statically charges the row_ptr walk the dynamic path streams);
// on-chip and op counters are near-exact, and the scratch-pad peak is exact.
#include <gtest/gtest.h>

#include <string>

#include "als/kernels.hpp"
#include "devsim/cost_model.hpp"
#include "devsim/device.hpp"
#include "ocl/analyze/parser.hpp"
#include "ocl/analyze/static_profile.hpp"
#include "ocl/kernel_source.hpp"
#include "sparse/convert.hpp"

namespace alsmf {
namespace {

constexpr int kRows = 300;
constexpr int kCols = 200;
constexpr int kK = 10;
constexpr int kWs = 32;
constexpr std::size_t kGroups = 48;

// Deterministic ragged matrix with distinct columns per row (5..34 nnz;
// gcd(7, kCols) = 1 keeps (u + e*7) % kCols collision-free for e < 29).
Csr make_train() {
  Coo coo(kRows, kCols);
  for (int u = 0; u < kRows; ++u) {
    const int deg = 5 + (u % 30);
    for (int e = 0; e < deg; ++e) {
      coo.add(u, (u + e * 7) % kCols, 1.0f);
    }
  }
  return coo_to_csr(coo);
}

ocl::analyze::DatasetStats stats_of(const Csr& r) {
  ocl::analyze::DatasetStats s;
  s.rows = static_cast<double>(r.rows());
  s.nnz = static_cast<double>(r.nnz());
  for (index_t u = 0; u < r.rows(); ++u) {
    if (r.row_nnz(u) > 0) s.nonempty_rows += 1;
  }
  return s;
}

double offchip(const devsim::LaunchCounters& c,
               const devsim::DeviceProfile& p) {
  return static_cast<double>(c.global_bytes) +
         devsim::scattered_bytes_moved(c, p);
}

void expect_near_pct(double got, double want, double pct,
                     const std::string& what) {
  if (want == 0) {
    EXPECT_EQ(got, 0) << what;
    return;
  }
  EXPECT_NEAR(got / want, 1.0, pct / 100.0) << what << ": static " << got
                                            << " vs dynamic " << want;
}

void check_agreement(const devsim::DeviceProfile& profile, long tile_rows) {
  const Csr r = make_train();
  const ocl::analyze::DatasetStats stats = stats_of(r);
  Matrix src(kCols, kK, 0.1f);

  ocl::KernelConfig cfg;
  cfg.k = kK;
  cfg.group_size = kWs;
  ocl::analyze::StaticLaunchParams launch;
  launch.num_groups = kGroups;
  launch.group_size = kWs;
  launch.tile_rows = tile_rows;

  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    const std::string label =
        profile.name + "/" + v.name() + "/tile" + std::to_string(tile_rows);

    // Dynamic: one accounting-only launch of the devsim kernel.
    devsim::Device device(profile);
    Matrix dst(kRows, kK);
    UpdateArgs args;
    args.r = &r;
    args.src = &src;
    args.dst = &dst;
    args.k = kK;
    args.variant = v;
    args.tile_rows = tile_rows;
    const devsim::LaunchCounters dyn =
        launch_update(device, "u", args, kGroups, kWs, /*functional=*/false)
            .counters;

    // Static: lower the generated OpenCL source and price it.
    const auto kernels = ocl::analyze::lower_kernels(
        ocl::analyze::parse_translation_unit(ocl::batched_kernel_source(v, cfg)));
    ASSERT_EQ(kernels.size(), 1u);
    const ocl::analyze::StaticKernelProfile sp =
        ocl::analyze::build_static_profile(kernels.front(), stats, launch,
                                           profile);
    const devsim::LaunchCounters& st = sp.counters;

    // The acceptance bound: off-chip traffic within 10%.
    expect_near_pct(offchip(st, profile), offchip(dyn, profile), 10.0,
                    label + " offchip bytes");
    // On-chip traffic and issue counts mirror the same formulas: 1%.
    expect_near_pct(static_cast<double>(st.local_bytes),
                    static_cast<double>(dyn.local_bytes), 1.0,
                    label + " local bytes");
    expect_near_pct(static_cast<double>(st.spill_bytes),
                    static_cast<double>(dyn.spill_bytes), 1.0,
                    label + " spill bytes");
    expect_near_pct(st.lane_ops_scalar, dyn.lane_ops_scalar, 1.0,
                    label + " scalar lane-ops");
    expect_near_pct(st.lane_ops_vector, dyn.lane_ops_vector, 1.0,
                    label + " vector lane-ops");
    expect_near_pct(st.useful_flops, dyn.useful_flops, 1.0,
                    label + " useful flops");
    // Resource figures are exact: same allocation and sizing rules.
    EXPECT_EQ(st.local_alloc_peak, dyn.local_alloc_peak) << label;
    EXPECT_EQ(st.register_demand_peak, dyn.register_demand_peak) << label;
    EXPECT_EQ(st.groups, dyn.groups) << label;
  }
}

TEST(StaticAgreement, CpuPinnedTile) {
  check_agreement(devsim::profile_by_name("cpu"), 64);
}

TEST(StaticAgreement, GpuPinnedTile) {
  check_agreement(devsim::profile_by_name("gpu"), 64);
}

TEST(StaticAgreement, MicPinnedTile) {
  check_agreement(devsim::profile_by_name("mic"), 64);
}

TEST(StaticAgreement, CpuAutoTile) {
  check_agreement(devsim::profile_by_name("cpu"), 0);
}

TEST(StaticAgreement, GpuAutoTile) {
  check_agreement(devsim::profile_by_name("gpu"), 0);
}

TEST(StaticAgreement, GpuTinyTileMultiChunk) {
  // A deliberately tiny tile forces multi-chunk staging (chunks > 1), the
  // regime where the per-chunk barrier and re-fill pricing matter.
  check_agreement(devsim::profile_by_name("gpu"), 4);
}

}  // namespace
}  // namespace alsmf
