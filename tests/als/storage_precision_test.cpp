// fp16/bf16 factor-storage training: every freshly solved factor block is
// rounded through the storage format (the training-side counterpart of the
// kernels the precision analyzer certifies), the trajectory hash separates
// narrow runs from fp32 checkpoints, and the quality cost stays small.
#include <gtest/gtest.h>

#include "als/reference.hpp"
#include "als/solver.hpp"
#include "common/halfprec.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts(StoragePrecision storage = StoragePrecision::kFp32) {
  AlsOptions o;
  o.k = 5;
  o.lambda = 0.1f;
  o.iterations = 4;
  o.seed = 77;
  o.num_groups = 128;
  o.storage = storage;
  return o;
}

bool fp16_representable(float v) { return fp16_round_ftz(v) == v; }
bool bf16_representable(float v) { return bf16_round(v) == v; }

TEST(StoragePrecisionTraining, Fp16FactorsLandOnTheStorageGrid) {
  const Csr train = testing::random_csr(60, 40, 0.15, 8);
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, opts(StoragePrecision::kFp16),
                   AlsVariant::batch_local_reg(), device);
  solver.run({});
  for (std::size_t i = 0; i < solver.x().size(); ++i) {
    ASSERT_TRUE(fp16_representable(solver.x().data()[i])) << "x[" << i << "]";
  }
  for (std::size_t i = 0; i < solver.y().size(); ++i) {
    ASSERT_TRUE(fp16_representable(solver.y().data()[i])) << "y[" << i << "]";
  }
}

TEST(StoragePrecisionTraining, Bf16FactorsLandOnTheStorageGrid) {
  const Csr train = testing::random_csr(60, 40, 0.15, 8);
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, opts(StoragePrecision::kBf16),
                   AlsVariant::batch_local(), device);
  solver.run({});
  for (std::size_t i = 0; i < solver.x().size(); ++i) {
    ASSERT_TRUE(bf16_representable(solver.x().data()[i])) << "x[" << i << "]";
  }
}

TEST(StoragePrecisionTraining, NarrowStorageCostsLittleQuality) {
  // The headline claim the bench_regress leg pins at full scale, in
  // miniature: fp16-storage training converges to nearly the fp32 RMSE.
  const Csr train = testing::random_csr(80, 50, 0.15, 21);
  devsim::Device d32(devsim::k20c()), d16(devsim::k20c());
  AlsSolver fp32(train, opts(), AlsVariant::batch_local_reg(), d32);
  AlsSolver fp16(train, opts(StoragePrecision::kFp16),
                 AlsVariant::batch_local_reg(), d16);
  fp32.run({});
  fp16.run({});
  const double base = fp32.train_rmse();
  EXPECT_GT(fp16.train_rmse(), 0.0);
  EXPECT_LT(fp16.train_rmse(), base + 0.05);
}

TEST(StoragePrecisionTraining, Fp32PathIsBitwiseUntouched) {
  // storage=kFp32 must stay the identity: same factors as the reference.
  const Csr train = testing::random_csr(50, 30, 0.2, 10);
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, opts(), AlsVariant::batching_only(), device);
  solver.run({});
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(solver.x(), ref.x);
  EXPECT_EQ(solver.y(), ref.y);
}

TEST(StoragePrecisionTraining, TrajectoryHashSeparatesStorageFormats) {
  const Csr train = testing::random_csr(30, 20, 0.2, 5);
  const std::uint64_t h32 = trajectory_hash(opts(), train);
  const std::uint64_t h16 =
      trajectory_hash(opts(StoragePrecision::kFp16), train);
  const std::uint64_t hbf =
      trajectory_hash(opts(StoragePrecision::kBf16), train);
  // Non-fp32 storage changes the trajectory, so its checkpoints must not
  // be loadable into an fp32 run (and vice versa)...
  EXPECT_NE(h32, h16);
  EXPECT_NE(h32, hbf);
  EXPECT_NE(h16, hbf);
  // ...while fp32 runs keep hashing exactly as pre-storage builds did
  // (the knob folds in only when it changes the trajectory).
  AlsOptions o = opts();
  o.storage = StoragePrecision::kFp32;
  EXPECT_EQ(trajectory_hash(o, train), h32);
}

}  // namespace
}  // namespace alsmf
