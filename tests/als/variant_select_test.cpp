#include "als/variant_select.hpp"

#include <gtest/gtest.h>

#include "data/datasets.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts() {
  AlsOptions o;
  o.k = 10;
  o.iterations = 2;
  o.num_groups = 256;
  return o;
}

TEST(VariantSelect, ScoresAllEightSortedAscending) {
  const Csr train = make_replica("YMR4", 8.0);
  const auto scores = score_variants(train, opts(), devsim::k20c());
  ASSERT_EQ(scores.size(), AlsVariant::kVariantCount);
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_LE(scores[i - 1].modeled_seconds, scores[i].modeled_seconds);
  }
  for (const auto& s : scores) EXPECT_GT(s.modeled_seconds, 0.0);
}

TEST(VariantSelect, GpuEmpiricalBestUsesLocalAndRegisters) {
  // Fig. 6: registers + local memory dominate on the GPU.
  const Csr train = make_replica("NTFX", 256.0);
  const AlsVariant best =
      select_variant_empirical(train, opts(), devsim::k20c());
  EXPECT_TRUE(best.use_local);
  EXPECT_TRUE(best.use_registers);
}

TEST(VariantSelect, CpuEmpiricalBestAvoidsRegistersWithLocal) {
  // §V-B: registers+local harmful on CPU; best CPU variants use local.
  const Csr train = make_replica("NTFX", 256.0);
  const AlsVariant best =
      select_variant_empirical(train, opts(), devsim::xeon_e5_2670_dual());
  EXPECT_TRUE(best.use_local);
  EXPECT_FALSE(best.use_registers);
}

TEST(VariantSelect, HeuristicMatchesPaperGuidance) {
  const Csr train = make_replica("MVLE", 256.0);
  const AlsVariant gpu = select_variant_heuristic(train, opts(), devsim::k20c());
  EXPECT_TRUE(gpu.use_local);
  EXPECT_TRUE(gpu.use_registers);
  EXPECT_FALSE(gpu.use_vectors);

  const AlsVariant cpu =
      select_variant_heuristic(train, opts(), devsim::xeon_e5_2670_dual());
  EXPECT_TRUE(cpu.use_local);
  EXPECT_FALSE(cpu.use_registers);

  const AlsVariant mic =
      select_variant_heuristic(train, opts(), devsim::xeon_phi_31sp());
  EXPECT_TRUE(mic.use_local);
  EXPECT_FALSE(mic.use_registers);
}

TEST(VariantSelect, HeuristicAgreesWithEmpiricalOnNetflix) {
  const Csr train = make_replica("NTFX", 256.0);
  for (const char* dev : {"gpu", "cpu", "mic"}) {
    const auto profile = devsim::profile_by_name(dev);
    const auto scores = score_variants(train, opts(), profile);
    const AlsVariant pick = select_variant_heuristic(train, opts(), profile);
    double pick_time = 0;
    for (const auto& s : scores) {
      if (s.variant == pick) pick_time = s.modeled_seconds;
    }
    // The heuristic pick must be within 25% of the empirical optimum.
    EXPECT_LE(pick_time, scores.front().modeled_seconds * 1.25) << dev;
  }
}

TEST(VariantSelect, StaticScoresAllEightSortedAscending) {
  const Csr train = make_replica("YMR4", 8.0);
  const auto scores = score_variants_static(train, opts(), devsim::k20c());
  ASSERT_EQ(scores.size(), AlsVariant::kVariantCount);
  for (std::size_t i = 1; i < scores.size(); ++i) {
    EXPECT_LE(scores[i - 1].modeled_seconds, scores[i].modeled_seconds);
  }
  for (const auto& s : scores) EXPECT_GT(s.modeled_seconds, 0.0);
}

TEST(VariantSelect, StaticRankingPutsEmpiricalBestInTopTwo) {
  // The zero-run contract: the variant the empirical selector finds by
  // actually running all 8 must sit in the static ranking's top 2, on
  // every built-in device profile.
  for (const char* dataset : {"YMR4", "NTFX"}) {
    const Csr train = make_replica(dataset, 64.0);
    for (const char* dev : {"gpu", "cpu", "mic"}) {
      const auto profile = devsim::profile_by_name(dev);
      const AlsVariant best = select_variant_empirical(train, opts(), profile);
      const auto ranked = score_variants_static(train, opts(), profile);
      EXPECT_TRUE(best == ranked[0].variant || best == ranked[1].variant)
          << dataset << "/" << dev << ": empirical best " << best.name()
          << " not in static top-2 (" << ranked[0].variant.name() << ", "
          << ranked[1].variant.name() << ")";
    }
  }
}

TEST(VariantSelect, StaticSelectorNeverRunsButStaysCompetitive) {
  // select_variant_static's pick must be within 25% of the empirical
  // optimum's modeled time — same bar the heuristic is held to.
  const Csr train = make_replica("NTFX", 128.0);
  for (const char* dev : {"gpu", "cpu", "mic"}) {
    const auto profile = devsim::profile_by_name(dev);
    const AlsVariant pick = select_variant_static(train, opts(), profile);
    const auto scores = score_variants(train, opts(), profile);
    double pick_time = 0;
    for (const auto& s : scores) {
      if (s.variant == pick) pick_time = s.modeled_seconds;
    }
    EXPECT_LE(pick_time, scores.front().modeled_seconds * 1.25) << dev;
  }
}

TEST(VariantSelect, RecommendedGroupSizeCoversK) {
  const auto gpu = devsim::k20c();
  // §V-E: smallest size >= k (rounded to scheduling granularity).
  EXPECT_GE(recommend_group_size(10, gpu), 10);
  EXPECT_LE(recommend_group_size(10, gpu), 32);
  EXPECT_GE(recommend_group_size(30, gpu), 30);

  const auto cpu = devsim::xeon_e5_2670_dual();
  EXPECT_EQ(recommend_group_size(10, cpu), cpu.simd_width);
}

TEST(VariantSelect, VariantNamesRoundTrip) {
  EXPECT_EQ(AlsVariant::from_mask(0).name(), "batch");
  EXPECT_EQ(AlsVariant::from_mask(1).name(), "batch+reg");
  EXPECT_EQ(AlsVariant::from_mask(2).name(), "batch+local");
  EXPECT_EQ(AlsVariant::from_mask(3).name(), "batch+local+reg");
  EXPECT_EQ(AlsVariant::from_mask(4).name(), "batch+vec");
  EXPECT_EQ(AlsVariant::from_mask(7).name(), "batch+local+reg+vec");
  EXPECT_EQ(AlsVariant::flat_baseline().name(), "flat");
  EXPECT_THROW(AlsVariant::from_mask(8), Error);
}

}  // namespace
}  // namespace alsmf
