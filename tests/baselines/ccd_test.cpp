#include "baselines/ccd.hpp"

#include <gtest/gtest.h>

#include "als/metrics.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

CcdOptions opts() {
  CcdOptions o;
  o.k = 6;
  o.lambda = 0.1f;
  o.outer_iterations = 6;
  o.seed = 4;
  return o;
}

TEST(Ccd, RmseDecreasesOverOuterIterations) {
  const Csr train = testing::random_csr(120, 90, 0.08, 50);
  const CcdResult r = ccd_train(train, opts());
  ASSERT_EQ(r.iter_rmse.size(), 6u);
  for (std::size_t i = 1; i < r.iter_rmse.size(); ++i) {
    EXPECT_LE(r.iter_rmse[i], r.iter_rmse[i - 1] * (1 + 1e-5));
  }
}

TEST(Ccd, ResidualRmseMatchesDirectRmse) {
  // The RMSE computed from the maintained residual must equal the RMSE
  // computed directly from the factors — validates residual bookkeeping.
  const Csr train = testing::random_csr(80, 60, 0.1, 51);
  const CcdResult r = ccd_train(train, opts());
  const double direct = rmse(train, r.x, r.y);
  EXPECT_NEAR(r.iter_rmse.back(), direct, 1e-3);
}

TEST(Ccd, FitsPlantedData) {
  SyntheticSpec spec;
  spec.users = 250;
  spec.items = 180;
  spec.nnz = 12000;
  spec.planted_rank = 3;
  spec.noise = 0.05;
  spec.integer_ratings = false;
  const Csr train = coo_to_csr(generate_synthetic(spec));
  CcdOptions o = opts();
  o.outer_iterations = 12;
  const CcdResult r = ccd_train(train, o);
  EXPECT_LT(r.iter_rmse.back(), 0.3);
}

TEST(Ccd, DeterministicInSeed) {
  const Csr train = testing::random_csr(40, 40, 0.15, 52);
  ThreadPool pool(1);
  const CcdResult a = ccd_train(train, opts(), &pool);
  const CcdResult b = ccd_train(train, opts(), &pool);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(Ccd, InnerIterationsImproveFit) {
  const Csr train = testing::random_csr(100, 80, 0.1, 53);
  CcdOptions one = opts();
  one.inner_iterations = 1;
  CcdOptions three = opts();
  three.inner_iterations = 3;
  const CcdResult a = ccd_train(train, one);
  const CcdResult b = ccd_train(train, three);
  EXPECT_LE(b.iter_rmse.back(), a.iter_rmse.back() * 1.05);
}

TEST(Ccd, InvalidOptionsRejected) {
  const Csr train = testing::random_csr(10, 10, 0.2, 54);
  CcdOptions bad = opts();
  bad.lambda = 0.0f;
  EXPECT_THROW(ccd_train(train, bad), Error);
  bad = opts();
  bad.k = 0;
  EXPECT_THROW(ccd_train(train, bad), Error);
}

}  // namespace
}  // namespace alsmf
