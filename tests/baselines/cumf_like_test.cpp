#include "baselines/cumf_like.hpp"

#include <gtest/gtest.h>

#include "als/reference.hpp"
#include "als/solver.hpp"
#include "data/datasets.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts() {
  AlsOptions o;
  o.k = 5;
  o.lambda = 0.1f;
  o.iterations = 3;
  o.seed = 55;
  return o;
}

TEST(CumfLike, FunctionallyMatchesReference) {
  const Csr train = testing::random_csr(60, 40, 0.15, 30);
  devsim::Device device(devsim::k20c());
  CumfLikeAls cumf(train, opts(), device);
  cumf.run();
  const auto ref = reference_als(train, opts());
  EXPECT_EQ(cumf.x(), ref.x);
  EXPECT_EQ(cumf.y(), ref.y);
}

TEST(CumfLike, SlowerThanOurSolverAtSmallK) {
  // The paper beats cuMF by 2.2x-6.8x at k = 10 (its kernels target k=100).
  const Csr train = make_replica("NTFX", 512.0);
  AlsOptions o = opts();
  o.k = 10;
  o.functional = false;

  devsim::Device cumf_device(devsim::k20c());
  CumfLikeAls cumf(train, o, cumf_device);
  const double cumf_time = cumf.run();

  devsim::Device ours_device(devsim::k20c());
  AlsSolver ours(train, o, AlsVariant::batch_local_reg(), ours_device);
  const double ours_time = ours.run({}).modeled_seconds;

  EXPECT_GT(cumf_time, ours_time * 1.5);
  EXPECT_LT(cumf_time, ours_time * 20.0);  // but not absurdly slower
}

TEST(CumfLike, ModeledSecondsTracked) {
  const Csr train = testing::random_csr(30, 30, 0.2, 31);
  AlsOptions o = opts();
  o.functional = false;
  devsim::Device device(devsim::k20c());
  CumfLikeAls cumf(train, o, device);
  cumf.run_iteration();
  EXPECT_GT(cumf.modeled_seconds(), 0.0);
}

TEST(CumfLike, RejectsKAboveTileWidth) {
  const Csr train = testing::random_csr(10, 10, 0.3, 32);
  AlsOptions o = opts();
  o.k = 128;  // beyond the library's k=100 tuning target
  devsim::Device device(devsim::k20c());
  EXPECT_THROW(CumfLikeAls(train, o, device), Error);
}

TEST(CumfLike, PaysLibraryLaunchOverheads) {
  // Many library-kernel launches: overhead must exceed a single fused
  // launch's overhead noticeably on a tiny dataset.
  const Csr train = testing::random_csr(20, 20, 0.2, 33);
  AlsOptions o = opts();
  o.iterations = 1;
  o.functional = false;

  devsim::Device cumf_device(devsim::k20c());
  CumfLikeAls cumf(train, o, cumf_device);
  cumf.run();
  double cumf_overhead = 0;
  for (const auto& [name, s] : cumf_device.stats()) {
    cumf_overhead += s.time.overhead_s;
  }

  devsim::Device ours_device(devsim::k20c());
  AlsSolver ours(train, o, AlsVariant::batch_local_reg(), ours_device);
  ours.run({});
  double ours_overhead = 0;
  for (const auto& [name, s] : ours_device.stats()) {
    ours_overhead += s.time.overhead_s;
  }
  EXPECT_GT(cumf_overhead, 2.0 * ours_overhead);
}

}  // namespace
}  // namespace alsmf
