#include "baselines/sgd_device.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

DeviceSgdOptions opts() {
  DeviceSgdOptions o;
  o.k = 6;
  o.epochs = 8;
  o.learning_rate = 0.02f;
  o.num_groups = 64;
  o.seed = 4;
  return o;
}

TEST(DeviceSgd, RmseDecreases) {
  const Coo train = testing::random_coo(150, 120, 0.06, 100);
  devsim::Device device(devsim::k20c());
  DeviceSgd sgd(train, opts(), device);
  const double before = sgd.train_rmse();
  sgd.run();
  EXPECT_LT(sgd.train_rmse(), before);
}

TEST(DeviceSgd, FitsPlantedData) {
  SyntheticSpec spec;
  spec.users = 250;
  spec.items = 180;
  spec.nnz = 12000;
  spec.planted_rank = 3;
  spec.noise = 0.05;
  spec.integer_ratings = false;
  const Coo train = generate_synthetic(spec);
  DeviceSgdOptions o = opts();
  o.epochs = 25;
  devsim::Device device(devsim::xeon_e5_2670_dual());
  DeviceSgd sgd(train, o, device);
  sgd.run();
  EXPECT_LT(sgd.train_rmse(), 0.45);
}

TEST(DeviceSgd, ModeledTimeAccumulatesPerEpoch) {
  const Coo train = testing::random_coo(60, 60, 0.1, 101);
  devsim::Device device(devsim::k20c());
  DeviceSgd sgd(train, opts(), device);
  sgd.run_epoch();
  const double one = sgd.modeled_seconds();
  EXPECT_GT(one, 0.0);
  sgd.run_epoch();
  EXPECT_NEAR(sgd.modeled_seconds(), 2 * one, one * 0.01);
}

TEST(DeviceSgd, AccountingOnlyLeavesFactorsUntouched) {
  const Coo train = testing::random_coo(40, 40, 0.1, 102);
  DeviceSgdOptions o = opts();
  o.functional = false;
  devsim::Device device(devsim::k20c());
  DeviceSgd sgd(train, o, device);
  const Matrix x0 = sgd.x();
  sgd.run();
  EXPECT_EQ(sgd.x(), x0);
  EXPECT_GT(sgd.modeled_seconds(), 0.0);
}

TEST(DeviceSgd, SameAccountingAcrossDevicesDifferentTime) {
  const Coo train = testing::random_coo(80, 80, 0.1, 103);
  DeviceSgdOptions o = opts();
  o.functional = false;

  devsim::Device gpu(devsim::k20c());
  DeviceSgd a(train, o, gpu);
  a.run_epoch();
  devsim::Device cpu(devsim::xeon_e5_2670_dual());
  DeviceSgd b(train, o, cpu);
  b.run_epoch();

  // Identical recorded work, different modeled cost.
  EXPECT_NE(a.modeled_seconds(), b.modeled_seconds());
}

TEST(DeviceSgd, InvalidOptionsRejected) {
  const Coo train = testing::random_coo(10, 10, 0.2, 104);
  devsim::Device device(devsim::k20c());
  DeviceSgdOptions bad = opts();
  bad.k = 0;
  EXPECT_THROW(DeviceSgd(train, bad, device), Error);
  bad = opts();
  bad.learning_rate = 0.0f;
  EXPECT_THROW(DeviceSgd(train, bad, device), Error);
}

}  // namespace
}  // namespace alsmf
