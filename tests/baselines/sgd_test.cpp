#include "baselines/sgd.hpp"

#include <gtest/gtest.h>

#include "als/metrics.hpp"
#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

SgdOptions opts() {
  SgdOptions o;
  o.k = 6;
  o.epochs = 10;
  o.learning_rate = 0.02f;
  o.seed = 3;
  return o;
}

TEST(Sgd, RmseDecreasesOverEpochs) {
  const Coo train = testing::random_coo(200, 150, 0.05, 40);
  const SgdResult r = sgd_train(train, opts());
  ASSERT_EQ(r.epoch_rmse.size(), 10u);
  EXPECT_LT(r.epoch_rmse.back(), r.epoch_rmse.front());
}

TEST(Sgd, FitsPlantedData) {
  SyntheticSpec spec;
  spec.users = 300;
  spec.items = 200;
  spec.nnz = 15000;
  spec.planted_rank = 3;
  spec.noise = 0.05;
  spec.integer_ratings = false;
  const Coo train = generate_synthetic(spec);
  SgdOptions o = opts();
  o.epochs = 30;
  const SgdResult r = sgd_train(train, o);
  EXPECT_LT(r.epoch_rmse.back(), 0.4);
}

TEST(Sgd, SingleThreadDeterministic) {
  const Coo train = testing::random_coo(50, 50, 0.1, 41);
  SgdOptions o = opts();
  o.hogwild = false;
  ThreadPool pool(1);
  const SgdResult a = sgd_train(train, o, &pool);
  const SgdResult b = sgd_train(train, o, &pool);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST(Sgd, HogwildConvergesLikeSequential) {
  const Coo train = testing::random_coo(150, 100, 0.08, 42);
  SgdOptions seq = opts();
  seq.hogwild = false;
  SgdOptions par = opts();
  par.hogwild = true;
  const SgdResult a = sgd_train(train, seq);
  const SgdResult b = sgd_train(train, par);
  // Lock-free races perturb the trajectory but not the outcome quality.
  EXPECT_NEAR(a.epoch_rmse.back(), b.epoch_rmse.back(), 0.15);
}

TEST(Sgd, ShapesMatchInput) {
  const Coo train = testing::random_coo(30, 20, 0.2, 43);
  const SgdResult r = sgd_train(train, opts());
  EXPECT_EQ(r.x.rows(), 30);
  EXPECT_EQ(r.y.rows(), 20);
  EXPECT_EQ(r.x.cols(), 6);
}

TEST(Sgd, InvalidKRejected) {
  const Coo train = testing::random_coo(10, 10, 0.2, 44);
  SgdOptions o = opts();
  o.k = 0;
  EXPECT_THROW(sgd_train(train, o), Error);
}

}  // namespace
}  // namespace alsmf
