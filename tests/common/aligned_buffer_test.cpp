#include "common/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace alsmf {
namespace {

TEST(AlignedBuffer, DataIsCacheLineAligned) {
  for (std::size_t n : {1u, 7u, 64u, 1000u}) {
    aligned_vector<float> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % kDefaultAlignment, 0u);
  }
}

TEST(AlignedBuffer, BehavesLikeVector) {
  aligned_vector<int> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[99], 99);
  v.resize(10);
  EXPECT_EQ(v.size(), 10u);
}

TEST(AlignedBuffer, CopyAndCompare) {
  aligned_vector<double> a{1.0, 2.0, 3.0};
  aligned_vector<double> b = a;
  EXPECT_EQ(a, b);
}

TEST(AlignedBuffer, AllocatorEquality) {
  AlignedAllocator<float> a;
  AlignedAllocator<double> b;
  EXPECT_TRUE(a == b);
}

TEST(AlignedBuffer, ZeroSizeAllocate) {
  AlignedAllocator<int> a;
  EXPECT_EQ(a.allocate(0), nullptr);
}

}  // namespace
}  // namespace alsmf
