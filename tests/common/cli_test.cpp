#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace alsmf {
namespace {

CliArgs make(std::initializer_list<const char*> argv) {
  std::vector<const char*> v(argv);
  return CliArgs(static_cast<int>(v.size()), v.data());
}

TEST(Cli, ParsesSpaceSeparatedValue) {
  auto args = make({"prog", "--k", "16"});
  EXPECT_EQ(args.get_long("k", 0), 16);
}

TEST(Cli, ParsesEqualsForm) {
  auto args = make({"prog", "--lambda=0.25"});
  EXPECT_DOUBLE_EQ(args.get_double("lambda", 0), 0.25);
}

TEST(Cli, BooleanFlag) {
  auto args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.has_flag("verbose"));
  EXPECT_FALSE(args.has_flag("quiet"));
}

TEST(Cli, FlagFollowedByFlag) {
  auto args = make({"prog", "--a", "--b", "7"});
  EXPECT_TRUE(args.has_flag("a"));
  EXPECT_EQ(args.get_long("b", 0), 7);
}

TEST(Cli, DefaultsWhenAbsent) {
  auto args = make({"prog"});
  EXPECT_EQ(args.get_or("name", "fallback"), "fallback");
  EXPECT_EQ(args.get_long("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(Cli, PositionalArguments) {
  auto args = make({"prog", "input.txt", "--k", "3", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
}

TEST(Cli, ProgramName) {
  auto args = make({"myprog"});
  EXPECT_EQ(args.program(), "myprog");
}

TEST(Cli, LastValueWins) {
  auto args = make({"prog", "--k", "1", "--k", "2"});
  EXPECT_EQ(args.get_long("k", 0), 2);
}

}  // namespace
}  // namespace alsmf
