#include "common/error.hpp"

#include <gtest/gtest.h>

#include <string>

namespace alsmf {
namespace {

TEST(Error, CheckPassesOnTrue) { EXPECT_NO_THROW(ALSMF_CHECK(1 + 1 == 2)); }

TEST(Error, CheckThrowsOnFalse) {
  EXPECT_THROW(ALSMF_CHECK(false), Error);
}

TEST(Error, MessageContainsExpressionAndLocation) {
  try {
    ALSMF_CHECK_MSG(2 > 3, "custom context");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("custom context"), std::string::npos);
    EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
  }
}

TEST(Error, IsRuntimeError) {
  EXPECT_THROW(ALSMF_CHECK(false), std::runtime_error);
}

}  // namespace
}  // namespace alsmf
