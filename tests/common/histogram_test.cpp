#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace alsmf {
namespace {

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, ExactStatsAreExact) {
  Histogram h;
  for (const double v : {10.0, 20.0, 30.0, 40.0}) h.add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 100.0);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0);
  EXPECT_DOUBLE_EQ(h.min(), 10.0);
  EXPECT_DOUBLE_EQ(h.max(), 40.0);
}

TEST(Histogram, PercentilesApproximateWithinBucketResolution) {
  Histogram h(1.0, 1.25, 96);
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  // A log-bucketed histogram with 25% growth should nail percentiles to
  // ~±1 bucket (25% relative error).
  EXPECT_NEAR(h.percentile(0.50), 500.0, 150.0);
  EXPECT_NEAR(h.percentile(0.95), 950.0, 250.0);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 260.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
  // p0 resolves to the recorded minimum.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(Histogram, PercentileMonotoneInP) {
  Histogram h;
  for (int i = 0; i < 500; ++i) h.add(0.37 * i + 1.0);
  double last = -1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double v = h.percentile(p);
    EXPECT_GE(v, last);
    last = v;
  }
}

TEST(Histogram, SingleValueHasDegeneratePercentiles) {
  Histogram h;
  h.add(42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 42.0);
}

TEST(Histogram, UnderflowAndOverflowAreCaptured) {
  Histogram h(10.0, 2.0, 4);  // buckets cover [10, 160); beyond → overflow
  h.add(0.001);
  h.add(1e9);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e9);
}

TEST(Histogram, NegativeAndNanClampToZero) {
  Histogram h;
  h.add(-5.0);
  h.add(std::nan(""));
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(Histogram, MergeCombinesCountsAndExtremes) {
  Histogram a, b;
  a.add(1.0);
  a.add(2.0);
  b.add(100.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 100.0);
  EXPECT_DOUBLE_EQ(a.sum(), 103.0);
}

TEST(Histogram, MergeRejectsDifferentLayouts) {
  Histogram a(1.0, 1.25, 96);
  Histogram b(1.0, 2.0, 96);
  EXPECT_THROW(a.merge(b), Error);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(5.0);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, SummaryJsonHasKeys) {
  Histogram h;
  h.add(3.0);
  const std::string json = h.summary_json();
  for (const char* key : {"\"count\":", "\"mean\":", "\"p50\":", "\"p99\":",
                          "\"max\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace alsmf
