#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace alsmf::json {
namespace {

TEST(JsonWriter, ObjectsArraysAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.field("a", 1);
  w.field("b", "two");
  w.key("c").begin_array();
  w.value(1.5).value(true).null();
  w.end_array();
  w.key("d").begin_object().end_object();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":\"two\",\"c\":[1.5,true,null],\"d\":{}}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.field("k\"1", "a\\b\n\t\x01");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\\\"1\":\"a\\\\b\\n\\t\\u0001\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(0.5);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,0.5]");
}

TEST(JsonWriter, IntegerWidths) {
  JsonWriter w;
  w.begin_array();
  w.value(static_cast<std::uint64_t>(18446744073709551615ull));
  w.value(static_cast<long long>(-9007199254740993ll));
  w.value(42);  // plain int goes through the template overload
  w.end_array();
  EXPECT_EQ(w.str(), "[18446744073709551615,-9007199254740993,42]");
}

TEST(JsonWriter, RawSplicesFragments) {
  JsonWriter inner;
  inner.begin_object().field("x", 1).end_object();
  JsonWriter w;
  w.begin_object();
  w.field_raw("nested", inner.str());
  w.key("list").begin_array().raw("{\"y\":2}").end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\"nested\":{\"x\":1},\"list\":[{\"y\":2}]}");
}

TEST(JsonParse, RoundTripsWhatWeWrite) {
  const std::string doc =
      "{\"a\":1,\"b\":[true,false,null,\"s\\n\"],\"c\":{\"d\":-2.5e2}}";
  const Value root = parse(doc);
  ASSERT_TRUE(root.is_object());
  EXPECT_DOUBLE_EQ(root.at("a").as_double(), 1.0);
  const auto& arr = root.at("b").array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_FALSE(arr[1].as_bool());
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_EQ(arr[3].as_string(), "s\n");
  EXPECT_DOUBLE_EQ(root.at("c").at("d").as_double(), -250.0);
  EXPECT_EQ(root.find("missing"), nullptr);
  EXPECT_THROW(root.at("missing"), Error);
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), Error);
  EXPECT_THROW(parse("{"), Error);
  EXPECT_THROW(parse("{\"a\":}"), Error);
  EXPECT_THROW(parse("[1,]"), Error);
  EXPECT_THROW(parse("{} trailing"), Error);
  EXPECT_THROW(parse("\"unterminated"), Error);
}

}  // namespace
}  // namespace alsmf::json
