#include <gtest/gtest.h>

#include <thread>

#include "common/log.hpp"
#include "common/timer.hpp"

namespace alsmf {
namespace {

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(t.millis(), t.seconds() * 1000.0, t.millis() * 0.5);
}

TEST(Timer, ResetRestarts) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  t.reset();
  EXPECT_LT(t.seconds(), 0.01);
}

TEST(Accumulator, SumsIntervals) {
  Accumulator acc;
  for (int i = 0; i < 3; ++i) {
    acc.start();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    acc.stop();
  }
  EXPECT_EQ(acc.count(), 3);
  EXPECT_GE(acc.total_seconds(), 0.010);
  acc.reset();
  EXPECT_EQ(acc.count(), 0);
  EXPECT_DOUBLE_EQ(acc.total_seconds(), 0.0);
}

TEST(Log, ThresholdFiltersLevels) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  // Below-threshold messages are dropped without formatting side effects.
  log_info("this should be suppressed ", 42);
  log_warn("also suppressed");
  set_log_threshold(before);
}

TEST(Log, EmitsAboveThreshold) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kDebug);
  // Just exercise the emit path (writes to stderr; no crash, thread-safe).
  log_debug("debug message ", 1);
  log_info("info message ", 2.5);
  log(LogLevel::kError, "error message");
  set_log_threshold(before);
}

}  // namespace
}  // namespace alsmf
