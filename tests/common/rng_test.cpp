#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace alsmf {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(42);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, BoundedZeroThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.bounded(0), Error);
}

TEST(Rng, BoundedRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[rng.bounded(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(5);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(77);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitmixAdvancesState) {
  std::uint64_t s = 1;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SamplesInRange) {
  const double alpha = GetParam();
  ZipfSampler zipf(100, alpha);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf(rng), 100u);
  }
}

TEST_P(ZipfTest, HeadHeavierThanTail) {
  const double alpha = GetParam();
  ZipfSampler zipf(1000, alpha);
  Rng rng(3);
  int head = 0, tail = 0;
  for (int i = 0; i < 50000; ++i) {
    const auto r = zipf(rng);
    if (r < 100) ++head;
    if (r >= 900) ++tail;
  }
  // The first decile must receive strictly more mass than the last.
  EXPECT_GT(head, 2 * tail);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

TEST(Zipf, RankZeroMostPopular) {
  ZipfSampler zipf(50, 1.0);
  Rng rng(13);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  const auto top = std::max_element(counts.begin(), counts.end());
  EXPECT_EQ(top - counts.begin(), 0);
}

TEST(Zipf, InvalidParamsThrow) {
  EXPECT_THROW(ZipfSampler(0, 1.0), Error);
  EXPECT_THROW(ZipfSampler(10, 0.0), Error);
}

}  // namespace
}  // namespace alsmf
