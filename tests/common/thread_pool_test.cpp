#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <numeric>
#include <vector>

#include "common/error.hpp"

namespace alsmf {
namespace {

TEST(ThreadPool, CoversFullRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
  pool.parallel_for(7, 3, [&](std::size_t, std::size_t, unsigned) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, DegenerateRangesAreContractNotLuck) {
  // The serve batcher submits whatever range the drained batch produced,
  // including zero fold-ins and (begin, end) pairs computed by subtraction
  // that can invert. All of these must be silent no-ops.
  ThreadPool pool(3);
  std::atomic<int> calls{0};
  const auto count = [&](std::size_t, std::size_t, unsigned) { calls++; };
  pool.parallel_for(0, 0, count);
  pool.parallel_for(std::size_t{1} << 60, (std::size_t{1} << 60) - 5, count);
  pool.parallel_for(std::numeric_limits<std::size_t>::max(), 0, count);
  EXPECT_EQ(calls.load(), 0);
  // And the pool is still fully functional afterwards.
  pool.parallel_for(0, 10, count);
  EXPECT_GT(calls.load(), 0);
}

TEST(ThreadPool, SingleElementRunsInline) {
  ThreadPool pool(4);
  unsigned worker = 99;
  pool.parallel_for(3, 4, [&](std::size_t b, std::size_t e, unsigned w) {
    EXPECT_EQ(b, 3u);
    EXPECT_EQ(e, 4u);
    worker = w;
  });
  EXPECT_EQ(worker, 0u);
}

TEST(ThreadPool, WorkerIndexWithinBounds) {
  ThreadPool pool(3);
  std::atomic<bool> ok{true};
  pool.parallel_for(0, 500, [&](std::size_t, std::size_t, unsigned w) {
    if (w >= 3) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(ThreadPool, SumMatchesSequential) {
  ThreadPool pool(4);
  std::atomic<long> total{0};
  pool.parallel_for(1, 10001, [&](std::size_t b, std::size_t e, unsigned) {
    long local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
    total.fetch_add(local);
  });
  EXPECT_EQ(total.load(), 50005000L);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [&](std::size_t, std::size_t, unsigned) -> void {
                          throw Error("boom");
                        }),
      Error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(0, 100, [](std::size_t, std::size_t, unsigned) {
      throw Error("first");
    });
  } catch (const Error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t b, std::size_t e, unsigned) {
    count.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, DefaultSizePositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, GlobalSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, ManySequentialJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 64, [&](std::size_t b, std::size_t e, unsigned) {
      count.fetch_add(static_cast<int>(e - b));
    });
    ASSERT_EQ(count.load(), 64);
  }
}

}  // namespace
}  // namespace alsmf
