#include "data/datasets.hpp"

#include <gtest/gtest.h>

namespace alsmf {
namespace {

TEST(Datasets, TableOneValues) {
  const auto& all = table1_datasets();
  ASSERT_EQ(all.size(), 4u);
  // Exactly the numbers in the paper's Table I.
  EXPECT_EQ(all[0].abbr, "MVLE");
  EXPECT_EQ(all[0].users, 71567);
  EXPECT_EQ(all[0].items, 65133);
  EXPECT_EQ(all[0].nnz, 8000044);
  EXPECT_EQ(all[1].abbr, "NTFX");
  EXPECT_EQ(all[1].users, 480189);
  EXPECT_EQ(all[1].items, 17770);
  EXPECT_EQ(all[1].nnz, 99072112);
  EXPECT_EQ(all[2].abbr, "YMR1");
  EXPECT_EQ(all[2].users, 1948882);
  EXPECT_EQ(all[2].items, 98212);
  EXPECT_EQ(all[2].nnz, 115248575);
  EXPECT_EQ(all[3].abbr, "YMR4");
  EXPECT_EQ(all[3].users, 7642);
  EXPECT_EQ(all[3].items, 11916);
  EXPECT_EQ(all[3].nnz, 211231);
}

TEST(Datasets, LookupCaseInsensitive) {
  EXPECT_EQ(dataset_by_abbr("ntfx").users, 480189);
  EXPECT_EQ(dataset_by_abbr("NTFX").users, 480189);
  EXPECT_THROW(dataset_by_abbr("NOPE"), Error);
}

TEST(Datasets, ReplicaSpecScalesUsersLinearlyItemsBySqrt) {
  const auto& ntfx = dataset_by_abbr("NTFX");
  const SyntheticSpec s = replica_spec(ntfx, 64.0);
  EXPECT_NEAR(static_cast<double>(s.users), 480189.0 / 64, 1.0);
  EXPECT_NEAR(static_cast<double>(s.items), 17770.0 / 8, 1.0);
  EXPECT_NEAR(static_cast<double>(s.nnz), 99072112.0 / 64, 2.0);
}

TEST(Datasets, ReplicaDensityStaysBelowSaturation) {
  for (const auto& info : table1_datasets()) {
    for (double scale : {16.0, 64.0, 256.0}) {
      const SyntheticSpec s = replica_spec(info, scale);
      const double density = static_cast<double>(s.nnz) /
                             (static_cast<double>(s.users) *
                              static_cast<double>(s.items));
      EXPECT_LE(density, 0.5) << info.abbr << " scale " << scale;
    }
  }
}

TEST(Datasets, ReplicaPreservesMeanRowLength) {
  const auto& info = dataset_by_abbr("MVLE");
  const SyntheticSpec s = replica_spec(info, 128.0);
  const double full_mean =
      static_cast<double>(info.nnz) / static_cast<double>(info.users);
  const double replica_mean =
      static_cast<double>(s.nnz) / static_cast<double>(s.users);
  EXPECT_NEAR(replica_mean, full_mean, full_mean * 0.05);
}

TEST(Datasets, ScaleBelowOneRejected) {
  EXPECT_THROW(replica_spec(dataset_by_abbr("MVLE"), 0.5), Error);
}

TEST(Datasets, MakeReplicaProducesValidCsr) {
  const Csr csr = make_replica("YMR4", 8.0);
  EXPECT_TRUE(csr.check_invariants());
  EXPECT_NEAR(static_cast<double>(csr.rows()), 7642.0 / 8, 1.0);
  EXPECT_GT(csr.nnz(), 0);
}

TEST(Datasets, DifferentDatasetsGetDifferentSeeds) {
  // Same scale/seed input must still produce different data per dataset.
  const Csr a = make_replica("YMR4", 16.0, 42);
  const Csr b = make_replica("MVLE", 160.0, 42);
  EXPECT_NE(a.nnz(), b.nnz());
}

}  // namespace
}  // namespace alsmf
