#include "data/split.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(Split, HoldoutPartitionsAllEntries) {
  const Coo all = testing::random_coo(50, 40, 0.2, 3);
  auto [train, test] = split_holdout(all, 0.25, 7);
  EXPECT_EQ(train.nnz() + test.nnz(), all.nnz());
  EXPECT_EQ(train.rows(), all.rows());
  EXPECT_EQ(test.cols(), all.cols());
}

TEST(Split, HoldoutDisjoint) {
  const Coo all = testing::random_coo(30, 30, 0.3, 4);
  auto [train, test] = split_holdout(all, 0.3, 9);
  std::set<std::pair<index_t, index_t>> train_keys;
  for (const auto& t : train.entries()) train_keys.insert({t.row, t.col});
  for (const auto& t : test.entries()) {
    EXPECT_EQ(train_keys.count({t.row, t.col}), 0u);
  }
}

TEST(Split, HoldoutFractionApproximate) {
  const Coo all = testing::random_coo(100, 100, 0.3, 5);
  auto [train, test] = split_holdout(all, 0.2, 11);
  const double frac =
      static_cast<double>(test.nnz()) / static_cast<double>(all.nnz());
  EXPECT_NEAR(frac, 0.2, 0.05);
}

TEST(Split, HoldoutDeterministic) {
  const Coo all = testing::random_coo(40, 40, 0.2, 6);
  auto [t1, s1] = split_holdout(all, 0.5, 13);
  auto [t2, s2] = split_holdout(all, 0.5, 13);
  EXPECT_EQ(t1.entries(), t2.entries());
  EXPECT_EQ(s1.entries(), s2.entries());
}

TEST(Split, HoldoutZeroFraction) {
  const Coo all = testing::random_coo(20, 20, 0.2, 7);
  auto [train, test] = split_holdout(all, 0.0, 1);
  EXPECT_EQ(train.nnz(), all.nnz());
  EXPECT_EQ(test.nnz(), 0);
}

TEST(Split, LeaveOneOutOnePerMultiRow) {
  const Coo all = testing::random_coo(60, 60, 0.15, 8);
  auto [train, test] = split_leave_one_out(all, 21);
  EXPECT_EQ(train.nnz() + test.nnz(), all.nnz());

  // Count per-row entries in the original and the test set.
  std::map<index_t, int> orig_count, test_count;
  for (const auto& t : all.entries()) ++orig_count[t.row];
  for (const auto& t : test.entries()) ++test_count[t.row];
  for (const auto& [row, n] : orig_count) {
    if (n >= 2) {
      EXPECT_EQ(test_count[row], 1) << "row " << row;
    } else {
      EXPECT_EQ(test_count.count(row), 0u) << "row " << row;
    }
  }
}

TEST(Split, LeaveOneOutDeterministic) {
  const Coo all = testing::random_coo(25, 25, 0.3, 9);
  auto [t1, s1] = split_leave_one_out(all, 5);
  auto [t2, s2] = split_leave_one_out(all, 5);
  EXPECT_EQ(s1.entries(), s2.entries());
  EXPECT_EQ(t1.entries(), t2.entries());
}

}  // namespace
}  // namespace alsmf
