#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sparse/convert.hpp"
#include "sparse/stats.hpp"

namespace alsmf {
namespace {

SyntheticSpec small_spec() {
  SyntheticSpec spec;
  spec.users = 500;
  spec.items = 300;
  spec.nnz = 8000;
  spec.seed = 123;
  return spec;
}

TEST(Synthetic, ExactNnzAndShape) {
  const Coo coo = generate_synthetic(small_spec());
  EXPECT_EQ(coo.rows(), 500);
  EXPECT_EQ(coo.cols(), 300);
  EXPECT_EQ(coo.nnz(), 8000);
}

TEST(Synthetic, CanonicalAndDuplicateFree) {
  const Coo coo = generate_synthetic(small_spec());
  EXPECT_TRUE(coo.is_canonical());
}

TEST(Synthetic, DeterministicInSeed) {
  const Coo a = generate_synthetic(small_spec());
  const Coo b = generate_synthetic(small_spec());
  EXPECT_EQ(a.entries(), b.entries());
}

TEST(Synthetic, DifferentSeedsDiffer) {
  auto spec = small_spec();
  const Coo a = generate_synthetic(spec);
  spec.seed = 321;
  const Coo b = generate_synthetic(spec);
  EXPECT_NE(a.entries(), b.entries());
}

TEST(Synthetic, RatingsWithinScale) {
  const Coo coo = generate_synthetic(small_spec());
  for (const auto& t : coo.entries()) {
    EXPECT_GE(t.value, 1.0f);
    EXPECT_LE(t.value, 5.0f);
    EXPECT_FLOAT_EQ(t.value, std::round(t.value));  // integer stars
  }
}

TEST(Synthetic, NonIntegerRatingsWhenRequested) {
  auto spec = small_spec();
  spec.integer_ratings = false;
  const Coo coo = generate_synthetic(spec);
  bool any_fractional = false;
  for (const auto& t : coo.entries()) {
    if (t.value != std::round(t.value)) any_fractional = true;
  }
  EXPECT_TRUE(any_fractional);
}

TEST(Synthetic, RowLengthsAreSkewed) {
  auto spec = small_spec();
  spec.user_alpha = 1.0;
  const SliceStats s = row_stats(coo_to_csr(generate_synthetic(spec)));
  // Zipf rows: max well above mean, positive Gini.
  EXPECT_GT(s.imbalance, 3.0);
  EXPECT_GT(s.gini, 0.25);
}

TEST(Synthetic, HigherAlphaMoreSkew) {
  auto spec = small_spec();
  spec.user_alpha = 0.3;
  const double gini_low =
      row_stats(coo_to_csr(generate_synthetic(spec))).gini;
  spec.user_alpha = 1.3;
  const double gini_high =
      row_stats(coo_to_csr(generate_synthetic(spec))).gini;
  EXPECT_GT(gini_high, gini_low);
}

TEST(Synthetic, ItemPopularitySkewed) {
  auto spec = small_spec();
  spec.item_alpha = 1.1;
  const SliceStats s = col_stats(coo_to_csr(generate_synthetic(spec)));
  EXPECT_GT(s.imbalance, 2.0);
}

TEST(Synthetic, DenseRequestCapped) {
  SyntheticSpec spec;
  spec.users = 10;
  spec.items = 10;
  spec.nnz = 200;  // 2x all cells: must throw (unsatisfiable)
  EXPECT_THROW(generate_synthetic(spec), Error);
}

TEST(Synthetic, HalfDenseWorks) {
  SyntheticSpec spec;
  spec.users = 20;
  spec.items = 20;
  spec.nnz = 200;  // half the cells
  spec.seed = 5;
  const Coo coo = generate_synthetic(spec);
  EXPECT_EQ(coo.nnz(), 200);
  EXPECT_TRUE(coo.is_canonical());
}

TEST(Synthetic, CsrHelperMatches) {
  const Csr direct = generate_synthetic_csr(small_spec());
  const Csr via_coo = coo_to_csr(generate_synthetic(small_spec()));
  EXPECT_EQ(direct, via_coo);
}

TEST(Synthetic, PlantedStructureIsLearnable) {
  // Ratings from a planted low-rank model shouldn't look like pure noise:
  // the variance of ratings must exceed the injected noise alone.
  auto spec = small_spec();
  spec.noise = 0.1;
  const Coo coo = generate_synthetic(spec);
  double mean = 0;
  for (const auto& t : coo.entries()) mean += t.value;
  mean /= static_cast<double>(coo.nnz());
  double var = 0;
  for (const auto& t : coo.entries()) {
    var += (t.value - mean) * (t.value - mean);
  }
  var /= static_cast<double>(coo.nnz());
  EXPECT_GT(var, 0.05);  // structure present, not constant
}

}  // namespace
}  // namespace alsmf
