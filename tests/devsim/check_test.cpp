// Checked-execution mode: each finding class is provoked by a deliberately
// buggy kernel and must be reported with kernel/section/group/lane
// attribution; the matching correct kernel must stay clean.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "devsim/device.hpp"
#include "devsim/profile.hpp"

namespace alsmf::devsim {
namespace {

LaunchConfig validated(std::size_t groups = 1, int group_size = 4) {
  LaunchConfig config;
  config.num_groups = groups;
  config.group_size = group_size;
  config.functional = true;
  config.validate = true;
  return config;
}

bool has_kind(const check::CheckReport& report, check::FindingKind kind) {
  for (const auto& f : report.findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

const check::Finding& first_of(const check::CheckReport& report,
                               check::FindingKind kind) {
  for (const auto& f : report.findings) {
    if (f.kind == kind) return f;
  }
  throw Error("finding kind not present");
}

TEST(CheckedExecution, CleanKernelReportsClean) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(16, 0.0f);
  const auto result =
      device.launch("clean", validated(1, 4), [&](GroupCtx& ctx) {
        ctx.section("S1");
        auto g = ctx.global_span("out", out.data(), out.size());
        for (int lane = 0; lane < ctx.group_size(); ++lane) {
          ctx.set_lane(lane);
          g.write(static_cast<std::size_t>(lane), 1.0f);
        }
        ctx.global_write_coalesced(4.0 * ctx.group_size());
      });
  EXPECT_TRUE(result.check.clean()) << result.check.to_json();
  EXPECT_EQ(result.check.launches, 1u);
  EXPECT_EQ(out[3], 1.0f);
}

TEST(CheckedExecution, OutOfBoundsGlobalReportedAndSuppressed) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> buf(8, 7.0f);
  float read_back = -1.0f;
  const auto result =
      device.launch("oob_global", validated(), [&](GroupCtx& ctx) {
        ctx.section("S1");
        ctx.set_lane(2);
        auto g = ctx.global_span("buf", buf.data(), buf.size());
        read_back = g.read(buf.size() + 3);  // past the end
      });
  EXPECT_EQ(read_back, 0.0f);  // suppressed, default value
  ASSERT_TRUE(has_kind(result.check, check::FindingKind::kOutOfBoundsGlobal));
  const auto& f =
      first_of(result.check, check::FindingKind::kOutOfBoundsGlobal);
  EXPECT_EQ(f.kernel, "oob_global");
  EXPECT_EQ(f.section, "S1");
  EXPECT_EQ(f.buffer, "buf");
  EXPECT_EQ(f.group, 0u);
  EXPECT_EQ(f.lane, 2);
  EXPECT_EQ(f.index, static_cast<long long>(buf.size() + 3));
}

TEST(CheckedExecution, OutOfBoundsLocalReported) {
  Device device(k20c());
  const auto result =
      device.launch("oob_local", validated(), [&](GroupCtx& ctx) {
        ctx.section("S2");
        auto tile = ctx.local_alloc<float>(8, "tile");
        tile.write(8, 1.0f);  // one past the end
      });
  ASSERT_TRUE(has_kind(result.check, check::FindingKind::kOutOfBoundsLocal));
  const auto& f = first_of(result.check, check::FindingKind::kOutOfBoundsLocal);
  EXPECT_EQ(f.buffer, "tile");
  EXPECT_EQ(f.section, "S2");
}

TEST(CheckedExecution, IntraGroupWriteWriteRaceReported) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(4, 0.0f);
  const auto result = device.launch("ww_race", validated(), [&](GroupCtx& ctx) {
    ctx.section("S1");
    auto g = ctx.global_span("out", out.data(), out.size());
    ctx.set_lane(0);
    g.write(0, 1.0f);
    ctx.set_lane(1);
    g.write(0, 2.0f);  // same element, no barrier
  });
  ASSERT_TRUE(has_kind(result.check, check::FindingKind::kIntraGroupRace));
  const auto& f = first_of(result.check, check::FindingKind::kIntraGroupRace);
  EXPECT_EQ(f.lane, 1);  // attributed to the access that completed the race
  EXPECT_NE(f.detail.find("lane 0"), std::string::npos);
  EXPECT_NE(f.detail.find("group_barrier"), std::string::npos);
}

TEST(CheckedExecution, BarrierSeparatesLanes) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(4, 0.0f);
  const auto result =
      device.launch("barriered", validated(), [&](GroupCtx& ctx) {
        auto g = ctx.global_span("out", out.data(), out.size());
        ctx.set_lane(0);
        g.write(0, 1.0f);
        ctx.group_barrier();
        ctx.set_lane(1);
        g.write(0, 2.0f);  // ordered by the barrier
      });
  EXPECT_TRUE(result.check.clean()) << result.check.to_json();
}

TEST(CheckedExecution, ReadWriteRaceReported) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(4, 0.0f);
  const auto result = device.launch("rw_race", validated(), [&](GroupCtx& ctx) {
    auto g = ctx.global_span("out", out.data(), out.size());
    ctx.set_lane(0);
    (void)g.read(1);
    ctx.set_lane(3);
    g.write(1, 2.0f);  // writes what lane 0 read, same epoch
  });
  EXPECT_TRUE(has_kind(result.check, check::FindingKind::kIntraGroupRace));
}

TEST(CheckedExecution, ReadReadNeverRaces) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(4, 0.0f);
  const auto result =
      device.launch("read_read", validated(), [&](GroupCtx& ctx) {
        auto g = ctx.global_span("out", out.data(), out.size());
        for (int lane = 0; lane < ctx.group_size(); ++lane) {
          ctx.set_lane(lane);
          (void)g.read(0);
        }
      });
  EXPECT_TRUE(result.check.clean()) << result.check.to_json();
}

TEST(CheckedExecution, SameLaneIsProgramOrder) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(4, 0.0f);
  const auto result =
      device.launch("one_lane", validated(), [&](GroupCtx& ctx) {
        auto g = ctx.global_span("out", out.data(), out.size());
        ctx.set_lane(0);
        g.write(0, 1.0f);
        g.write(0, 2.0f);
        (void)g.read(0);
      });
  EXPECT_TRUE(result.check.clean()) << result.check.to_json();
}

TEST(CheckedExecution, CrossGroupRaceReported) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(4, 0.0f);
  const auto result =
      device.launch("xg_race", validated(3, 4), [&](GroupCtx& ctx) {
        auto g = ctx.global_span("out", out.data(), out.size());
        ctx.set_lane(0);
        g.write(0, static_cast<float>(ctx.group_id()));  // all groups hit [0]
      });
  ASSERT_TRUE(has_kind(result.check, check::FindingKind::kCrossGroupRace));
  const auto& f = first_of(result.check, check::FindingKind::kCrossGroupRace);
  EXPECT_NE(f.detail.find("no inter-group ordering"), std::string::npos);
}

TEST(CheckedExecution, LocalMemoryIsGroupPrivate) {
  Device device(k20c());
  const auto result =
      device.launch("local_priv", validated(3, 4), [&](GroupCtx& ctx) {
        // Every group writes offset 0 of its own arena; the arena resets per
        // group, so this is NOT a cross-group race.
        auto tile = ctx.local_alloc<float>(8, "tile");
        ctx.set_lane(0);
        tile.write(0, 1.0f);
      });
  EXPECT_TRUE(result.check.clean()) << result.check.to_json();
}

TEST(CheckedExecution, StaleLocalSpanReported) {
  Device device(k20c());
  check::LocalSpan<float> stash;  // a kernel bug: stashing scratch-pad
  const auto result =
      device.launch("stale", validated(2, 4), [&](GroupCtx& ctx) {
        if (ctx.group_id() == 0) {
          stash = ctx.local_alloc<float>(8, "stash");
          stash.write(0, 1.0f);
        } else {
          stash.write(0, 2.0f);  // group 0's arena slot: dangling
        }
      });
  ASSERT_TRUE(has_kind(result.check, check::FindingKind::kStaleLocalSpan));
  const auto& f = first_of(result.check, check::FindingKind::kStaleLocalSpan);
  EXPECT_EQ(f.buffer, "stash");
  EXPECT_EQ(f.group, 1u);
}

TEST(CheckedExecution, CounterUnderReportFlagged) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> big(32768, 1.0f);  // 128 KiB touched, nothing recorded
  const auto result =
      device.launch("silent", validated(), [&](GroupCtx& ctx) {
        auto g = ctx.global_span("big", big.data(), big.size());
        g.mark_read(0, big.size());
      });
  ASSERT_TRUE(has_kind(result.check, check::FindingKind::kCounterUnderReport));
  const auto& f =
      first_of(result.check, check::FindingKind::kCounterUnderReport);
  EXPECT_EQ(f.buffer, "global");
  EXPECT_NE(f.detail.find("under-reported"), std::string::npos);
  EXPECT_GE(result.check.touched_global_bytes, 131072.0);
}

TEST(CheckedExecution, HonestCountersPass) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> big(32768, 1.0f);
  const auto result =
      device.launch("honest", validated(), [&](GroupCtx& ctx) {
        auto g = ctx.global_span("big", big.data(), big.size());
        g.mark_read(0, big.size());
        ctx.global_read_coalesced(4.0 * big.size());
      });
  EXPECT_TRUE(result.check.clean()) << result.check.to_json();
}

TEST(CheckedExecution, DeviceElementBytesScalesHonestyAccounting) {
  // Host int64 column indices modeled as 32-bit on device: recording the
  // modeled 4 bytes/element must satisfy honesty even though the host
  // accessors touch 8 bytes/element.
  Device device(xeon_e5_2670_dual());
  std::vector<long long> cols(32768, 0);
  const auto result =
      device.launch("narrow", validated(), [&](GroupCtx& ctx) {
        auto g = ctx.global_span("cols", cols.data(), cols.size(), 4);
        g.mark_read(0, cols.size());
        ctx.global_read_coalesced(4.0 * cols.size());
      });
  EXPECT_TRUE(result.check.clean()) << result.check.to_json();
  EXPECT_NEAR(result.check.touched_global_bytes, 4.0 * cols.size(), 1.0);
}

TEST(CheckedExecution, CounterOverReportFlagged) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> small(4, 1.0f);
  const auto result =
      device.launch("inflated", validated(), [&](GroupCtx& ctx) {
        auto g = ctx.global_span("small", small.data(), small.size());
        g.mark_read(0, small.size());
        ctx.global_read_coalesced(1.0e7);  // runaway accounting formula
      });
  ASSERT_TRUE(has_kind(result.check, check::FindingKind::kCounterOverReport));
  EXPECT_EQ(first_of(result.check, check::FindingKind::kCounterOverReport)
                .buffer,
            "total");
}

TEST(CheckedExecution, FindingsDedupedButAllCounted) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(64, 0.0f);
  const auto result = device.launch("noisy", validated(), [&](GroupCtx& ctx) {
    auto g = ctx.global_span("out", out.data(), out.size());
    for (std::size_t i = 0; i < out.size(); ++i) {
      ctx.set_lane(0);
      g.write(i, 1.0f);
      ctx.set_lane(1);
      g.write(i, 2.0f);  // one race per element, same (kind,buffer,section)
    }
  });
  std::size_t races = 0;
  for (const auto& f : result.check.findings) {
    if (f.kind == check::FindingKind::kIntraGroupRace) ++races;
  }
  EXPECT_EQ(races, 1u);  // one representative finding
  EXPECT_GE(result.check.total_findings, out.size());  // every byte counted
}

TEST(CheckedExecution, ValidateRequiresFunctional) {
  Device device(xeon_e5_2670_dual());
  LaunchConfig config = validated();
  config.functional = false;
  EXPECT_THROW(device.launch("bad", config, [](GroupCtx&) {}), Error);
}

TEST(CheckedExecution, UncheckedSpansStillBoundsCheck) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> buf(8, 0.0f);
  LaunchConfig config;
  config.num_groups = 1;
  config.group_size = 4;
  EXPECT_THROW(device.launch("plain", config,
                             [&](GroupCtx& ctx) {
                               auto g = ctx.global_span("buf", buf.data(),
                                                        buf.size());
                               g.write(buf.size(), 1.0f);
                             }),
               Error);
}

TEST(CheckedExecution, DeviceAccumulatesReportsAndResets) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(4, 0.0f);
  const auto racy = [&](GroupCtx& ctx) {
    auto g = ctx.global_span("out", out.data(), out.size());
    ctx.set_lane(0);
    g.write(0, 1.0f);
    ctx.set_lane(1);
    g.write(0, 2.0f);
  };
  device.launch("racy", validated(), racy);
  device.launch("racy", validated(), racy);
  EXPECT_EQ(device.check_report().launches, 2u);
  EXPECT_GE(device.check_report().total_findings, 2u);
  device.reset_check_report();
  EXPECT_TRUE(device.check_report().clean());
  EXPECT_EQ(device.check_report().launches, 0u);
}

TEST(CheckedExecution, JsonExportNamesTheFindingKind) {
  Device device(xeon_e5_2670_dual());
  std::vector<float> out(4, 0.0f);
  const auto result = device.launch("json", validated(), [&](GroupCtx& ctx) {
    ctx.section("S1");
    auto g = ctx.global_span("out", out.data(), out.size());
    ctx.set_lane(0);
    g.write(0, 1.0f);
    ctx.set_lane(1);
    g.write(0, 2.0f);
  });
  const std::string json = result.check.to_json();
  EXPECT_NE(json.find("intra_group_race"), std::string::npos);
  EXPECT_NE(json.find("\"total_findings\""), std::string::npos);
  EXPECT_NE(json.find("\"section\":\"S1\""), std::string::npos);
}

TEST(CheckedExecution, ValidateDoesNotChangeCountersOrTime) {
  std::vector<float> out(64, 0.0f);
  auto kernel = [&](GroupCtx& ctx) {
    ctx.section("S1");
    auto g = ctx.global_span("out", out.data(), out.size());
    for (int lane = 0; lane < ctx.group_size(); ++lane) {
      ctx.set_lane(lane);
      g.write(static_cast<std::size_t>(ctx.group_id()) * 8 +
                  static_cast<std::size_t>(lane),
              1.0f);
    }
    ctx.ops_scalar(128.0);
    ctx.global_write_coalesced(32.0);
  };
  Device plain(k20c());
  LaunchConfig config;
  config.num_groups = 4;
  config.group_size = 8;
  const auto base = plain.launch("k", config, kernel);
  Device checked(k20c());
  config.validate = true;
  const auto val = checked.launch("k", config, kernel);
  EXPECT_TRUE(val.check.clean()) << val.check.to_json();
  EXPECT_DOUBLE_EQ(base.counters.lane_ops_scalar, val.counters.lane_ops_scalar);
  EXPECT_DOUBLE_EQ(base.counters.global_bytes, val.counters.global_bytes);
  EXPECT_DOUBLE_EQ(base.time.total_s(), val.time.total_s());
}

// --- GroupCtx scratch-pad regressions (satellite of the checker work) ---

TEST(GroupCtxLocal, ZeroAllocIsEmptyAndFree) {
  Device device(k20c());
  LaunchConfig config;
  config.num_groups = 1;
  config.group_size = 4;
  device.launch("zero_alloc", config, [&](GroupCtx& ctx) {
    const std::size_t before = ctx.local_remaining();
    auto s = ctx.local_alloc<float>(0);
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_EQ(ctx.local_remaining(), before);  // no 64-byte slot burned
  });
}

TEST(GroupCtxLocal, CapacityMatchesProfile) {
  Device gpu(k20c());
  LaunchConfig config;
  config.num_groups = 1;
  config.group_size = 4;
  gpu.launch("cap_gpu", config, [&](GroupCtx& ctx) {
    EXPECT_EQ(ctx.local_capacity(), ctx.profile().local_mem_bytes);
    EXPECT_EQ(ctx.local_remaining(), ctx.local_capacity());
  });
  Device cpu(xeon_e5_2670_dual());
  cpu.launch("cap_cpu", config, [&](GroupCtx& ctx) {
    // No hardware scratch-pad: the documented 4 MiB emulation cap.
    EXPECT_EQ(ctx.local_capacity(), std::size_t{4} << 20);
  });
}

TEST(GroupCtxLocal, OverCapacityAllocationThrows) {
  Device device(k20c());
  LaunchConfig config;
  config.num_groups = 1;
  config.group_size = 4;
  EXPECT_THROW(
      device.launch("too_big", config,
                    [&](GroupCtx& ctx) {
                      (void)ctx.local_alloc<float>(ctx.local_capacity());
                    }),
      Error);
}

}  // namespace
}  // namespace alsmf::devsim
