#include "devsim/cost_model.hpp"

#include <gtest/gtest.h>

namespace alsmf::devsim {
namespace {

LaunchCounters base_counters() {
  LaunchCounters c;
  c.lane_ops_scalar = 1e9;
  c.global_bytes = 1e8;
  c.groups = 10000;
  c.launches = 1;
  c.group_size = 32;
  return c;
}

TEST(CostModel, ZeroCountersCostOnlyOverhead) {
  LaunchCounters c;
  c.launches = 1;
  const auto p = k20c();
  const TimeEstimate t = estimate_time(c, p);
  EXPECT_DOUBLE_EQ(t.compute_s, 0.0);
  EXPECT_DOUBLE_EQ(t.memory_s, 0.0);
  EXPECT_NEAR(t.overhead_s, p.launch_overhead_us * 1e-6, 1e-12);
}

TEST(CostModel, MoreOpsNeverFaster) {
  const auto p = xeon_e5_2670_dual();
  LaunchCounters a = base_counters();
  LaunchCounters b = a;
  b.lane_ops_scalar *= 2;
  EXPECT_GE(estimate_time(b, p).compute_s, estimate_time(a, p).compute_s);
}

TEST(CostModel, MoreTrafficNeverFaster) {
  const auto p = k20c();
  LaunchCounters a = base_counters();
  LaunchCounters b = a;
  b.global_bytes *= 3;
  EXPECT_GT(estimate_time(b, p).memory_s, estimate_time(a, p).memory_s);
}

TEST(CostModel, VectorOpsCheaperThanScalarWhenEfficiencyHigher) {
  const auto p = xeon_e5_2670_dual();  // vector_eff > scalar_eff
  LaunchCounters scalar = base_counters();
  LaunchCounters vectored = base_counters();
  vectored.lane_ops_scalar = 0;
  vectored.lane_ops_vector = scalar.lane_ops_scalar;
  EXPECT_LT(estimate_time(vectored, p).compute_s,
            estimate_time(scalar, p).compute_s);
}

TEST(CostModel, VectorOpsNeutralOnSimt) {
  const auto p = k20c();  // scalar_eff == vector_eff == 1
  LaunchCounters scalar = base_counters();
  LaunchCounters vectored = base_counters();
  vectored.lane_ops_scalar = 0;
  vectored.lane_ops_vector = scalar.lane_ops_scalar;
  EXPECT_DOUBLE_EQ(estimate_time(vectored, p).compute_s,
                   estimate_time(scalar, p).compute_s);
}

TEST(CostModel, ScatteredPaysFullTransactions) {
  const auto p = k20c();
  LaunchCounters c;
  c.scattered_accesses = 1000;
  c.scattered_useful_bytes = 4000;  // 4 useful bytes each
  EXPECT_DOUBLE_EQ(scattered_bytes_moved(c, p),
                   1000 * p.scattered_transaction_bytes);
}

TEST(CostModel, WideScatteredAccessStreams) {
  const auto p = k20c();
  LaunchCounters c;
  c.scattered_accesses = 10;
  c.scattered_useful_bytes = 10 * 4096;  // wider than a transaction
  EXPECT_DOUBLE_EQ(scattered_bytes_moved(c, p), 10 * 4096.0);
}

TEST(CostModel, ScatteredCostsMoreThanCoalescedSameUsefulBytes) {
  const auto p = k20c();
  LaunchCounters coalesced;
  coalesced.global_bytes = 4e6;
  coalesced.launches = 1;
  LaunchCounters scattered;
  scattered.scattered_accesses = 1e6;
  scattered.scattered_useful_bytes = 4e6;
  scattered.launches = 1;
  EXPECT_GT(estimate_time(scattered, p).memory_s,
            estimate_time(coalesced, p).memory_s);
}

TEST(CostModel, LocalTrafficCheaperThanGlobal) {
  const auto p = k20c();
  LaunchCounters global;
  global.global_bytes = 1e9;
  LaunchCounters local;
  local.local_bytes = 1e9;
  EXPECT_LT(estimate_time(local, p).memory_s,
            estimate_time(global, p).memory_s);
}

TEST(CostModel, SpillAddsBothIssueAndTraffic) {
  const auto p = k20c();
  LaunchCounters a = base_counters();
  LaunchCounters b = a;
  b.spill_bytes = 1e9;
  const auto ta = estimate_time(a, p);
  const auto tb = estimate_time(b, p);
  EXPECT_GT(tb.compute_s, ta.compute_s);
  EXPECT_GT(tb.memory_s, ta.memory_s);
}

TEST(CostModel, SmallLaunchHasWorseUtilization) {
  const auto p = k20c();
  LaunchCounters big = base_counters();
  LaunchCounters small = base_counters();
  small.groups = 4;  // far below 13 SMs x 16 groups
  EXPECT_GT(estimate_time(small, p).compute_s,
            estimate_time(big, p).compute_s);
}

TEST(CostModel, CountersScaleLinearly) {
  const auto p = xeon_phi_31sp();
  LaunchCounters c = base_counters();
  c.scattered_accesses = 5e6;
  c.scattered_useful_bytes = 2e7;
  c.local_bytes = 3e8;
  const auto t1 = estimate_time(c, p);
  const auto t2 = estimate_time(c.scaled(2.0), p);
  EXPECT_NEAR(t2.compute_s, 2.0 * t1.compute_s, 1e-9);
  EXPECT_NEAR(t2.memory_s, 2.0 * t1.memory_s, 1e-9);
}

TEST(CostModel, TotalIsOverheadPlusMax) {
  TimeEstimate t;
  t.compute_s = 2.0;
  t.memory_s = 3.0;
  t.overhead_s = 0.5;
  EXPECT_DOUBLE_EQ(t.total_s(), 3.5);
}

TEST(Counters, MergeAccumulates) {
  LaunchCounters a = base_counters();
  LaunchCounters b = base_counters();
  b.register_demand_peak = 99;
  a += b;
  EXPECT_DOUBLE_EQ(a.lane_ops_scalar, 2e9);
  EXPECT_EQ(a.groups, 20000u);
  EXPECT_EQ(a.register_demand_peak, 99);
}

TEST(Counters, SectionsMergeByName) {
  SectionCounters s;
  s.at("S1").useful_flops = 5;
  s.at("S2").useful_flops = 7;
  s.at("S1").useful_flops += 1;
  EXPECT_EQ(s.entries().size(), 2u);
  EXPECT_DOUBLE_EQ(s.total().useful_flops, 13.0);

  SectionCounters other;
  other.at("S2").useful_flops = 10;
  other.at("S3").useful_flops = 1;
  s.merge(other);
  EXPECT_EQ(s.entries().size(), 3u);
  EXPECT_DOUBLE_EQ(s.total().useful_flops, 24.0);
}

}  // namespace
}  // namespace alsmf::devsim
