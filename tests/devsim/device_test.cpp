#include "devsim/device.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace alsmf::devsim {
namespace {

TEST(Device, RunsEveryGroupOnce) {
  Device device(xeon_e5_2670_dual());
  std::vector<std::atomic<int>> hits(100);
  LaunchConfig cfg{100, 8, true};
  device.launch("k", cfg, [&](GroupCtx& ctx) {
    hits[ctx.group_id()].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Device, MergesCountersAcrossGroups) {
  Device device(k20c());
  LaunchConfig cfg{50, 32, true};
  const auto result = device.launch("k", cfg, [](GroupCtx& ctx) {
    ctx.ops_scalar(10);
    ctx.global_read_coalesced(100);
  });
  EXPECT_DOUBLE_EQ(result.counters.lane_ops_scalar, 500.0);
  EXPECT_DOUBLE_EQ(result.counters.global_bytes, 5000.0);
  EXPECT_EQ(result.counters.groups, 50u);
  EXPECT_EQ(result.counters.launches, 1u);
}

TEST(Device, SectionsGetSeparateStats) {
  Device device(k20c());
  LaunchConfig cfg{10, 32, true};
  device.launch("update", cfg, [](GroupCtx& ctx) {
    ctx.section("S1");
    ctx.ops_scalar(100);
    ctx.section("S2");
    ctx.ops_scalar(50);
  });
  double s1 = 0, s2 = 0;
  for (const auto& [name, s] : device.stats()) {
    if (name == "update/S1") s1 = s.counters.lane_ops_scalar;
    if (name == "update/S2") s2 = s.counters.lane_ops_scalar;
  }
  EXPECT_DOUBLE_EQ(s1, 1000.0);
  EXPECT_DOUBLE_EQ(s2, 500.0);
}

TEST(Device, ModeledSecondsAccumulate) {
  Device device(k20c());
  LaunchConfig cfg{100, 32, true};
  auto kernel = [](GroupCtx& ctx) { ctx.ops_scalar(1e6); };
  device.launch("a", cfg, kernel);
  const double after_one = device.modeled_seconds();
  device.launch("a", cfg, kernel);
  EXPECT_NEAR(device.modeled_seconds(), 2 * after_one, after_one * 1e-9);
}

TEST(Device, ResetClearsStats) {
  Device device(k20c());
  device.launch("a", {10, 32, true}, [](GroupCtx& ctx) { ctx.ops_scalar(5); });
  EXPECT_GT(device.modeled_seconds(), 0.0);
  device.reset_stats();
  EXPECT_DOUBLE_EQ(device.modeled_seconds(), 0.0);
  EXPECT_TRUE(device.stats().empty());
}

TEST(Device, MatchingSumsSelectedSections) {
  Device device(k20c());
  device.launch("x", {10, 32, true}, [](GroupCtx& ctx) {
    ctx.section("S1");
    ctx.ops_scalar(1e6);
  });
  device.launch("y", {10, 32, true}, [](GroupCtx& ctx) {
    ctx.section("S2");
    ctx.ops_scalar(1e6);
  });
  EXPECT_GT(device.modeled_seconds_matching("/S1"), 0.0);
  EXPECT_DOUBLE_EQ(device.modeled_seconds_matching("/S3"), 0.0);
  EXPECT_NEAR(device.modeled_seconds_matching("/S1") +
                  device.modeled_seconds_matching("/S2"),
              device.modeled_seconds(), 1e-6);
}

TEST(GroupCtx, LocalAllocReturnsDistinctRegions) {
  Device device(k20c());
  device.launch("k", {1, 32, true}, [](GroupCtx& ctx) {
    auto a = ctx.local_alloc<float>(16);
    auto b = ctx.local_alloc<float>(16);
    ASSERT_NE(a.data(), b.data());
    a[0] = 1.0f;
    b[0] = 2.0f;
    EXPECT_FLOAT_EQ(a[0], 1.0f);  // no aliasing
  });
}

TEST(GroupCtx, LocalAllocEnforcesHardwareCapacity) {
  Device device(k20c());  // 48 KB scratch-pad
  EXPECT_THROW(device.launch("k", {1, 32, true},
                             [](GroupCtx& ctx) {
                               ctx.local_alloc<float>(20000);  // 80 KB
                             }),
               Error);
}

TEST(GroupCtx, EmulatedLocalHasLargerCapacity) {
  Device device(xeon_e5_2670_dual());
  EXPECT_NO_THROW(device.launch("k", {1, 8, true}, [](GroupCtx& ctx) {
    ctx.local_alloc<float>(100000);  // 400 KB, fine when emulated
  }));
}

TEST(GroupCtx, NumBundlesRoundsUp) {
  Device device(k20c());  // simd 32
  device.launch("k", {1, 48, true}, [](GroupCtx& ctx) {
    EXPECT_EQ(ctx.num_bundles(), 2);
  });
  device.launch("k", {1, 32, true}, [](GroupCtx& ctx) {
    EXPECT_EQ(ctx.num_bundles(), 1);
  });
  device.launch("k", {1, 8, true}, [](GroupCtx& ctx) {
    EXPECT_EQ(ctx.num_bundles(), 1);
  });
}

TEST(GroupCtx, FunctionalFlagPropagates) {
  Device device(k20c());
  device.launch("k", {1, 32, false}, [](GroupCtx& ctx) {
    EXPECT_FALSE(ctx.functional());
  });
  device.launch("k", {1, 32, true}, [](GroupCtx& ctx) {
    EXPECT_TRUE(ctx.functional());
  });
}

TEST(GroupCtx, RereadRoutesByProfile) {
  Device gpu(k20c());
  const auto r1 = gpu.launch("k", {1, 32, true}, [](GroupCtx& ctx) {
    ctx.reread(100, 4.0);
  });
  EXPECT_DOUBLE_EQ(r1.counters.scattered_accesses, 100.0);
  EXPECT_DOUBLE_EQ(r1.counters.local_bytes, 0.0);

  Device cpu(xeon_e5_2670_dual());
  const auto r2 = cpu.launch("k", {1, 8, true}, [](GroupCtx& ctx) {
    ctx.reread(100, 4.0);
  });
  EXPECT_DOUBLE_EQ(r2.counters.scattered_accesses, 0.0);
  EXPECT_DOUBLE_EQ(r2.counters.local_bytes, 400.0);
}

TEST(GroupCtx, PrivateArrayTrafficOnlySpillsOnGpu) {
  Device gpu(k20c());
  const auto r1 = gpu.launch("k", {1, 32, true}, [](GroupCtx& ctx) {
    ctx.private_array_traffic(256);
  });
  EXPECT_DOUBLE_EQ(r1.counters.spill_bytes, 256.0);

  Device cpu(xeon_e5_2670_dual());
  const auto r2 = cpu.launch("k", {1, 8, true}, [](GroupCtx& ctx) {
    ctx.private_array_traffic(256);
  });
  EXPECT_DOUBLE_EQ(r2.counters.spill_bytes, 0.0);
}

TEST(GroupCtx, OpsFlatScalesByMappingEfficiency) {
  Device cpu(xeon_e5_2670_dual());
  const auto p = cpu.profile();
  const auto r = cpu.launch("k", {1, 8, true}, [](GroupCtx& ctx) {
    ctx.ops_flat(1000);
  });
  EXPECT_NEAR(r.counters.lane_ops_scalar,
              1000 * p.scalar_efficiency / p.flat_mapping_efficiency, 1e-6);
}

TEST(Device, ZeroGroupLaunchIsValid) {
  Device device(k20c());
  const auto r = device.launch("k", {0, 32, true},
                               [](GroupCtx&) { FAIL() << "no groups"; });
  EXPECT_EQ(r.counters.groups, 0u);
}

}  // namespace
}  // namespace alsmf::devsim
