#include "devsim/faults.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/error.hpp"

namespace alsmf::devsim {
namespace {

using robust::FaultPlan;
using robust::FaultSite;
using robust::ScopedFaultInjector;
using robust::fault_key;

std::uint64_t fault_seed() {
  const char* env = std::getenv("ALSMF_FAULT_SEED");
  return env ? std::strtoull(env, nullptr, 10) : 42;
}

TEST(FaultModel, NoInjectorMeansHealthyFleet) {
  ASSERT_EQ(robust::installed_fault_injector(), nullptr);
  FaultModel model(4);
  for (std::size_t d = 0; d < 4; ++d) {
    for (int i = 0; i < 10; ++i) {
      const auto fault = model.on_launch(d);
      EXPECT_FALSE(fault.device_lost);
      EXPECT_DOUBLE_EQ(fault.slowdown, 1.0);
      EXPECT_FALSE(model.on_transfer_attempt(d));
    }
  }
  EXPECT_EQ(model.launch_occurrences(0), 10u);
  EXPECT_EQ(model.transfer_occurrences(3), 10u);
}

TEST(FaultModel, ValidatesConstruction) {
  EXPECT_THROW(FaultModel(0), Error);
  FaultModelOptions bad;
  bad.straggler_slowdown_min = 2.0;
  bad.straggler_slowdown_max = 1.5;
  EXPECT_THROW(FaultModel(2, bad), Error);
  FaultModelOptions below_one;
  below_one.straggler_slowdown_min = 0.5;
  EXPECT_THROW(FaultModel(2, below_one), Error);
}

TEST(FaultModel, DecisionsIndependentOfDeviceInterleaving) {
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.probability[static_cast<int>(FaultSite::kDeviceFailure)] = 0.1;
  plan.probability[static_cast<int>(FaultSite::kStraggler)] = 0.4;
  plan.probability[static_cast<int>(FaultSite::kLinkTransfer)] = 0.3;

  // Query device-major, then interleaved: every (device, occurrence) pair
  // must resolve identically regardless of global ordering.
  constexpr std::size_t kDevices = 3;
  constexpr int kOccurrences = 50;
  std::vector<std::vector<LaunchFault>> ordered(kDevices);
  std::vector<std::vector<bool>> ordered_xfer(kDevices);
  {
    ScopedFaultInjector scoped(plan);
    FaultModel model(kDevices);
    for (std::size_t d = 0; d < kDevices; ++d) {
      for (int i = 0; i < kOccurrences; ++i) {
        ordered[d].push_back(model.on_launch(d));
        ordered_xfer[d].push_back(model.on_transfer_attempt(d));
      }
    }
  }
  {
    ScopedFaultInjector scoped(plan);
    FaultModel model(kDevices);
    for (int i = 0; i < kOccurrences; ++i) {
      for (std::size_t d_ = kDevices; d_ > 0; --d_) {  // reversed order
        const std::size_t d = d_ - 1;
        const auto fault = model.on_launch(d);
        EXPECT_EQ(fault.device_lost, ordered[d][i].device_lost);
        EXPECT_DOUBLE_EQ(fault.slowdown, ordered[d][i].slowdown);
        EXPECT_EQ(model.on_transfer_attempt(d),
                  static_cast<bool>(ordered_xfer[d][i]));
      }
    }
  }
}

TEST(FaultModel, ExactKeyKillsOneDeviceLaunch) {
  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kDeviceFailure)] = {fault_key(1, 2)};
  ScopedFaultInjector scoped(plan);
  FaultModel model(3);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(model.on_launch(0).device_lost);
    const bool lost = model.on_launch(1).device_lost;
    EXPECT_EQ(lost, i == 2) << "occurrence " << i;
    EXPECT_FALSE(model.on_launch(2).device_lost);
  }
}

TEST(FaultModel, StragglerSlowdownStaysInRangeAndReplays) {
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.probability[static_cast<int>(FaultSite::kStraggler)] = 1.0;
  FaultModelOptions options;
  options.straggler_slowdown_min = 4.0;
  options.straggler_slowdown_max = 16.0;

  std::vector<double> first;
  {
    ScopedFaultInjector scoped(plan);
    FaultModel model(2, options);
    for (int i = 0; i < 40; ++i) {
      const auto fault = model.on_launch(i % 2);
      ASSERT_FALSE(fault.device_lost);
      EXPECT_GE(fault.slowdown, options.straggler_slowdown_min);
      EXPECT_LT(fault.slowdown, options.straggler_slowdown_max);
      first.push_back(fault.slowdown);
    }
  }
  // Severities replay bit-for-bit from the seed.
  {
    ScopedFaultInjector scoped(plan);
    FaultModel model(2, options);
    for (int i = 0; i < 40; ++i) {
      EXPECT_DOUBLE_EQ(model.on_launch(i % 2).slowdown,
                       first[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(FaultModel, DeviceFailureWinsOverStraggler) {
  FaultPlan plan;
  plan.probability[static_cast<int>(FaultSite::kDeviceFailure)] = 1.0;
  plan.probability[static_cast<int>(FaultSite::kStraggler)] = 1.0;
  ScopedFaultInjector scoped(plan);
  FaultModel model(1);
  const auto fault = model.on_launch(0);
  EXPECT_TRUE(fault.device_lost);
  EXPECT_DOUBLE_EQ(fault.slowdown, 1.0);  // a dead device never runs slow
}

}  // namespace
}  // namespace alsmf::devsim
