// Parameterized property sweeps over the cost model and the ALS kernels'
// accounting: invariants that must hold on every device profile and
// variant, independent of calibration constants.
#include <gtest/gtest.h>

#include <tuple>

#include "als/kernels.hpp"
#include "als/reference.hpp"
#include "als/solver.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

using devsim::DeviceProfile;

std::vector<DeviceProfile> all_profiles() {
  return {devsim::k20c(), devsim::xeon_e5_2670_dual(), devsim::xeon_phi_31sp()};
}

Csr sized_matrix(nnz_t nnz, std::uint64_t seed) {
  SyntheticSpec spec;
  spec.users = 256;
  spec.items = 200;
  spec.nnz = nnz;
  spec.seed = seed;
  return coo_to_csr(generate_synthetic(spec));
}

double modeled_time(const Csr& train, const AlsVariant& v,
                    const DeviceProfile& p, int k = 10, int ws = 32) {
  devsim::Device device(p);
  Matrix src(train.cols(), k, 0.1f);
  Matrix dst(train.rows(), k);
  UpdateArgs args;
  args.r = &train;
  args.src = &src;
  args.dst = &dst;
  args.lambda = 0.1f;
  args.k = k;
  args.variant = v;
  return launch_update(device, "u", args, 256, ws, false).time.total_s();
}

using ProfileVariant = std::tuple<int, unsigned>;  // profile idx, mask

class EveryProfileVariant : public ::testing::TestWithParam<ProfileVariant> {
 protected:
  DeviceProfile profile() const {
    return all_profiles()[static_cast<std::size_t>(std::get<0>(GetParam()))];
  }
  AlsVariant variant() const {
    return AlsVariant::from_mask(std::get<1>(GetParam()));
  }
};

TEST_P(EveryProfileVariant, MoreNonzerosNeverFaster) {
  const Csr small = sized_matrix(3000, 200);
  const Csr big = sized_matrix(12000, 200);
  EXPECT_LE(modeled_time(small, variant(), profile()),
            modeled_time(big, variant(), profile()) * (1 + 1e-9));
}

TEST_P(EveryProfileVariant, LargerKNeverFaster) {
  const Csr train = sized_matrix(6000, 201);
  EXPECT_LE(modeled_time(train, variant(), profile(), 5),
            modeled_time(train, variant(), profile(), 20) * (1 + 1e-9));
}

TEST_P(EveryProfileVariant, TimeIsStrictlyPositive) {
  const Csr train = sized_matrix(1000, 202);
  EXPECT_GT(modeled_time(train, variant(), profile()), 0.0);
}

TEST_P(EveryProfileVariant, DoublingBandwidthNeverHurts) {
  const Csr train = sized_matrix(8000, 203);
  DeviceProfile fast = profile();
  fast.mem_bw_gbs *= 2;
  fast.cache_bw_gbs *= 2;
  EXPECT_LE(modeled_time(train, variant(), fast),
            modeled_time(train, variant(), profile()) * (1 + 1e-9));
}

TEST_P(EveryProfileVariant, DoublingComputeUnitsNeverHurts) {
  const Csr train = sized_matrix(8000, 204);
  DeviceProfile fat = profile();
  fat.compute_units *= 2;
  EXPECT_LE(modeled_time(train, variant(), fat),
            modeled_time(train, variant(), profile()) * (1 + 1e-9));
}

TEST_P(EveryProfileVariant, GroupSize128NeverBeats32) {
  // The paper's Fig. 10: oversize groups only add resident-bundle padding.
  const Csr train = sized_matrix(8000, 205);
  EXPECT_LE(modeled_time(train, variant(), profile(), 10, 32),
            modeled_time(train, variant(), profile(), 10, 128) * (1 + 1e-9));
}

std::string sweep_name(const ::testing::TestParamInfo<ProfileVariant>& info) {
  static const char* const kDevices[3] = {"gpu", "cpu", "mic"};
  std::string name = std::string(kDevices[std::get<0>(info.param)]) + "_" +
                     AlsVariant::from_mask(std::get<1>(info.param)).name();
  for (char& c : name) {
    if (c == '+') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EveryProfileVariant,
    ::testing::Combine(::testing::Range(0, 3),
                       ::testing::Range(0u, AlsVariant::kVariantCount)),
    sweep_name);

TEST(ModelProperties, WarmStartConvergesFasterThanCold) {
  SyntheticSpec spec;
  spec.users = 150;
  spec.items = 100;
  spec.nnz = 6000;
  spec.planted_rank = 3;
  spec.noise = 0.1;
  spec.seed = 206;
  const Csr train = coo_to_csr(generate_synthetic(spec));
  AlsOptions o;
  o.k = 5;
  o.iterations = 6;

  // Cold model after 6 iterations.
  devsim::Device d1(devsim::k20c());
  AlsSolver cold(train, o, AlsVariant::batch_local_reg(), d1);
  cold.run({});
  const double cold_loss = cold.train_loss();

  // Warm start from the cold model: a single extra iteration must be at
  // least as good (ALS is monotone) and strictly better than iteration 1
  // of a fresh run.
  devsim::Device d2(devsim::k20c());
  AlsSolver warm(train, o, AlsVariant::batch_local_reg(), d2);
  warm.set_factors(cold.x(), cold.y());
  warm.run_iteration();
  EXPECT_LE(warm.train_loss(), cold_loss * (1 + 1e-5));

  devsim::Device d3(devsim::k20c());
  AlsSolver fresh(train, o, AlsVariant::batch_local_reg(), d3);
  fresh.run_iteration();
  EXPECT_LT(warm.train_loss(), fresh.train_loss());
}

TEST(ModelProperties, SetFactorsShapeChecked) {
  const Csr train = testing::random_csr(20, 15, 0.2, 207);
  AlsOptions o;
  o.k = 4;
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batching_only(), device);
  EXPECT_THROW(solver.set_factors(Matrix(21, 4), Matrix(15, 4)), Error);
  EXPECT_THROW(solver.set_factors(Matrix(20, 5), Matrix(15, 5)), Error);
  EXPECT_NO_THROW(solver.set_factors(Matrix(20, 4), Matrix(15, 4)));
}

}  // namespace
}  // namespace alsmf
