#include "devsim/profile_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace alsmf::devsim {
namespace {

TEST(ProfileIo, RoundTripPreservesEveryField) {
  for (const DeviceProfile& original :
       {k20c(), xeon_e5_2670_dual(), xeon_phi_31sp()}) {
    std::stringstream s;
    write_profile(s, original);
    const DeviceProfile back = read_profile(s);
    EXPECT_EQ(back.name, original.name);
    EXPECT_EQ(back.kind, original.kind);
    EXPECT_EQ(back.compute_units, original.compute_units);
    EXPECT_EQ(back.simd_width, original.simd_width);
    EXPECT_DOUBLE_EQ(back.clock_ghz, original.clock_ghz);
    EXPECT_DOUBLE_EQ(back.issue_per_cu, original.issue_per_cu);
    EXPECT_DOUBLE_EQ(back.scalar_efficiency, original.scalar_efficiency);
    EXPECT_DOUBLE_EQ(back.vector_efficiency, original.vector_efficiency);
    EXPECT_EQ(back.groups_in_flight_per_cu, original.groups_in_flight_per_cu);
    EXPECT_DOUBLE_EQ(back.pipeline_efficiency, original.pipeline_efficiency);
    EXPECT_DOUBLE_EQ(back.flat_mapping_efficiency,
                     original.flat_mapping_efficiency);
    EXPECT_DOUBLE_EQ(back.gather_scalar_ops, original.gather_scalar_ops);
    EXPECT_DOUBLE_EQ(back.global_latency_slots, original.global_latency_slots);
    EXPECT_DOUBLE_EQ(back.mem_bw_gbs, original.mem_bw_gbs);
    EXPECT_DOUBLE_EQ(back.cache_bw_gbs, original.cache_bw_gbs);
    EXPECT_DOUBLE_EQ(back.scattered_transaction_bytes,
                     original.scattered_transaction_bytes);
    EXPECT_EQ(back.local_mem_bytes, original.local_mem_bytes);
    EXPECT_EQ(back.has_hw_local_mem, original.has_hw_local_mem);
    EXPECT_EQ(back.rereads_cached, original.rereads_cached);
    EXPECT_EQ(back.private_arrays_offchip, original.private_arrays_offchip);
    EXPECT_EQ(back.max_registers_per_lane, original.max_registers_per_lane);
    EXPECT_DOUBLE_EQ(back.launch_overhead_us, original.launch_overhead_us);
  }
}

TEST(ProfileIo, ParsesHandWrittenProfile) {
  std::stringstream s(R"(
# a hypothetical accelerator
name = MyFPGA
kind = gpu
compute_units = 4
simd_width = 64
clock_ghz = 0.3
mem_bw_gbs = 25
)");
  const DeviceProfile p = read_profile(s);
  EXPECT_EQ(p.name, "MyFPGA");
  EXPECT_EQ(p.kind, DeviceKind::kGpu);
  EXPECT_EQ(p.compute_units, 4);
  EXPECT_EQ(p.simd_width, 64);
  EXPECT_DOUBLE_EQ(p.mem_bw_gbs, 25.0);
  // Unspecified keys keep defaults.
  EXPECT_EQ(p.max_registers_per_lane, DeviceProfile{}.max_registers_per_lane);
}

TEST(ProfileIo, RejectsUnknownKey) {
  std::stringstream s("warp_size = 32\n");
  EXPECT_THROW(read_profile(s), Error);
}

TEST(ProfileIo, RejectsMalformedLine) {
  std::stringstream s("this is not a key value pair\n");
  EXPECT_THROW(read_profile(s), Error);
}

TEST(ProfileIo, RejectsBadKind) {
  std::stringstream s("kind = quantum\n");
  EXPECT_THROW(read_profile(s), Error);
}

TEST(ProfileIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/alsmf_profile.txt";
  write_profile_file(path, k20c());
  const DeviceProfile back = read_profile_file(path);
  EXPECT_EQ(back.name, "Tesla K20c");
}

TEST(ProfileIo, MissingFileThrows) {
  EXPECT_THROW(read_profile_file("/nonexistent/profile.txt"), Error);
}

}  // namespace
}  // namespace alsmf::devsim
