#include "devsim/profile.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace alsmf::devsim {
namespace {

TEST(Profile, PresetsHaveSaneConstants) {
  for (const DeviceProfile& p : {k20c(), xeon_e5_2670_dual(), xeon_phi_31sp()}) {
    EXPECT_GT(p.compute_units, 0) << p.name;
    EXPECT_GT(p.simd_width, 0) << p.name;
    EXPECT_GT(p.clock_ghz, 0.0) << p.name;
    EXPECT_GT(p.mem_bw_gbs, 0.0) << p.name;
    EXPECT_GT(p.cache_bw_gbs, p.mem_bw_gbs) << p.name;
    EXPECT_GT(p.scalar_efficiency, 0.0) << p.name;
    EXPECT_LE(p.scalar_efficiency, p.vector_efficiency) << p.name;
    EXPECT_GT(p.peak_gflops(), 0.0) << p.name;
  }
}

TEST(Profile, K20cIsSimt) {
  const auto p = k20c();
  EXPECT_EQ(p.kind, DeviceKind::kGpu);
  EXPECT_EQ(p.simd_width, 32);     // warp
  EXPECT_EQ(p.compute_units, 13);  // SMX count
  EXPECT_TRUE(p.has_hw_local_mem);
  EXPECT_TRUE(p.private_arrays_offchip);
  EXPECT_FALSE(p.rereads_cached);
  EXPECT_DOUBLE_EQ(p.flat_mapping_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(p.gather_scalar_ops, 0.0);
}

TEST(Profile, CpuCachesRereads) {
  const auto p = xeon_e5_2670_dual();
  EXPECT_EQ(p.kind, DeviceKind::kCpu);
  EXPECT_EQ(p.compute_units, 16);
  EXPECT_FALSE(p.has_hw_local_mem);
  EXPECT_TRUE(p.rereads_cached);
  EXPECT_FALSE(p.private_arrays_offchip);
  EXPECT_GT(p.gather_scalar_ops, 0.0);
  EXPECT_LT(p.flat_mapping_efficiency, p.scalar_efficiency);
}

TEST(Profile, MicHasWideVectors) {
  const auto p = xeon_phi_31sp();
  EXPECT_EQ(p.kind, DeviceKind::kMic);
  EXPECT_EQ(p.simd_width, 16);
  EXPECT_GE(p.compute_units, 50);
}

TEST(Profile, LookupByName) {
  EXPECT_EQ(profile_by_name("gpu").kind, DeviceKind::kGpu);
  EXPECT_EQ(profile_by_name("K20C").kind, DeviceKind::kGpu);
  EXPECT_EQ(profile_by_name("cpu").kind, DeviceKind::kCpu);
  EXPECT_EQ(profile_by_name("MIC").kind, DeviceKind::kMic);
  EXPECT_EQ(profile_by_name("phi").kind, DeviceKind::kMic);
  EXPECT_THROW(profile_by_name("fpga"), Error);
}

TEST(Profile, KindNames) {
  EXPECT_STREQ(to_string(DeviceKind::kCpu), "CPU");
  EXPECT_STREQ(to_string(DeviceKind::kGpu), "GPU");
  EXPECT_STREQ(to_string(DeviceKind::kMic), "MIC");
}

}  // namespace
}  // namespace alsmf::devsim
