#include "devsim/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <utility>

#include "devsim/device.hpp"

namespace alsmf::devsim {
namespace {

TimeEstimate estimate(double compute, double memory, double overhead) {
  TimeEstimate t;
  t.compute_s = compute;
  t.memory_s = memory;
  t.overhead_s = overhead;
  return t;
}

TEST(Trace, EventsLaidEndToEndPerDevice) {
  TraceRecorder trace;
  trace.record("gpu", "k1", estimate(1.0, 0.5, 0.1));  // total 1.1
  trace.record("gpu", "k2", estimate(0.2, 0.6, 0.0));  // total 0.6
  trace.record("cpu", "k3", estimate(2.0, 0.0, 0.0));
  ASSERT_EQ(trace.events().size(), 3u);
  EXPECT_DOUBLE_EQ(trace.events()[0].start_s, 0.0);
  EXPECT_DOUBLE_EQ(trace.events()[0].duration_s, 1.1);
  EXPECT_DOUBLE_EQ(trace.events()[1].start_s, 1.1);  // after k1
  EXPECT_DOUBLE_EQ(trace.events()[2].start_s, 0.0);  // cpu timeline separate
  EXPECT_DOUBLE_EQ(trace.device_end_time("gpu"), 1.7);
  EXPECT_DOUBLE_EQ(trace.device_end_time("cpu"), 2.0);
  EXPECT_DOUBLE_EQ(trace.device_end_time("mic"), 0.0);
}

TEST(Trace, ChromeJsonIsWellFormedish) {
  TraceRecorder trace;
  trace.record("Tesla K20c", "update_x", estimate(0.01, 0.02, 0.0));
  std::stringstream s;
  trace.write_chrome_trace(s);
  const std::string json = s.str();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"name\":\"update_x\""), std::string::npos);
  EXPECT_NE(json.find("Tesla K20c"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced braces/brackets.
  int braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Trace, DeviceIntegration) {
  TraceRecorder trace;
  Device device(k20c());
  device.set_trace(&trace);
  device.launch("a", {10, 32, true}, [](GroupCtx& ctx) { ctx.ops_scalar(1e6); });
  device.launch("b", {10, 32, true}, [](GroupCtx& ctx) { ctx.ops_scalar(1e6); });
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].name, "a");
  EXPECT_GT(trace.events()[1].start_s, 0.0);
  EXPECT_NEAR(trace.device_end_time("Tesla K20c"), device.modeled_seconds(),
              1e-12);

  device.set_trace(nullptr);
  device.launch("c", {10, 32, true}, [](GroupCtx&) {});
  EXPECT_EQ(trace.events().size(), 2u);  // detached
}

TEST(Trace, WallSpansRecorded) {
  TraceRecorder trace;
  {
    auto span = trace.span("solver", "iteration 1");
  }  // records on destruction
  ASSERT_EQ(trace.spans().size(), 1u);
  EXPECT_EQ(trace.spans()[0].track, "solver");
  EXPECT_EQ(trace.spans()[0].name, "iteration 1");
  EXPECT_GE(trace.spans()[0].wall_start_s, 0.0);
  EXPECT_GE(trace.spans()[0].wall_duration_s, 0.0);
}

TEST(Trace, SpanEndIsIdempotentAndMoveSafe) {
  TraceRecorder trace;
  auto span = trace.span("t", "a");
  span.end();
  span.end();
  EXPECT_EQ(trace.spans().size(), 1u);
  auto original = trace.span("t", "b");
  TraceRecorder::Span moved = std::move(original);
  moved.end();
  // The moved-from span must not record a duplicate when it dies.
  EXPECT_EQ(trace.spans().size(), 2u);
}

TEST(Trace, DeviceLaunchRecordsWallTiming) {
  TraceRecorder trace;
  Device device(k20c());
  device.set_trace(&trace);
  device.launch("k", {10, 32, true}, [](GroupCtx& ctx) { ctx.ops_scalar(1e5); });
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_GE(trace.events()[0].wall_start_s, 0.0);
  EXPECT_GE(trace.events()[0].wall_duration_s, 0.0);
}

TEST(Trace, ChromeJsonCarriesWallTimelines) {
  TraceRecorder trace;
  trace.record("gpu", "k", estimate(0.01, 0.0, 0.0), 0.0, 0.001);
  trace.record_span("solver", "iteration 1", 0.0, 0.002);
  std::stringstream s;
  trace.write_chrome_trace(s);
  const std::string json = s.str();
  // Modeled timeline plus the wall-clock correlates.
  EXPECT_NE(json.find("\"gpu\""), std::string::npos);
  EXPECT_NE(json.find("wall:gpu"), std::string::npos);
  EXPECT_NE(json.find("wall:solver"), std::string::npos);
  EXPECT_NE(json.find("\"modeled_us\""), std::string::npos);
  EXPECT_NE(json.find("\"iteration 1\""), std::string::npos);
}

TEST(Trace, LaunchWithoutWallTimingExportsModeledOnly) {
  TraceRecorder trace;
  trace.record("gpu", "k", estimate(0.01, 0.0, 0.0));  // wall_start_s = -1
  EXPECT_DOUBLE_EQ(trace.events()[0].wall_start_s, -1.0);
  std::stringstream s;
  trace.write_chrome_trace(s);
  EXPECT_EQ(s.str().find("wall:"), std::string::npos);
}

TEST(Trace, FileWrite) {
  TraceRecorder trace;
  trace.record("cpu", "k", estimate(1, 0, 0));
  const std::string path = ::testing::TempDir() + "/alsmf_trace.json";
  trace.write_chrome_trace_file(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

}  // namespace
}  // namespace alsmf::devsim
