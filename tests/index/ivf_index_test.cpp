// IVF index invariants: deterministic builds, exact-scan degeneration
// (nprobe = clusters is bit-identical to the exhaustive path), recall at
// moderate nprobe, and drop-in semantics (bias, exclude, edge cases).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "index/ivf_index.hpp"
#include "linalg/vecops.hpp"
#include "recsys/batch_score.hpp"
#include "recsys/ranking.hpp"

namespace alsmf::index {
namespace {

Matrix random_factors(index_t rows, int k, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, k);
  m.fill_uniform(rng, -0.5f, 0.5f);
  return m;
}

/// Topic-structured factors: items cluster around shared centers, the
/// regime ALS item factors occupy (and the one an IVF index targets).
/// Iid-uniform rows have no coarse structure for k-means to find.
Matrix clustered_factors(index_t rows, int k, int topics, real noise,
                         std::uint64_t seed) {
  Rng rng(seed);
  Matrix centers(topics, k);
  centers.fill_uniform(rng, -1.0f, 1.0f);
  Matrix m(rows, k);
  for (index_t i = 0; i < rows; ++i) {
    const auto t = static_cast<index_t>(
        rng.bounded(static_cast<std::uint64_t>(topics)));
    const real* c = centers.row(t).data();
    real* row = m.row(i).data();
    for (int d = 0; d < k; ++d) {
      row[d] = c[d] + static_cast<real>(rng.uniform(-noise, noise));
    }
  }
  return m;
}

TEST(IvfIndex, BuildIsDeterministicForSameInputs) {
  const auto y = random_factors(300, 8, 7);
  IvfOptions options;
  options.clusters = 12;
  const auto a = IvfIndex::build(y, options);
  const auto b = IvfIndex::build(y, options);
  ASSERT_EQ(a->clusters(), b->clusters());
  for (int p = 0; p < a->clusters(); ++p) {
    const auto pa = a->partition(p);
    const auto pb = b->partition(p);
    ASSERT_TRUE(std::equal(pa.begin(), pa.end(), pb.begin(), pb.end()));
  }
  const auto q = random_factors(1, 8, 99);
  const auto ta = a->topn(q.row(0), y, 10);
  const auto tb = b->topn(q.row(0), y, 10);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].item, tb[i].item);
    EXPECT_EQ(ta[i].score, tb[i].score);
  }
}

TEST(IvfIndex, PartitionsCoverEveryItemExactlyOnce) {
  const auto y = random_factors(257, 6, 11);
  IvfOptions options;
  options.clusters = 9;
  const auto index = IvfIndex::build(y, options);
  std::vector<index_t> seen;
  for (int p = 0; p < index->clusters(); ++p) {
    const auto part = index->partition(p);
    seen.insert(seen.end(), part.begin(), part.end());
  }
  std::sort(seen.begin(), seen.end());
  std::vector<index_t> want(257);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(seen, want);
}

TEST(IvfIndex, FullProbeIsBitIdenticalToExhaustive) {
  const auto y = random_factors(400, 8, 3);
  const auto x = random_factors(25, 8, 4);
  IvfOptions options;
  options.clusters = 16;
  const auto index = IvfIndex::build(y, options);
  for (index_t u = 0; u < x.rows(); ++u) {
    const auto exact = topn_from_factor(x.row(u), y, 10);
    const auto approx = index->topn(x.row(u), y, 10, index->clusters());
    ASSERT_EQ(approx.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(approx[i].item, exact[i].item) << "user " << u << " rank " << i;
      EXPECT_EQ(approx[i].score, exact[i].score);
    }
  }
}

TEST(IvfIndex, ModerateNprobeKeepsHighRecallWithFarLessWork) {
  const auto y = clustered_factors(2000, 16, 24, 0.25f, 5);
  const auto x = random_factors(50, 16, 6);
  IvfOptions options;
  const auto index = IvfIndex::build(y, options);
  double recall = 0;
  std::size_t candidates = 0;
  const int nprobe = std::max(1, index->clusters() / 4);
  for (index_t u = 0; u < x.rows(); ++u) {
    const auto exact = topn_from_factor(x.row(u), y, 10);
    IvfQueryStats stats;
    const auto approx =
        index->topn(x.row(u), y, 10, nprobe, nullptr, -1, {}, &stats);
    recall += recall_at_n(approx, exact);
    candidates += stats.candidates;
    EXPECT_LE(stats.probed, nprobe);
    // Every returned score is exact: identical arithmetic to the
    // exhaustive path's dot product.
    for (const auto& rec : approx) {
      EXPECT_EQ(rec.score, vdot(x.row(u).data(), y.row(rec.item).data(), 16));
    }
  }
  recall /= static_cast<double>(x.rows());
  EXPECT_GE(recall, 0.95);
  // Far fewer exact rescorings than an exhaustive scan would do.
  EXPECT_LT(candidates, static_cast<std::size_t>(50) * 2000 / 2);
}

TEST(IvfIndex, RespectsExcludeListLikeExhaustivePath) {
  const auto y = random_factors(120, 4, 13);
  const auto q = random_factors(1, 4, 14);
  const auto index = IvfIndex::build(y, IvfOptions{.clusters = 6});
  const auto unrestricted = index->topn(q.row(0), y, 5, index->clusters());
  std::vector<index_t> exclude;
  for (const auto& rec : unrestricted) exclude.push_back(rec.item);
  std::sort(exclude.begin(), exclude.end());
  const auto rest =
      index->topn(q.row(0), y, 5, index->clusters(), nullptr, -1, exclude);
  const auto exact = topn_from_factor(q.row(0), y, 5, nullptr, -1, exclude);
  ASSERT_EQ(rest.size(), exact.size());
  for (std::size_t i = 0; i < rest.size(); ++i) {
    EXPECT_EQ(rest[i].item, exact[i].item);
    EXPECT_FALSE(std::binary_search(exclude.begin(), exclude.end(),
                                    rest[i].item));
  }
}

TEST(IvfIndex, BiasModelMatchesExhaustiveRanking) {
  const index_t items = 500;
  const auto y = random_factors(items, 8, 21);
  const auto q = random_factors(3, 8, 22);
  Rng rng(23);
  Matrix ub(3, 1), ib(items, 1);
  ub.fill_uniform(rng, -0.3f, 0.3f);
  ib.fill_uniform(rng, -0.8f, 0.8f);  // item bias can dominate the ranking
  const BiasModel bias = BiasModel::from_parts(3.5f, ub, ib);
  const auto index = IvfIndex::build(y, IvfOptions{.clusters = 20}, &bias);
  for (index_t u = 0; u < 3; ++u) {
    const auto exact = topn_from_factor(q.row(u), y, 10, &bias, u);
    const auto approx =
        index->topn(q.row(u), y, 10, index->clusters(), &bias, u);
    ASSERT_EQ(approx.size(), exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      EXPECT_EQ(approx[i].item, exact[i].item);
      EXPECT_EQ(approx[i].score, exact[i].score);
    }
    // Cold-user form (negative user: μ + b_i only), as fold-in uses it.
    const auto cold_exact = topn_from_factor(q.row(u), y, 10, &bias, -1);
    const auto cold = index->topn(q.row(u), y, 10, index->clusters(), &bias, -1);
    ASSERT_EQ(cold.size(), cold_exact.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
      EXPECT_EQ(cold[i].item, cold_exact[i].item);
    }
  }
}

TEST(IvfIndex, EdgeCasesSmallCatalogsAndDegenerateRequests) {
  // Catalog smaller than the default cluster heuristic.
  const auto tiny = random_factors(3, 4, 31);
  const auto index = IvfIndex::build(tiny);
  const auto q = random_factors(1, 4, 32);
  const auto all = index->topn(q.row(0), tiny, 10);
  EXPECT_EQ(all.size(), 3u);  // n > items returns every item
  EXPECT_TRUE(index->topn(q.row(0), tiny, 0).empty());
  // One item, one cluster.
  const auto one = random_factors(1, 4, 33);
  const auto single = IvfIndex::build(one, IvfOptions{.clusters = 1});
  EXPECT_EQ(single->topn(q.row(0), one, 5).size(), 1u);
  // nprobe larger than clusters clamps.
  EXPECT_EQ(index->topn(q.row(0), tiny, 2, 1000).size(), 2u);
}

TEST(IvfIndex, BuildStatsDescribeThePartitioning) {
  const auto y = random_factors(600, 8, 41);
  IvfOptions options;
  options.clusters = 24;
  const auto index = IvfIndex::build(y, options);
  const auto& stats = index->build_stats();
  EXPECT_EQ(stats.clusters, 24);
  EXPECT_EQ(stats.items, 600);
  EXPECT_GE(stats.imbalance, 1.0);
  EXPECT_GE(stats.build_seconds, 0.0);
  EXPECT_LT(stats.empty_partitions, 24);
}

}  // namespace
}  // namespace alsmf::index
