// Tentpole end-to-end: the continuous train → checkpoint → index-build →
// hot-swap pipeline under closed-loop load. Asserts the registry-backed
// guarantees (zero dropped requests, bounded version staleness) and the
// graceful-fallback path when a checkpoint load hits a seeded injected
// I/O fault mid-pipeline.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "pipeline/pipeline.hpp"
#include "robust/checkpoint.hpp"
#include "robust/fault_injection.hpp"
#include "testing/util.hpp"

namespace alsmf::pipeline {
namespace {

namespace fs = std::filesystem;

std::uint64_t fault_seed() {
  const char* env = std::getenv("ALSMF_FAULT_SEED");
  return env ? std::strtoull(env, nullptr, 10) : 42ULL;
}

std::string fresh_dir(const std::string& name) {
  const auto dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

PipelineOptions small_options(const std::string& dir) {
  PipelineOptions options;
  options.als.k = 6;
  options.als.iterations = 4;
  options.checkpoint_dir = dir;
  options.checkpoint_every = 2;  // 2 checkpoints -> 2 published versions
  options.ivf.clusters = 4;
  options.clients = 2;
  options.topn = 5;
  options.serve.max_wait_us = 100;
  options.poll_us = 100;
  return options;
}

TEST(Pipeline, TwoCheckpointsTwoSwapsZeroDropsBoundedStaleness) {
  const Csr train = testing::random_csr(60, 40, 0.2, 7);
  const auto dir = fresh_dir("pipeline_basic");
  obs::Registry reg;
  auto options = small_options(dir);
  options.metrics = &reg;

  const PipelineReport report = run_pipeline(train, options);

  EXPECT_EQ(report.iterations, 4);
  EXPECT_EQ(report.swaps, 2u);          // one hot swap per checkpoint
  EXPECT_EQ(report.index_builds, 2u);   // each swap carried a fresh index
  EXPECT_EQ(report.checkpoint_load_failures, 0u);
  EXPECT_LE(report.staleness_max, 1u);
  // Conservation at drain: submitted == completed + shed, zero drops.
  EXPECT_GT(report.requests_submitted, 0u);
  EXPECT_EQ(report.requests_submitted,
            report.requests_completed + report.requests_shed);
  EXPECT_TRUE(report.ok()) << report.to_json();

  // The shared registry carries the pipeline series and assertions.
  EXPECT_EQ(reg.counter("pipeline_checkpoints_published").value(), 2u);
  EXPECT_TRUE(reg.check_assertions().empty());

  // The last checkpoint is on disk and matches the final iteration.
  const auto ckpts = robust::list_checkpoints(dir);
  ASSERT_FALSE(ckpts.empty());
  EXPECT_EQ(ckpts.back().iteration, 4);
}

TEST(Pipeline, ServesExhaustivelyWhenIndexDisabled) {
  const Csr train = testing::random_csr(40, 30, 0.2, 8);
  const auto dir = fresh_dir("pipeline_noindex");
  auto options = small_options(dir);
  options.use_index = false;
  const PipelineReport report = run_pipeline(train, options);
  EXPECT_EQ(report.swaps, 2u);
  EXPECT_EQ(report.index_builds, 0u);
  EXPECT_TRUE(report.ok()) << report.to_json();
}

TEST(Pipeline, InjectedCheckpointLoadFaultFallsBackGracefully) {
  const Csr train = testing::random_csr(60, 40, 0.2, 9);

  // Measure how many kIoRead occurrences one successful checkpoint load
  // consumes, so the exact-occurrence plan can target the SECOND load —
  // mid-pipeline, after a model version is already being served.
  std::uint64_t reads_per_load = 0;
  {
    const auto probe_dir = fresh_dir("pipeline_fault_probe");
    robust::TrainingCheckpoint probe;
    probe.iteration = 1;
    probe.x = Matrix(60, 6, 0.5f);
    probe.y = Matrix(40, 6, 0.5f);
    const auto path = robust::checkpoint_path(probe_dir, 1);
    robust::save_checkpoint_file(path, probe);
    robust::ScopedFaultInjector counting{robust::FaultPlan{}};
    (void)robust::load_checkpoint_file(path);
    reads_per_load =
        counting.injector().occurrences(robust::FaultSite::kIoRead);
  }
  ASSERT_GT(reads_per_load, 0u);

  const auto dir = fresh_dir("pipeline_fault");
  robust::FaultPlan plan;
  plan.seed = fault_seed();
  // First read of the second checkpoint's first load attempt fails; the
  // retry (occurrences shifted past the plan) succeeds.
  plan.exact[static_cast<int>(robust::FaultSite::kIoRead)] = {reads_per_load};
  robust::ScopedFaultInjector scoped(plan);

  obs::Registry reg;
  auto options = small_options(dir);
  options.metrics = &reg;
  const PipelineReport report = run_pipeline(train, options);

  // The fault was hit, the previous version kept serving (no violations,
  // no drops), and the retry caught the pipeline back up to 2 swaps.
  EXPECT_EQ(report.checkpoint_load_failures, 1u);
  EXPECT_EQ(scoped.injector().triggered(robust::FaultSite::kIoRead), 1u);
  EXPECT_EQ(report.swaps, 2u);
  EXPECT_LE(report.staleness_max, 1u);
  EXPECT_EQ(report.requests_submitted,
            report.requests_completed + report.requests_shed);
  EXPECT_TRUE(report.ok()) << report.to_json();
}

TEST(Pipeline, ResumesFromExistingCheckpointsAndKeepsServing) {
  const Csr train = testing::random_csr(50, 30, 0.2, 10);
  const auto dir = fresh_dir("pipeline_resume");
  auto first = small_options(dir);
  const auto before = run_pipeline(train, first);
  ASSERT_TRUE(before.ok()) << before.to_json();

  // Second leg: 4 more iterations on top of the 4 checkpointed ones.
  auto second = small_options(dir);
  second.als.iterations = 8;
  second.resume = true;
  const auto report = run_pipeline(train, second);
  EXPECT_EQ(report.resumed_from, 4);
  EXPECT_EQ(report.iterations, 4);  // only the remaining work ran
  EXPECT_EQ(report.swaps, 2u);
  EXPECT_TRUE(report.ok()) << report.to_json();
  const auto ckpts = robust::list_checkpoints(dir);
  ASSERT_FALSE(ckpts.empty());
  EXPECT_EQ(ckpts.back().iteration, 8);
}

TEST(Pipeline, RejectsMisconfiguration) {
  const Csr train = testing::random_csr(10, 10, 0.3, 11);
  PipelineOptions options;  // no checkpoint_dir
  EXPECT_THROW(run_pipeline(train, options), Error);
  options.checkpoint_dir = fresh_dir("pipeline_misconfig");
  options.als.iterations = 0;
  EXPECT_THROW(run_pipeline(train, options), Error);
}

}  // namespace
}  // namespace alsmf::pipeline
