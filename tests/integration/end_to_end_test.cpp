// End-to-end integration: dataset replica -> split -> train on each device
// profile -> evaluate -> serve -> serialize.
#include <gtest/gtest.h>

#include <sstream>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "als/solver.hpp"
#include "als/variant_select.hpp"
#include "data/datasets.hpp"
#include "data/split.hpp"
#include "recsys/recommender.hpp"
#include "sparse/convert.hpp"
#include "sparse/io.hpp"

namespace alsmf {
namespace {

TEST(EndToEnd, ReplicaTrainServeSaveLoad) {
  const auto& info = dataset_by_abbr("YMR4");
  SyntheticSpec spec = replica_spec(info, 16.0);
  spec.noise = 0.1;  // keep the tiny replica learnable
  spec.integer_ratings = false;
  const Coo all = generate_synthetic(spec);
  auto [train_coo, test_coo] = split_holdout(all, 0.1, 3);
  const Csr train = coo_to_csr(train_coo);

  // Small replica with many rarely-rated items: keep the model modest and
  // the ridge strong so the holdout error stays meaningful.
  AlsOptions options;
  options.k = 4;
  options.lambda = 0.5f;
  options.iterations = 8;

  Recommender rec;
  const auto report = rec.train(train, options, devsim::k20c());
  EXPECT_LT(report.train_rmse, 1.0);
  EXPECT_LT(rec.rmse_on(test_coo), 1.5);

  const auto recs = rec.recommend(1, 5, &train);
  EXPECT_LE(recs.size(), 5u);

  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  rec.save(s);
  Recommender back = Recommender::load(s);
  EXPECT_NEAR(back.rmse_on(test_coo), rec.rmse_on(test_coo), 1e-9);
}

TEST(EndToEnd, AllFourReplicasTrainOnAllDevices) {
  AlsOptions options;
  options.k = 4;
  options.iterations = 2;
  options.num_groups = 512;
  for (const auto& info : table1_datasets()) {
    const Csr train = make_replica(info.abbr, 1024.0);
    Matrix first;
    bool have_first = false;
    for (const char* dev : {"cpu", "gpu", "mic"}) {
      const auto profile = devsim::profile_by_name(dev);
      devsim::Device device(profile);
      AlsSolver solver(train, options,
                       select_variant_heuristic(train, options, profile),
                       device);
      solver.run({});
      EXPECT_GT(solver.modeled_seconds(), 0.0) << info.abbr << " " << dev;
      if (!have_first) {
        first = solver.x();
        have_first = true;
      } else {
        EXPECT_EQ(solver.x(), first) << info.abbr << " " << dev;
      }
    }
  }
}

TEST(EndToEnd, TextRoundTripThenTrain) {
  // Dataset -> paper text format -> reload -> train; exercises the I/O path
  // a user with real MovieLens files would follow.
  const Csr original = make_replica("YMR4", 32.0);
  std::stringstream s;
  write_ratings_text(s, csr_to_coo(original));
  const Coo reloaded =
      read_ratings_text(s, {}, original.rows(), original.cols());
  const Csr train = coo_to_csr(reloaded);
  EXPECT_EQ(train.nnz(), original.nnz());

  AlsOptions options;
  options.k = 4;
  options.iterations = 3;
  devsim::Device device(devsim::xeon_e5_2670_dual());
  AlsSolver solver(train, options, AlsVariant::batch_local(), device);
  solver.run({});
  EXPECT_LT(solver.train_rmse(), 1.3);
}

TEST(EndToEnd, ConvergenceAcrossVariantsIdentical) {
  const Csr train = make_replica("MVLE", 2048.0);
  AlsOptions options;
  options.k = 6;
  options.iterations = 4;
  double reference_loss = -1;
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    devsim::Device device(devsim::k20c());
    AlsSolver solver(train, options, AlsVariant::from_mask(mask), device);
    solver.run({});
    const double loss = solver.train_loss();
    if (reference_loss < 0) {
      reference_loss = loss;
    } else {
      EXPECT_DOUBLE_EQ(loss, reference_loss)
          << AlsVariant::from_mask(mask).name();
    }
  }
}

}  // namespace
}  // namespace alsmf
