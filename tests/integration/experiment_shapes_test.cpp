// Regression net for the paper's experimental *shapes*: who wins, in what
// direction, with loose factor bands. These tests pin the device-profile
// calibration (see EXPERIMENTS.md) so later changes can't silently break
// the reproduced figures.
#include <gtest/gtest.h>

#include "als/solver.hpp"
#include "als/variant_select.hpp"
#include "baselines/cumf_like.hpp"
#include "data/datasets.hpp"

namespace alsmf {
namespace {

AlsOptions paper_options() {
  AlsOptions o;
  o.k = 10;
  o.lambda = 0.1f;
  o.iterations = 5;
  o.num_groups = 8192;
  o.group_size = 32;
  o.functional = false;  // cost model only
  return o;
}

/// Replica scale used by the fixture; results are extrapolated to the full
/// dataset so launch-utilization artifacts of the small replica vanish.
constexpr double kReplicaScale = 256.0;

double run_variant(const Csr& train, const AlsVariant& v,
                   const devsim::DeviceProfile& p, int group_size = 32) {
  AlsOptions o = paper_options();
  o.group_size = group_size;
  devsim::Device device(p);
  AlsSolver solver(train, o, v, device);
  solver.run({});
  return device.modeled_seconds_scaled(kReplicaScale);
}

double best_time(const Csr& train, const devsim::DeviceProfile& p) {
  double best = -1;
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const double t = run_variant(train, AlsVariant::from_mask(mask), p);
    if (best < 0 || t < best) best = t;
  }
  return best;
}

class NetflixShapes : public ::testing::Test {
 protected:
  static const Csr& train() {
    static const Csr csr = make_replica("NTFX", 256.0);
    return csr;
  }
};

// Fig. 1: the flat baseline runs several times faster on the 16-core CPU
// than on the K20c.
TEST_F(NetflixShapes, Fig1FlatCpuBeatsFlatGpu) {
  const double cpu = run_variant(train(), AlsVariant::flat_baseline(),
                                 devsim::xeon_e5_2670_dual());
  const double gpu =
      run_variant(train(), AlsVariant::flat_baseline(), devsim::k20c(), 32);
  EXPECT_GT(gpu / cpu, 2.0);   // paper: 8.4x on average
  EXPECT_LT(gpu / cpu, 20.0);
}

// Fig. 7 / §V-A: ours vs the SAC'15 baseline — ~5.5x on the CPU and
// ~21.2x on the GPU (bands of roughly 2x around the paper's numbers).
TEST_F(NetflixShapes, Fig7SpeedupOverBaselineCpu) {
  const double flat = run_variant(train(), AlsVariant::flat_baseline(),
                                  devsim::xeon_e5_2670_dual());
  const double ours = best_time(train(), devsim::xeon_e5_2670_dual());
  const double speedup = flat / ours;
  EXPECT_GT(speedup, 2.5);
  EXPECT_LT(speedup, 14.0);
}

TEST_F(NetflixShapes, Fig7SpeedupOverBaselineGpu) {
  const double flat =
      run_variant(train(), AlsVariant::flat_baseline(), devsim::k20c(), 32);
  const double ours = best_time(train(), devsim::k20c());
  const double speedup = flat / ours;
  EXPECT_GT(speedup, 8.0);
  EXPECT_LT(speedup, 45.0);
}

// Fig. 7: ours beats the cuMF-like implementation by 2.2x-6.8x at k = 10.
TEST_F(NetflixShapes, Fig7SpeedupOverCumf) {
  AlsOptions o = paper_options();
  devsim::Device cumf_device(devsim::k20c());
  CumfLikeAls cumf(train(), o, cumf_device);
  cumf.run();
  const double cumf_time = cumf_device.modeled_seconds_scaled(kReplicaScale);
  const double ours = best_time(train(), devsim::k20c());
  const double speedup = cumf_time / ours;
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 10.0);
}

// Fig. 6 (GPU): registers + local memory give up to ~2.6x over batching.
TEST_F(NetflixShapes, Fig6GpuLocalRegisters) {
  const double batch =
      run_variant(train(), AlsVariant::batching_only(), devsim::k20c());
  const double opt =
      run_variant(train(), AlsVariant::batch_local_reg(), devsim::k20c());
  EXPECT_GT(batch / opt, 1.5);
  EXPECT_LT(batch / opt, 6.0);
}

// Fig. 6 (GPU): explicit vectors bring "very little change" on SIMT.
TEST_F(NetflixShapes, Fig6GpuVectorsNeutral) {
  const double batch =
      run_variant(train(), AlsVariant::batching_only(), devsim::k20c());
  const double vec =
      run_variant(train(), AlsVariant::batch_vectors(), devsim::k20c());
  EXPECT_NEAR(vec / batch, 1.0, 0.05);
}

// Fig. 6 (CPU/MIC): local memory helps (paper: up to 1.6x / 1.4x).
TEST_F(NetflixShapes, Fig6CpuMicLocalHelps) {
  for (const char* dev : {"cpu", "mic"}) {
    const auto p = devsim::profile_by_name(dev);
    const double batch = run_variant(train(), AlsVariant::batching_only(), p);
    const double local = run_variant(train(), AlsVariant::batch_local(), p);
    EXPECT_GT(batch / local, 1.15) << dev;
    EXPECT_LT(batch / local, 5.0) << dev;
  }
}

// §V-B: combining registers with local memory degrades CPU/MIC performance.
TEST_F(NetflixShapes, Fig6CpuMicRegistersPlusLocalDegrade) {
  for (const char* dev : {"cpu", "mic"}) {
    const auto p = devsim::profile_by_name(dev);
    const double local = run_variant(train(), AlsVariant::batch_local(), p);
    const double local_reg =
        run_variant(train(), AlsVariant::batch_local_reg(), p);
    EXPECT_GT(local_reg, local * 1.3) << dev;
  }
}

// Fig. 9: with the best variant per device, the CPU wins; the GPU is a
// small factor behind; the MIC trails by the largest factor.
TEST_F(NetflixShapes, Fig9DeviceOrdering) {
  const double cpu = best_time(train(), devsim::xeon_e5_2670_dual());
  const double gpu = best_time(train(), devsim::k20c());
  const double mic = best_time(train(), devsim::xeon_phi_31sp());
  EXPECT_LT(cpu, gpu);        // CPU best (paper: GPU 1.5x slower)
  EXPECT_LT(gpu / cpu, 3.0);
  EXPECT_GT(mic / cpu, 2.0);  // paper: 4.1x slower
  EXPECT_LT(mic / cpu, 8.0);
}

// Fig. 9 note: our optimized GPU code runs ~3x faster than the OpenMP
// (flat CPU) version.
TEST_F(NetflixShapes, Fig9OptimizedGpuBeatsOpenMpBaseline) {
  const double flat_cpu = run_variant(train(), AlsVariant::flat_baseline(),
                                      devsim::xeon_e5_2670_dual());
  const double gpu = best_time(train(), devsim::k20c());
  EXPECT_GT(flat_cpu / gpu, 1.5);
}

// Fig. 10 (GPU): minimum at block size 16/32; 8 and 64 tie above it; 128
// is the worst.
TEST_F(NetflixShapes, Fig10GpuBlockSizeShape) {
  const AlsVariant v = AlsVariant::batch_local_reg();
  const double t8 = run_variant(train(), v, devsim::k20c(), 8);
  const double t16 = run_variant(train(), v, devsim::k20c(), 16);
  const double t32 = run_variant(train(), v, devsim::k20c(), 32);
  const double t64 = run_variant(train(), v, devsim::k20c(), 64);
  const double t128 = run_variant(train(), v, devsim::k20c(), 128);
  EXPECT_LT(t16, t8);
  EXPECT_LT(t32, t64);
  EXPECT_NEAR(t16 / t32, 1.0, 0.05);
  EXPECT_GT(t128, t64);
  EXPECT_GT(t8, t32);
}

// Fig. 10 (CPU): smaller block sizes are no worse (paper: "the smaller the
// block size, the better").
TEST_F(NetflixShapes, Fig10CpuSmallerNoWorse) {
  const AlsVariant v = AlsVariant::batch_local();
  const auto p = devsim::xeon_e5_2670_dual();
  const double t8 = run_variant(train(), v, p, 8);
  const double t32 = run_variant(train(), v, p, 32);
  const double t128 = run_variant(train(), v, p, 128);
  EXPECT_LE(t8, t32 * 1.05);
  EXPECT_LT(t32, t128);
}

// §V-A: the Cholesky-based S3 beats an LU-based S3 (largest effect on the
// small YMR4 dataset).
TEST(ExperimentShapes, CholeskyBeatsLuOnS3) {
  const Csr train = make_replica("YMR4", 4.0);
  AlsOptions o;
  o.k = 10;
  o.iterations = 5;
  o.functional = false;

  devsim::Device d_chol(devsim::k20c());
  o.solver = LinearSolverKind::kCholesky;
  AlsSolver chol(train, o, AlsVariant::batch_local_reg(), d_chol);
  chol.run({});

  devsim::Device d_lu(devsim::k20c());
  o.solver = LinearSolverKind::kLu;
  AlsSolver lu(train, o, AlsVariant::batch_local_reg(), d_lu);
  lu.run({});

  EXPECT_LT(chol.step_breakdown().s3, lu.step_breakdown().s3);
}

// Fig. 8 narrative: batching-only leaves S1 dominant; optimizing S1
// (local+registers) shifts the bottleneck toward S2.
TEST(ExperimentShapes, Fig8BreakdownNarrative) {
  const Csr train = make_replica("NTFX", 256.0);
  AlsOptions o;
  o.k = 10;
  o.iterations = 5;
  o.functional = false;

  devsim::Device d_batch(devsim::k20c());
  AlsSolver batch(train, o, AlsVariant::batching_only(), d_batch);
  batch.run({});
  const StepBreakdown before = batch.step_breakdown();
  EXPECT_GT(before.s1_pct(), 50.0);  // paper: ~68%

  // "Optimizing S1" = the register optimization (the local staging helps
  // S2 as well, so use the S1-only toggle for the narrative).
  devsim::Device d_opt(devsim::k20c());
  AlsSolver opt(train, o, AlsVariant::from_mask(1), d_opt);
  opt.run({});
  const StepBreakdown after = opt.step_breakdown();
  EXPECT_LT(after.s1_pct(), before.s1_pct());
  EXPECT_GT(after.s2_pct(), before.s2_pct());
}

}  // namespace
}  // namespace alsmf
