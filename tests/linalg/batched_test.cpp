#include "linalg/batched.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(Batched, MatchesIndividualSolves) {
  const int k = 6;
  const std::size_t batch = 50;
  std::vector<real> as, rhs, as_copy, rhs_copy;
  Rng rng(4);
  for (std::size_t b = 0; b < batch; ++b) {
    auto spd = testing::random_spd(k, b + 1);
    as.insert(as.end(), spd.begin(), spd.end());
    for (int i = 0; i < k; ++i) rhs.push_back(static_cast<real>(rng.uniform(-1, 1)));
  }
  as_copy = as;
  rhs_copy = rhs;

  ThreadPool pool(4);
  EXPECT_EQ(batched_cholesky_solve(as.data(), rhs.data(), batch, k, pool), 0u);

  for (std::size_t b = 0; b < batch; ++b) {
    std::vector<real> a(as_copy.begin() + static_cast<std::ptrdiff_t>(b * k * k),
                        as_copy.begin() + static_cast<std::ptrdiff_t>((b + 1) * k * k));
    std::vector<real> x(rhs_copy.begin() + static_cast<std::ptrdiff_t>(b * k),
                        rhs_copy.begin() + static_cast<std::ptrdiff_t>((b + 1) * k));
    ASSERT_TRUE(cholesky_solve(a.data(), k, x.data()));
    for (int i = 0; i < k; ++i) {
      EXPECT_FLOAT_EQ(x[static_cast<std::size_t>(i)], rhs[b * k + static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Batched, ReportsFailuresAndZeroFills) {
  const int k = 2;
  // Batch of 3: [SPD, singular, SPD].
  std::vector<real> as = {4, 0, 0, 4, /*singular*/ 0, 0, 0, 0, 9, 0, 0, 9};
  std::vector<real> rhs = {4, 8, 1, 1, 9, 18};
  ThreadPool pool(2);
  EXPECT_EQ(batched_cholesky_solve(as.data(), rhs.data(), 3, k, pool), 1u);
  EXPECT_FLOAT_EQ(rhs[0], 1.0f);
  EXPECT_FLOAT_EQ(rhs[2], 0.0f);  // failed system zero-filled
  EXPECT_FLOAT_EQ(rhs[3], 0.0f);
  EXPECT_FLOAT_EQ(rhs[4], 1.0f);
}

TEST(Batched, LuVariantAgreesWithCholesky) {
  const int k = 5;
  const std::size_t batch = 20;
  std::vector<real> as, rhs;
  for (std::size_t b = 0; b < batch; ++b) {
    auto spd = testing::random_spd(k, b + 100);
    as.insert(as.end(), spd.begin(), spd.end());
    for (int i = 0; i < k; ++i) rhs.push_back(1.0f);
  }
  auto as2 = as;
  auto rhs2 = rhs;
  ThreadPool pool(3);
  EXPECT_EQ(batched_cholesky_solve(as.data(), rhs.data(), batch, k, pool), 0u);
  EXPECT_EQ(batched_lu_solve(as2.data(), rhs2.data(), batch, k, pool), 0u);
  for (std::size_t i = 0; i < rhs.size(); ++i) EXPECT_NEAR(rhs[i], rhs2[i], 1e-3);
}

TEST(Batched, EmptyBatchIsNoop) {
  ThreadPool pool(2);
  EXPECT_EQ(batched_cholesky_solve(nullptr, nullptr, 0, 4, pool), 0u);
}

}  // namespace
}  // namespace alsmf
