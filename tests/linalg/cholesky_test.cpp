#include "linalg/cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

/// ||A·x - b||_inf for row-major A.
double residual_inf(const std::vector<real>& a, const std::vector<real>& x,
                    const std::vector<real>& b, int k) {
  double worst = 0;
  for (int i = 0; i < k; ++i) {
    double s = 0;
    for (int j = 0; j < k; ++j) {
      s += static_cast<double>(a[static_cast<std::size_t>(i) * k + j]) * x[static_cast<std::size_t>(j)];
    }
    worst = std::max(worst, std::abs(s - static_cast<double>(b[static_cast<std::size_t>(i)])));
  }
  return worst;
}

TEST(Cholesky, SolvesIdentity) {
  std::vector<real> a = {1, 0, 0, 1};
  std::vector<real> b = {3, -2};
  ASSERT_TRUE(cholesky_solve(a.data(), 2, b.data()));
  EXPECT_FLOAT_EQ(b[0], 3.0f);
  EXPECT_FLOAT_EQ(b[1], -2.0f);
}

TEST(Cholesky, SolvesKnown2x2) {
  // A = [[4,2],[2,3]], b = [10, 9] => x = [1.5, 2].
  std::vector<real> a = {4, 2, 2, 3};
  std::vector<real> b = {10, 9};
  ASSERT_TRUE(cholesky_solve(a.data(), 2, b.data()));
  EXPECT_NEAR(b[0], 1.5, 1e-5);
  EXPECT_NEAR(b[1], 2.0, 1e-5);
}

TEST(Cholesky, FactorOfDiagonalIsSqrt) {
  std::vector<real> a = {9, 0, 0, 16};
  ASSERT_TRUE(cholesky_factor(a.data(), 2));
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  EXPECT_FLOAT_EQ(a[3], 4.0f);
}

TEST(Cholesky, FailsOnNonSpd) {
  std::vector<real> a = {1, 2, 2, 1};  // indefinite
  EXPECT_FALSE(cholesky_factor(a.data(), 2));
  std::vector<real> zero = {0, 0, 0, 0};
  EXPECT_FALSE(cholesky_factor(zero.data(), 2));
}

class CholeskyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyProperty, RandomSpdSolvesAccurately) {
  const int k = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto original = testing::random_spd(k, seed);
    std::vector<real> a(original.begin(), original.end());
    Rng rng(seed * 101);
    std::vector<real> b(static_cast<std::size_t>(k));
    for (auto& v : b) v = static_cast<real>(rng.uniform(-2.0, 2.0));
    std::vector<real> x = b;
    ASSERT_TRUE(cholesky_solve(a.data(), k, x.data()));
    std::vector<real> orig_real(original.begin(), original.end());
    EXPECT_LT(residual_inf(orig_real, x, b, k), 1e-2) << "k=" << k;
  }
}

TEST_P(CholeskyProperty, FactorReconstructsMatrix) {
  const int k = GetParam();
  const auto original = testing::random_spd(k, 42);
  std::vector<real> l(original.begin(), original.end());
  ASSERT_TRUE(cholesky_factor(l.data(), k));
  // L·Lᵀ must reproduce the lower triangle of the input.
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = 0;
      for (int p = 0; p <= j; ++p) {
        s += static_cast<double>(l[static_cast<std::size_t>(i) * k + p]) *
             l[static_cast<std::size_t>(j) * k + p];
      }
      EXPECT_NEAR(s, original[static_cast<std::size_t>(i) * k + j], 5e-3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values(1, 2, 3, 5, 10, 16, 32, 64));

TEST(Cholesky, FlopCountMonotoneInK) {
  EXPECT_LT(cholesky_solve_flops(5), cholesky_solve_flops(10));
  EXPECT_GT(cholesky_solve_flops(10), 0.0);
}

TEST(Cholesky, ForwardBackwardComposition) {
  const int k = 4;
  auto a = testing::random_spd(k, 3);
  std::vector<real> l(a.begin(), a.end());
  ASSERT_TRUE(cholesky_factor(l.data(), k));
  std::vector<real> b = {1, 2, 3, 4};
  std::vector<real> x = b;
  cholesky_forward(l.data(), k, x.data());
  cholesky_backward(l.data(), k, x.data());
  std::vector<real> ar(a.begin(), a.end());
  EXPECT_LT(residual_inf(ar, x, b, k), 1e-3);
}

}  // namespace
}  // namespace alsmf
