#include "linalg/dense.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace alsmf {
namespace {

TEST(Matrix, ShapeAndFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FLOAT_EQ(m(2, 3), 2.5f);
  m.fill(0.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(Matrix, RowSpanIsContiguousView) {
  Matrix m(2, 3);
  m(1, 0) = 1;
  m(1, 1) = 2;
  m(1, 2) = 3;
  auto row = m.row(1);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_FLOAT_EQ(row[1], 2.0f);
  row[1] = 9;
  EXPECT_FLOAT_EQ(m(1, 1), 9.0f);
}

TEST(Matrix, FillUniformRespectsRange) {
  Matrix m(10, 10);
  Rng rng(1);
  m.fill_uniform(rng, -0.5f, 0.5f);
  for (index_t r = 0; r < 10; ++r) {
    for (index_t c = 0; c < 10; ++c) {
      EXPECT_GE(m(r, c), -0.5f);
      EXPECT_LT(m(r, c), 0.5f);
    }
  }
}

TEST(Matrix, Frob2) {
  Matrix m(2, 2);
  m(0, 0) = 3;
  m(1, 1) = 4;
  EXPECT_DOUBLE_EQ(m.frob2(), 25.0);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  b(1, 0) = 1.5f;
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 0.5);
  EXPECT_DOUBLE_EQ(max_abs_diff(a, a), 0.0);
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(max_abs_diff(a, b), Error);
}

TEST(Dense, GramFullMatchesManual) {
  // A = [[1,2],[3,4],[5,6]]; AᵀA = [[35,44],[44,56]].
  Matrix a(3, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  a(2, 0) = 5; a(2, 1) = 6;
  std::vector<real> g(4);
  gram_full(a, 0.5f, g.data());
  EXPECT_FLOAT_EQ(g[0], 35.5f);  // +lambda on diagonal
  EXPECT_FLOAT_EQ(g[1], 44.0f);
  EXPECT_FLOAT_EQ(g[2], 44.0f);  // symmetric
  EXPECT_FLOAT_EQ(g[3], 56.5f);
}

TEST(Dense, AtxMatchesManual) {
  Matrix a(3, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  a(2, 0) = 5; a(2, 1) = 6;
  std::vector<real> x = {1, 1, 1};
  std::vector<real> out(2);
  atx(a, x, out.data());
  EXPECT_FLOAT_EQ(out[0], 9.0f);
  EXPECT_FLOAT_EQ(out[1], 12.0f);
}

TEST(Matrix, EqualityOperator) {
  Matrix a(2, 2, 1.0f), b(2, 2, 1.0f);
  EXPECT_EQ(a, b);
  b(0, 0) = 2.0f;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace alsmf
