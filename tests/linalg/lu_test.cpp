#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(Lu, SolvesKnownSystem) {
  // [[2,1],[1,3]] x = [5, 10] => x = [1, 3].
  std::vector<real> a = {2, 1, 1, 3};
  std::vector<real> b = {5, 10};
  ASSERT_TRUE(lu_solve(a.data(), 2, b.data()));
  EXPECT_NEAR(b[0], 1.0, 1e-5);
  EXPECT_NEAR(b[1], 3.0, 1e-5);
}

TEST(Lu, HandlesZeroPivotViaPivoting) {
  // a11 = 0 forces a row swap; matrix is well-conditioned.
  std::vector<real> a = {0, 1, 1, 0};
  std::vector<real> b = {2, 3};
  ASSERT_TRUE(lu_solve(a.data(), 2, b.data()));
  EXPECT_NEAR(b[0], 3.0, 1e-5);
  EXPECT_NEAR(b[1], 2.0, 1e-5);
}

TEST(Lu, FailsOnSingular) {
  std::vector<real> a = {1, 2, 2, 4};
  std::vector<real> b = {1, 2};
  EXPECT_FALSE(lu_solve(a.data(), 2, b.data()));
}

class LuVsCholesky : public ::testing::TestWithParam<int> {};

TEST_P(LuVsCholesky, AgreeOnSpdSystems) {
  const int k = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto spd = testing::random_spd(k, seed);
    Rng rng(seed);
    std::vector<real> b(static_cast<std::size_t>(k));
    for (auto& v : b) v = static_cast<real>(rng.uniform(-1.0, 1.0));

    std::vector<real> a1(spd.begin(), spd.end()), x1 = b;
    std::vector<real> a2(spd.begin(), spd.end()), x2 = b;
    ASSERT_TRUE(cholesky_solve(a1.data(), k, x1.data()));
    ASSERT_TRUE(lu_solve(a2.data(), k, x2.data()));
    for (int i = 0; i < k; ++i) EXPECT_NEAR(x1[static_cast<std::size_t>(i)], x2[static_cast<std::size_t>(i)], 2e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuVsCholesky, ::testing::Values(1, 2, 4, 10, 24));

TEST(Lu, LargeKHeapPath) {
  // k > 64 exercises the heap-allocated pivot vector.
  const int k = 80;
  auto spd = testing::random_spd(k, 7);
  std::vector<real> a(spd.begin(), spd.end());
  std::vector<real> b(static_cast<std::size_t>(k), 1.0f);
  EXPECT_TRUE(lu_solve(a.data(), k, b.data()));
}

TEST(Lu, FlopsExceedCholesky) {
  // LU does ~2x the factorization work of Cholesky — the basis of the
  // paper's S3 optimization claim.
  EXPECT_GT(lu_solve_flops(10), cholesky_solve_flops(10));
  EXPECT_GT(lu_solve_flops(100) / cholesky_solve_flops(100), 1.5);
}

}  // namespace
}  // namespace alsmf
