#include "linalg/vecops.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace alsmf {
namespace {

TEST(VecOps, Dot) {
  std::vector<real> a = {1, 2, 3};
  std::vector<real> b = {4, 5, 6};
  EXPECT_FLOAT_EQ(vdot(a.data(), b.data(), 3), 32.0f);
  EXPECT_FLOAT_EQ(vdot(a.data(), b.data(), 0), 0.0f);
}

TEST(VecOps, Axpy) {
  std::vector<real> x = {1, 2};
  std::vector<real> y = {10, 20};
  vaxpy(2.0f, x.data(), y.data(), 2);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(VecOps, Scale) {
  std::vector<real> y = {2, -4};
  vscale(0.5f, y.data(), 2);
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
}

TEST(VecOps, ZeroAndCopy) {
  std::vector<real> x = {1, 2, 3};
  std::vector<real> y(3);
  vcopy(x.data(), y.data(), 3);
  EXPECT_EQ(x, y);
  vzero(y.data(), 3);
  EXPECT_FLOAT_EQ(y[0] + y[1] + y[2], 0.0f);
}

TEST(VecOps, Norm2) {
  std::vector<real> a = {3, 4};
  EXPECT_DOUBLE_EQ(vnorm2(a.data(), 2), 25.0);
}

}  // namespace
}  // namespace alsmf
