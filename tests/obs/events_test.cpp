#include "obs/events.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/json.hpp"

namespace alsmf::obs {
namespace {

IterationEvent sample_event() {
  IterationEvent e;
  e.iteration = 3;
  e.variant = "fused+tiled";
  e.device = "gpu";
  e.row_solver = "cg";
  e.anderson_depth = 2;
  e.loss = 12.5;
  e.rmse = 0.75;
  e.modeled_seconds = 0.5;
  e.wall_seconds = 0.25;
  e.s1_modeled_s = 0.1;
  e.s2_modeled_s = 0.2;
  e.s3_modeled_s = 0.3;
  e.s1_wall_s = 0.01;
  e.s2_wall_s = 0.02;
  e.s3_wall_s = 0.03;
  e.guard_nonfinite_rows = 1;
  e.guard_redamped_rows = 2;
  e.guard_zeroed_rows = 3;
  e.solver_fallbacks = 4;
  e.kernel_relaunches = 5;
  return e;
}

// The event-stream schema is a contract with external consumers (plots,
// greps, dashboards): lock the exact serialized form.
TEST(Events, IterationEventJsonGolden) {
  const std::string expected =
      "{\"type\":\"iteration\",\"iteration\":3,\"variant\":\"fused+tiled\","
      "\"device\":\"gpu\",\"row_solver\":\"cg\",\"anderson_depth\":2,"
      "\"loss\":12.5,\"rmse\":0.75,"
      "\"modeled_seconds\":0.5,\"wall_seconds\":0.25,"
      "\"steps\":{\"modeled_s\":{\"s1\":0.1,\"s2\":0.2,\"s3\":0.3},"
      "\"wall_s\":{\"s1\":0.01,\"s2\":0.02,\"s3\":0.03}},"
      "\"guards\":{\"nonfinite_rows\":1,\"redamped_rows\":2,"
      "\"zeroed_rows\":3,\"solver_fallbacks\":4,\"kernel_relaunches\":5}}";
  EXPECT_EQ(sample_event().to_json(), expected);
}

TEST(Events, AccountingOnlyRunsExportNullQuality) {
  IterationEvent e;  // loss/rmse default to NaN
  e.iteration = 1;
  const std::string text = e.to_json();
  EXPECT_NE(text.find("\"loss\":null"), std::string::npos);
  EXPECT_NE(text.find("\"rmse\":null"), std::string::npos);
  const json::Value root = json::parse(text);
  EXPECT_TRUE(root.at("loss").is_null());
  EXPECT_TRUE(root.at("rmse").is_null());
}

TEST(Events, StreamWritesOneObjectPerLine) {
  EventStream stream;
  for (int i = 1; i <= 3; ++i) {
    IterationEvent e = sample_event();
    e.iteration = i;
    stream.emit(e);
  }
  EXPECT_EQ(stream.size(), 3u);

  std::istringstream lines(stream.to_jsonl());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    ++count;
    const json::Value root = json::parse(line);
    EXPECT_EQ(root.at("type").as_string(), "iteration");
    EXPECT_DOUBLE_EQ(root.at("iteration").as_double(), count);
    EXPECT_EQ(root.at("steps").at("modeled_s").members().size(), 3u);
    EXPECT_EQ(root.at("guards").members().size(), 5u);
  }
  EXPECT_EQ(count, 3);
}

TEST(Events, WriteFileRoundTrips) {
  EventStream stream;
  stream.emit(sample_event());
  const std::string path = ::testing::TempDir() + "/alsmf_events.jsonl";
  stream.write_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, sample_event().to_json());
  stream.clear();
  EXPECT_EQ(stream.size(), 0u);
}

}  // namespace
}  // namespace alsmf::obs
