// Concurrency coverage for the metrics registry: hot-path updates, racing
// get-or-create lookups and concurrent exposition. Runs under TSan in CI
// (the sanitizer job's ctest filter includes "Registry").
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace alsmf::obs {
namespace {

TEST(RegistryConcurrency, ParallelUpdatesOnSharedMetrics) {
  Registry reg;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < kIters; ++i) {
        // Look the metrics up every time: exercises find_or_create against
        // concurrent readers, not just the atomic update paths.
        reg.counter("ops_total").inc();
        reg.gauge("progress").add(1.0);
        reg.histogram("latency").observe(static_cast<double>(i % 100 + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.counter("ops_total").value(),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_DOUBLE_EQ(reg.gauge("progress").value(),
                   static_cast<double>(kThreads) * kIters);
  EXPECT_EQ(reg.histogram("latency").count(),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(RegistryConcurrency, CreationRacesYieldOneMetricPerIdentity) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 64; ++i) {
        reg.counter("family", {{"series", std::to_string(i)}}).inc();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(reg.counter("family", {{"series", std::to_string(i)}}).value(),
              static_cast<std::uint64_t>(kThreads));
  }
}

TEST(RegistryConcurrency, ExpositionRacesWriters) {
  Registry reg;
  reg.add_assertion("nonneg", [&reg] {
    return reg.gauge("g").value() >= 0 ? std::string() : "negative";
  });
  std::thread writer([&reg] {
    for (int i = 0; i < 2000; ++i) {
      reg.counter("c").inc();
      reg.gauge("g").set(static_cast<double>(i));
      reg.histogram("h").observe(1.0);
    }
  });
  std::thread reader([&reg] {
    for (int i = 0; i < 50; ++i) {
      const std::string text = reg.prometheus_text();
      EXPECT_FALSE(text.empty());
      const std::string doc = reg.json();
      EXPECT_FALSE(doc.empty());
      EXPECT_TRUE(reg.check_assertions().empty());
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(reg.counter("c").value(), 2000u);
}

}  // namespace
}  // namespace alsmf::obs
