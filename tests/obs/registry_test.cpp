#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "common/json.hpp"

namespace alsmf::obs {
namespace {

TEST(Registry, CounterGaugeHistogramBasics) {
  Registry reg;
  Counter& c = reg.counter("requests_total");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);

  Gauge& g = reg.gauge("queue_depth");
  g.set(3.0);
  g.add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  HistogramMetric& h = reg.histogram("latency_us");
  h.observe(10.0);
  h.observe(20.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_NEAR(h.mean(), 15.0, 2.0);  // log buckets quantize
  EXPECT_EQ(reg.size(), 3u);
}

TEST(Registry, GetOrCreateReturnsSameInstance) {
  Registry reg;
  Counter& a = reg.counter("hits", {{"kind", "topn"}});
  Counter& b = reg.counter("hits", {{"kind", "topn"}});
  Counter& other = reg.counter("hits", {{"kind", "score"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(other.value(), 0u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), Error);
  EXPECT_THROW(reg.histogram("x"), Error);
  EXPECT_THROW(reg.counter(""), Error);
}

TEST(Registry, PrometheusTextGolden) {
  Registry reg;
  reg.counter("requests_total", {{"kind", "topn"}}, "Total requests").inc(3);
  reg.counter("requests_total", {{"kind", "score"}}).inc(7);
  reg.gauge("temperature").set(2.5);
  const std::string expected =
      "# HELP requests_total Total requests\n"
      "# TYPE requests_total counter\n"
      "requests_total{kind=\"topn\"} 3\n"
      "requests_total{kind=\"score\"} 7\n"
      "# TYPE temperature gauge\n"
      "temperature 2.5\n";
  EXPECT_EQ(reg.prometheus_text(), expected);
}

TEST(Registry, PrometheusHistogramAsSummary) {
  Registry reg;
  HistogramMetric& h = reg.histogram("latency_us", {{"path", "exec"}});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# TYPE latency_us summary"), std::string::npos);
  EXPECT_NE(text.find("latency_us{path=\"exec\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("latency_us{path=\"exec\",quantile=\"0.9\"}"),
            std::string::npos);
  EXPECT_NE(text.find("latency_us{path=\"exec\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("latency_us_sum{path=\"exec\"}"), std::string::npos);
  EXPECT_NE(text.find("latency_us_count{path=\"exec\"} 100\n"),
            std::string::npos);
}

TEST(Registry, PrometheusLabelEscaping) {
  Registry reg;
  reg.counter("c", {{"path", "a\"b\\c\nd"}}).inc();
  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("c{path=\"a\\\"b\\\\c\\nd\"} 1\n"), std::string::npos);
}

TEST(Registry, JsonExpositionParses) {
  Registry reg;
  reg.counter("hits", {{"kind", "topn"}}).inc(2);
  reg.gauge("loss").set(0.25);
  reg.histogram("lat").observe(5.0);
  reg.add_assertion("always_fails", [] { return std::string("boom"); });

  const json::Value root = json::parse(reg.json());
  const auto& metrics = root.at("metrics").array();
  ASSERT_EQ(metrics.size(), 3u);
  EXPECT_EQ(metrics[0].at("name").as_string(), "hits");
  EXPECT_EQ(metrics[0].at("type").as_string(), "counter");
  EXPECT_EQ(metrics[0].at("labels").at("kind").as_string(), "topn");
  EXPECT_DOUBLE_EQ(metrics[0].at("value").as_double(), 2.0);
  EXPECT_EQ(metrics[1].at("type").as_string(), "gauge");
  EXPECT_DOUBLE_EQ(metrics[1].at("value").as_double(), 0.25);
  EXPECT_EQ(metrics[2].at("type").as_string(), "histogram");
  EXPECT_TRUE(metrics[2].at("value").is_object());
  const auto& violations = root.at("assertion_violations").array();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].as_string(), "always_fails: boom");
}

TEST(Registry, AssertionsReportOnlyViolations) {
  Registry reg;
  Counter& submitted = reg.counter("submitted");
  Counter& completed = reg.counter("completed");
  reg.add_assertion("conservation", [&] {
    return completed.value() <= submitted.value()
               ? std::string()
               : "completed > submitted";
  });
  EXPECT_TRUE(reg.check_assertions().empty());
  completed.inc(2);
  const auto violations = reg.check_assertions();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0], "conservation: completed > submitted");
  submitted.inc(2);
  EXPECT_TRUE(reg.check_assertions().empty());
  // Re-registering a name replaces the check.
  reg.add_assertion("conservation", [] { return std::string("replaced"); });
  ASSERT_EQ(reg.check_assertions().size(), 1u);
}

TEST(Registry, ResetZeroesButKeepsIdentities) {
  Registry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  HistogramMetric& h = reg.histogram("h");
  c.inc(9);
  g.set(4.0);
  h.observe(1.0);
  reg.reset();
  EXPECT_EQ(reg.size(), 3u);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(&c, &reg.counter("c"));  // handle still valid
}

TEST(Registry, GlobalIsAProcessSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

}  // namespace
}  // namespace alsmf::obs
