#include "obs/regress.hpp"

#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"

namespace alsmf::obs {
namespace {

RegressReport baseline_report() {
  RegressReport r;
  r.seed = 7;
  r.smoke = true;
  r.add("modeled_seconds", 1.0, "s");
  r.add("rmse", 0.8, "rmse");
  r.add("qps", 1000.0, "qps", /*lower_is_better=*/false, /*gate=*/false);
  r.add("completed", 500.0, "count", /*lower_is_better=*/false);
  return r;
}

TEST(Regress, UnchangedReportPasses) {
  const RegressReport base = baseline_report();
  const CompareResult result = compare_reports(base, base, 0.1);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.deltas.size(), 4u);
  EXPECT_TRUE(result.missing.empty());
  for (const auto& d : result.deltas) {
    EXPECT_FALSE(d.regressed);
    EXPECT_DOUBLE_EQ(d.ratio, 1.0);
  }
  EXPECT_NE(result.summary().find("PASS"), std::string::npos);
}

TEST(Regress, GatedMetricPastToleranceFails) {
  const RegressReport base = baseline_report();
  RegressReport cur = baseline_report();
  cur.metrics[0].value = 1.2;  // modeled_seconds +20%, lower is better
  EXPECT_TRUE(compare_reports(base, cur, 0.25).ok);
  const CompareResult fail = compare_reports(base, cur, 0.1);
  EXPECT_FALSE(fail.ok);
  ASSERT_FALSE(fail.deltas.empty());
  EXPECT_TRUE(fail.deltas[0].regressed);
  EXPECT_NE(fail.summary().find("REGRESSED"), std::string::npos);
  EXPECT_NE(fail.summary().find("FAIL"), std::string::npos);
}

TEST(Regress, ImprovementsNeverFail) {
  const RegressReport base = baseline_report();
  RegressReport cur = baseline_report();
  cur.metrics[0].value = 0.1;   // 10x faster
  cur.metrics[1].value = 0.01;  // much better rmse
  cur.metrics[3].value = 5000;  // higher-is-better metric up
  EXPECT_TRUE(compare_reports(base, cur, 0.05).ok);
}

TEST(Regress, HigherIsBetterDirection) {
  const RegressReport base = baseline_report();
  RegressReport cur = baseline_report();
  cur.metrics[3].value = 400.0;  // completed dropped 20%
  EXPECT_FALSE(compare_reports(base, cur, 0.1).ok);
  EXPECT_TRUE(compare_reports(base, cur, 0.25).ok);
}

TEST(Regress, UngatedMetricsAreInformational) {
  const RegressReport base = baseline_report();
  RegressReport cur = baseline_report();
  cur.metrics[2].value = 1.0;  // qps collapsed, but gate=false
  const CompareResult result = compare_reports(base, cur, 0.1);
  EXPECT_TRUE(result.ok);
  EXPECT_NE(result.summary().find("[info]"), std::string::npos);
}

TEST(Regress, MissingGatedMetricFailsMissingUngatedDoesNot) {
  const RegressReport base = baseline_report();
  RegressReport cur = baseline_report();
  cur.metrics.erase(cur.metrics.begin() + 2);  // drop qps (gate=false)
  EXPECT_TRUE(compare_reports(base, cur, 0.1).ok);
  cur.metrics.erase(cur.metrics.begin());  // drop modeled_seconds (gated)
  const CompareResult result = compare_reports(base, cur, 0.1);
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_EQ(result.missing[0], "modeled_seconds");
  EXPECT_NE(result.summary().find("MISSING"), std::string::npos);
}

TEST(Regress, ZeroBaselineComparesAbsolutely) {
  RegressReport base;
  base.add("violations", 0.0, "count");
  RegressReport cur;
  cur.add("violations", 1.0, "count");
  EXPECT_FALSE(compare_reports(base, cur, 0.5).ok);
  cur.metrics[0].value = 0.0;
  EXPECT_TRUE(compare_reports(base, cur, 0.5).ok);
}

TEST(Regress, JsonRoundTripPreservesEverything) {
  const RegressReport base = baseline_report();
  const RegressReport parsed = RegressReport::from_json(base.to_json());
  EXPECT_EQ(parsed.schema_version, 1);
  EXPECT_EQ(parsed.suite, base.suite);
  EXPECT_EQ(parsed.seed, 7u);
  EXPECT_TRUE(parsed.smoke);
  ASSERT_EQ(parsed.metrics.size(), base.metrics.size());
  for (std::size_t i = 0; i < parsed.metrics.size(); ++i) {
    EXPECT_EQ(parsed.metrics[i].name, base.metrics[i].name);
    EXPECT_DOUBLE_EQ(parsed.metrics[i].value, base.metrics[i].value);
    EXPECT_EQ(parsed.metrics[i].unit, base.metrics[i].unit);
    EXPECT_EQ(parsed.metrics[i].lower_is_better,
              base.metrics[i].lower_is_better);
    EXPECT_EQ(parsed.metrics[i].gate, base.metrics[i].gate);
  }
}

TEST(Regress, FileRoundTripAndErrors) {
  const std::string path = ::testing::TempDir() + "/alsmf_regress.json";
  baseline_report().write_file(path);
  const RegressReport loaded = RegressReport::load_file(path);
  EXPECT_EQ(loaded.metrics.size(), 4u);
  EXPECT_NE(loaded.find("modeled_seconds"), nullptr);
  EXPECT_EQ(loaded.find("nope"), nullptr);
  EXPECT_THROW(RegressReport::load_file("/nonexistent/alsmf.json"), Error);
  EXPECT_THROW(RegressReport::from_json("[]"), Error);
  EXPECT_THROW(RegressReport::from_json(
                   "{\"schema_version\":99,\"suite\":\"s\",\"seed\":1,"
                   "\"smoke\":false,\"metrics\":[]}"),
               Error);
  EXPECT_THROW(compare_reports(baseline_report(), baseline_report(), -1.0),
               Error);
}

}  // namespace
}  // namespace alsmf::obs
