// Front-end and lowering tests: every generated kernel source must parse
// into the access IR with the structure the generator promises (loop kinds,
// coalescing classes, staging, lane-0 solve), because everything downstream
// (deep lint, static profiles, zero-run ranking) trusts these facts.
#include <gtest/gtest.h>

#include <string>

#include "ocl/analyze/ir.hpp"
#include "ocl/analyze/parser.hpp"
#include "ocl/kernel_source.hpp"

namespace alsmf::ocl::analyze {
namespace {

KernelConfig config(int k = 10, int ws = 32) {
  KernelConfig c;
  c.k = k;
  c.group_size = ws;
  return c;
}

KernelIR lower_one(const std::string& source) {
  const auto kernels = lower_kernels(parse_translation_unit(source));
  EXPECT_EQ(kernels.size(), 1u);
  return kernels.front();
}

TEST(AnalyzeIr, AllBatchedVariantsLowerWithMatchingStructure) {
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    const KernelIR ir = lower_one(batched_kernel_source(v, config()));
    EXPECT_EQ(ir.name, kernel_name(v));
    EXPECT_TRUE(ir.batched_mapping) << v.name();
    EXPECT_EQ(ir.k, 10);
    EXPECT_EQ(ir.ws, 32);
    // Structural flags mirror the variant toggles.
    EXPECT_EQ(ir.has_unrolled_accumulators, v.use_registers) << v.name();
    EXPECT_EQ(ir.has_local_staging, v.use_local) << v.name();
    EXPECT_EQ(ir.has_vector_ops, v.use_vectors) << v.name();
    // Every batched variant solves the k×k system on lane 0.
    EXPECT_TRUE(ir.has_lane0_solve) << v.name();
    // Every argument of a generated kernel is live.
    for (const auto& a : ir.args) EXPECT_TRUE(a.used) << v.name() << " " << a.name;
  }
}

TEST(AnalyzeIr, BatchedRowLoopIsStridedAndNnzLoopsDetected) {
  const KernelIR ir =
      lower_one(batched_kernel_source(AlsVariant::batching_only(), config()));
  bool has_row_stride = false, has_nnz = false;
  for (const auto& l : ir.loops) {
    has_row_stride |= l.kind == LoopIR::Kind::kRowStride;
    has_nnz |= l.kind == LoopIR::Kind::kNnz;
  }
  EXPECT_TRUE(has_row_stride);
  EXPECT_TRUE(has_nnz);
}

TEST(AnalyzeIr, LocalVariantChunksTheNnzLoopAndDeclaresTile) {
  const KernelIR ir =
      lower_one(batched_kernel_source(AlsVariant::batch_local(), config()));
  bool has_chunked = false, has_chunk_body = false;
  for (const auto& l : ir.loops) {
    has_chunked |= l.kind == LoopIR::Kind::kChunked;
    has_chunk_body |= l.kind == LoopIR::Kind::kChunkBody;
  }
  EXPECT_TRUE(has_chunked);
  EXPECT_TRUE(has_chunk_body);
  // tile[TILE_ROWS * K] + rstage[TILE_ROWS] + the shared solve buffers.
  EXPECT_GT(ir.declared_local_bytes(), 0);
  EXPECT_FALSE(ir.barriers.empty());
  bool hot_barrier = false;
  for (const auto& b : ir.barriers) hot_barrier |= b.freq.per_chunk > 0;
  EXPECT_TRUE(hot_barrier);
}

TEST(AnalyzeIr, FlatKernelIsUnbatchedWithGatheredTraversal) {
  const KernelIR ir = lower_one(flat_kernel_source(config()));
  EXPECT_EQ(ir.name, "als_update_flat");
  EXPECT_FALSE(ir.batched_mapping);
  EXPECT_FALSE(ir.has_lane0_solve);
  // The factor rows are gathered through col_idx — the flat baseline's
  // divergence/coalescing weakness the paper's §III-B targets.
  bool gathered_y = false;
  for (const auto& t : ir.traffic) {
    gathered_y |= t.kind == TrafficIR::Kind::kGatherTraversal &&
                  t.buffer == "Y" && t.freq.per_nnz > 0;
  }
  EXPECT_TRUE(gathered_y);
}

TEST(AnalyzeIr, SellKernelHasDataDependentLoopAndUnitStrideSegments) {
  const KernelIR ir = lower_one(sell_kernel_source(config()));
  EXPECT_EQ(ir.name, "als_update_flat_sell");
  EXPECT_FALSE(ir.batched_mapping);
  bool data_dep = false;
  for (const auto& l : ir.loops) data_dep |= l.kind == LoopIR::Kind::kDataDep;
  EXPECT_TRUE(data_dep);
  // The format-side remedy: the CSR segment loads become unit-stride while
  // the factor rows stay gathered.
  bool unit_values = false, unit_cols = false, gathered_y = false;
  for (const auto& r : ir.refs) {
    if (!r.hot) continue;
    if (r.buffer == "values")
      unit_values |= r.coalescing == Coalescing::kUnitStride;
    if (r.buffer == "col_idx")
      unit_cols |= r.coalescing == Coalescing::kUnitStride;
    if (r.buffer == "Y") gathered_y |= r.coalescing == Coalescing::kGathered;
  }
  EXPECT_TRUE(unit_values);
  EXPECT_TRUE(unit_cols);
  EXPECT_TRUE(gathered_y);
  for (const auto& a : ir.args) EXPECT_TRUE(a.used) << a.name;
}

TEST(AnalyzeIr, NoGlobalStoresInHotLoops) {
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    const KernelIR ir = lower_one(batched_kernel_source(v, config()));
    for (const auto& r : ir.refs) {
      if (r.space != MemSpace::kGlobal || !r.is_store) continue;
      EXPECT_FALSE(r.hot) << v.name() << " stores to " << r.buffer
                          << " inside a hot loop";
    }
  }
}

TEST(AnalyzeIr, UnanalyzableLoopThrowsParseErrorWithLine) {
  const std::string src =
      "__kernel void f(__global float* out) {\n"
      "  int i = 0;\n"
      "  while (i < 4) { out[i] = 0; ++i; }\n"
      "}\n";
  try {
    lower_kernels(parse_translation_unit(src));
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.line, 1);
    EXPECT_FALSE(e.message.empty());
  }
}

}  // namespace
}  // namespace alsmf::ocl::analyze
