// Deep-lint diagnostics: each check is exercised with a minimal synthetic
// kernel that provably has the defect, and the generated kernels are pinned
// clean — the analyze-kernels CI gate depends on both directions.
#include "ocl/analyze/deep_lint.hpp"

#include <gtest/gtest.h>

#include <string>

#include "ocl/kernel_source.hpp"

namespace alsmf::ocl::analyze {
namespace {

bool mentions(const LintReport& r, const std::string& needle) {
  return r.to_string().find(needle) != std::string::npos;
}

const char* kPreamble =
    "typedef float real_t;\n"
    "#define K 10\n"
    "#define WS 32\n";

TEST(DeepLint, GeneratedKernelsAreClean) {
  KernelConfig c;
  DeepLintOptions options;
  options.local_capacity_bytes = 48 * 1024;  // the paper's K20c scratch-pad
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    const LintReport r =
        deep_lint_kernel_source(batched_kernel_source(v, c), options);
    EXPECT_TRUE(r.clean()) << v.name() << ":\n" << r.to_string();
  }
  EXPECT_TRUE(deep_lint_kernel_source(flat_kernel_source(c), options).clean());
  EXPECT_TRUE(deep_lint_kernel_source(sell_kernel_source(c), options).clean());
}

TEST(DeepLint, FlagsUncoalescedStoreInHotLoop) {
  // One lane scatters through an index array on every nonzero.
  const std::string src = std::string(kPreamble) +
      "__kernel void f(__global const int* row_ptr,\n"
      "                __global const int* col_idx,\n"
      "                __global real_t* out) {\n"
      "  const int u = get_group_id(0);\n"
      "  const int begin = row_ptr[u];\n"
      "  const int omega = row_ptr[u + 1] - begin;\n"
      "  for (int z = 0; z < omega; ++z) {\n"
      "    out[col_idx[begin + z] * K] = (real_t)z;\n"
      "  }\n"
      "}\n";
  const LintReport r = deep_lint_kernel_source(src);
  ASSERT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "uncoalesced")) << r.to_string();
  EXPECT_TRUE(mentions(r, "'out'")) << r.to_string();
  // IR-anchored diagnostics carry a clickable line:col position.
  bool positioned = false;
  for (const auto& issue : r.issues) {
    if (issue.message.find("uncoalesced") == std::string::npos) continue;
    EXPECT_GT(issue.line, 0);
    EXPECT_GT(issue.col, 0);
    positioned = true;
    EXPECT_NE(r.to_string().find("line " + std::to_string(issue.line) + ":" +
                                 std::to_string(issue.col) + ":"),
              std::string::npos)
        << r.to_string();
  }
  EXPECT_TRUE(positioned);
}

TEST(DeepLint, ProvesLocalOverflow) {
  const std::string src = std::string(kPreamble) +
      "__kernel void f(__global real_t* out) {\n"
      "  __local real_t tile[4096];\n"  // 16 KiB
      "  const int lx = get_local_id(0);\n"
      "  tile[lx] = (real_t)lx;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  out[get_global_id(0)] = tile[0];\n"
      "}\n";
  DeepLintOptions options;
  options.local_capacity_bytes = 8 * 1024;
  const LintReport r = deep_lint_kernel_source(src, options);
  ASSERT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "exceeding")) << r.to_string();
  options.local_capacity_bytes = 32 * 1024;
  EXPECT_TRUE(deep_lint_kernel_source(src, options).clean());
}

TEST(DeepLint, FlagsWorkGroupNarrowerThanK) {
  // WS=8 < K=10: the (lx < K) guarded reduction drops two rows.
  const std::string src =
      "typedef float real_t;\n#define K 10\n#define WS 8\n"
      "__kernel void f(__global real_t* out) {\n"
      "  const int lx = get_local_id(0);\n"
      "  if (lx < K) out[lx] = (real_t)1;\n"
      "}\n";
  const LintReport r = deep_lint_kernel_source(src);
  ASSERT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "smaller than K")) << r.to_string();
}

TEST(DeepLint, FlagsStagedTileReadWithoutBarrier) {
  // Lane-partitioned cooperative fill, then a whole-tile read with no
  // barrier in between: lanes read other lanes' stale elements.
  const std::string src = std::string(kPreamble) +
      "__kernel void f(__global const int* row_ptr,\n"
      "                __global const real_t* src,\n"
      "                __global real_t* out) {\n"
      "  __local real_t tile[64];\n"
      "  const int u = get_group_id(0);\n"
      "  const int lx = get_local_id(0);\n"
      "  const int begin = row_ptr[u];\n"
      "  const int omega = row_ptr[u + 1] - begin;\n"
      "  real_t acc = (real_t)0;\n"
      "  for (int z = lx; z < omega; z += WS) tile[z] = src[begin + z];\n"
      "  for (int z = 0; z < omega; ++z) acc += tile[z];\n"
      "  if (lx == 0) out[u] = acc;\n"
      "}\n";
  const LintReport r = deep_lint_kernel_source(src);
  ASSERT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "without a barrier")) << r.to_string();

  // The same kernel with the fence is clean.
  std::string fixed = src;
  const std::string read_loop = "  for (int z = 0; z < omega; ++z)";
  fixed.insert(fixed.find(read_loop), "  barrier(CLK_LOCAL_MEM_FENCE);\n");
  EXPECT_TRUE(deep_lint_kernel_source(fixed).clean())
      << deep_lint_kernel_source(fixed).to_string();
}

TEST(DeepLint, FlagsUnusedKernelArgument) {
  const std::string src = std::string(kPreamble) +
      "__kernel void f(__global real_t* out, __global const real_t* dead,\n"
      "                const real_t lambda) {\n"
      "  out[get_global_id(0)] = lambda;\n"
      "}\n";
  const LintReport r = deep_lint_kernel_source(src);
  ASSERT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "'dead' is never used")) << r.to_string();
  EXPECT_FALSE(mentions(r, "'lambda'")) << r.to_string();
}

TEST(DeepLint, UnanalyzableSourceFailsTheGate) {
  // Structurally fine (balanced, one kernel) but outside the analyzable
  // subset: must produce a diagnostic, not silently pass.
  const std::string src = std::string(kPreamble) +
      "__kernel void f(__global real_t* out) {\n"
      "  int i = 0;\n"
      "  while (i < 4) { out[i] = (real_t)i; ++i; }\n"
      "}\n";
  const LintReport r = deep_lint_kernel_source(src);
  ASSERT_FALSE(r.clean());
  EXPECT_TRUE(mentions(r, "unanalyzable")) << r.to_string();
}

}  // namespace
}  // namespace alsmf::ocl::analyze
