// The defect-injection corpus: every deliberately broken kernel must be
// flagged with the expected defect class by BOTH checking legs —
//
//   static leg   parse -> access IR -> bounds/race verifier under the ALS
//                contracts (fail closed: unprovable counts as flagged),
//   dynamic leg  the checked AST interpreter executed on the devsim device
//                under LaunchConfig.validate, i.e. the shadow-memory
//                checker watching the mutated kernel text itself.
//
// The corpus is the evidence that the verifier's verdicts mean something:
// a mutation only enters tests/testing/kernel_mutator.hpp if checked
// dynamic execution independently witnesses the same defect.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "als/verify_kernels.hpp"
#include "devsim/check/defects.hpp"
#include "devsim/device.hpp"
#include "devsim/profile.hpp"
#include "ocl/analyze/interp.hpp"
#include "testing/kernel_mutator.hpp"

namespace alsmf {
namespace {

using devsim::check::DefectClass;
using ocl::analyze::InterpArg;
using ocl::analyze::InterpKernel;
using testing::KernelMutation;

// TILE_ROWS=4 keeps the staging tile small enough that the corpus dataset
// exercises multiple chunks per row (stale-tile and overflow mutants).
ocl::KernelConfig corpus_config() {
  ocl::KernelConfig kc;
  kc.k = 10;
  kc.group_size = 32;
  kc.tile_rows = 4;
  return kc;
}

struct CorpusData {
  std::vector<int> row_ptr, col_idx;
  std::vector<float> values, y, x;
  int rows = 8, cols = 8, k = 10;
};

// Hand-built CSR chosen so every mutation's defect is dynamically
// reachable: row 0 has 6 nonzeros (two TILE_ROWS=4 chunks, and a full
// first chunk reaching staging lane p=3), row 1 touches column cols-1 (an
// off-by-one gather walks past the end of Y), and rows == cols puts the
// aliased-output store of every row inside Y's extent so it races instead
// of merely overflowing.
CorpusData corpus_data() {
  CorpusData d;
  const std::vector<std::vector<int>> cols_of = {
      {0, 1, 2, 3, 4, 5}, {2, 7}, {0, 3}, {1, 4},
      {5, 6}, {0, 7}, {3, 6}, {2, 5}};
  d.row_ptr.push_back(0);
  for (const auto& cs : cols_of) {
    for (int c : cs) {
      d.col_idx.push_back(c);
      d.values.push_back(0.5f + 0.1f * static_cast<float>(d.col_idx.size()));
    }
    d.row_ptr.push_back(static_cast<int>(d.col_idx.size()));
  }
  d.y.resize(static_cast<std::size_t>(d.k) * d.cols);
  for (std::size_t i = 0; i < d.y.size(); ++i) {
    d.y[i] = 0.05f + 0.01f * static_cast<float>(i % 13);
  }
  d.x.assign(static_cast<std::size_t>(d.k) * d.rows, 0.0f);
  return d;
}

// Interprets `kernel` from `source` on the devsim device under checked
// execution and returns the accumulated findings. num_groups=2 exercises
// both the row-stride loop (batched kernels) and cross-group detection;
// for the flat kernel 2x32 lanes deliberately exceed rows=8 so a dropped
// launch guard sends tail lanes out of bounds.
devsim::check::CheckReport interpret_checked(const std::string& source,
                                             const std::string& kernel,
                                             CorpusData& d) {
  InterpKernel ik(source, kernel);
  const std::size_t num_groups = 2;
  ik.set_num_groups(static_cast<long>(num_groups));
  const std::vector<InterpArg> args = {
      InterpArg::real_buffer(d.values), InterpArg::int_buffer(d.col_idx),
      InterpArg::int_buffer(d.row_ptr), InterpArg::real_buffer(d.y),
      InterpArg::real_buffer(d.x),      InterpArg::int_scalar(d.rows),
      InterpArg::real_scalar(0.1)};
  devsim::Device device(devsim::k20c());
  devsim::LaunchConfig lc;
  lc.num_groups = num_groups;
  lc.group_size = 32;
  lc.validate = true;
  const auto result = device.launch(
      "corpus", lc, [&](devsim::GroupCtx& ctx) { ik.run_group(ctx, args); });
  return result.check;
}

std::set<DefectClass> static_classes(const VerifySourceResult& sr) {
  std::set<DefectClass> classes;
  // Fail-closed mapping: any non-proven verdict flags the defect class of
  // its location — an unprovable global ref is still a flagged global
  // bounds defect, exactly like a proven violation.
  for (const auto& report : sr.reports) {
    for (const auto& f : report.bounds_findings) {
      classes.insert(f.space == ocl::analyze::MemSpace::kGlobal
                         ? DefectClass::kBoundsGlobal
                         : DefectClass::kBoundsLocal);
    }
    for (const auto& f : report.race_findings) {
      classes.insert(f.cross_group ? DefectClass::kRaceCrossGroup
                                   : DefectClass::kRaceIntraGroup);
    }
  }
  return classes;
}

std::set<DefectClass> dynamic_classes(const devsim::check::CheckReport& rep) {
  std::set<DefectClass> classes;
  for (const auto& f : rep.findings) {
    classes.insert(devsim::check::defect_class(f.kind));
  }
  return classes;
}

TEST(DefectCorpus, CleanKernelsPassBothLegs) {
  const ocl::KernelConfig kc = corpus_config();
  std::set<std::string> seen;
  for (const KernelMutation& m : testing::kernel_mutations()) {
    if (!seen.insert(m.kernel).second) continue;
    SCOPED_TRACE(m.kernel);
    const std::string source = testing::base_source(m, kc);

    const VerifySourceResult sr = verify_kernel_source(source);
    EXPECT_TRUE(sr.clean());
    for (const auto& report : sr.reports) {
      for (const auto& d : verify_diagnostics(m.kernel, report)) {
        ADD_FAILURE() << d;
      }
    }

    CorpusData d = corpus_data();
    const auto check = interpret_checked(source, m.kernel, d);
    EXPECT_TRUE(check.clean()) << check.findings.size() << " findings";
    bool finite = true, nonzero = false;
    for (float v : d.x) {
      if (!std::isfinite(v)) finite = false;
      if (v != 0.0f) nonzero = true;
    }
    EXPECT_TRUE(finite);
    EXPECT_TRUE(nonzero);
  }
}

TEST(DefectCorpus, EveryMutationFlaggedByBothLegs) {
  const ocl::KernelConfig kc = corpus_config();
  const auto mutations = testing::kernel_mutations();
  ASSERT_GE(mutations.size(), 7u);
  for (const KernelMutation& m : mutations) {
    SCOPED_TRACE(m.name);
    const std::string source = testing::mutated_source(m, kc);

    // Static leg.
    const VerifySourceResult sr = verify_kernel_source(source);
    EXPECT_FALSE(sr.clean());
    const auto sclasses = static_classes(sr);
    EXPECT_TRUE(sclasses.count(m.expected))
        << "static leg missed " << to_string(m.expected);
    if (!m.static_unprovable_only) {
      // The verifier must actually prove the defect, not just give up.
      bool proven = false;
      for (const auto& report : sr.reports) {
        for (const auto& f : report.bounds_findings) {
          proven |= f.verdict ==
                    ocl::analyze::verify::BoundsVerdict::kProvenViolating;
        }
        for (const auto& f : report.race_findings) {
          proven |=
              f.verdict == ocl::analyze::verify::RaceVerdict::kProvenRace;
        }
      }
      EXPECT_TRUE(proven);
    }

    // Dynamic leg.
    CorpusData d = corpus_data();
    const auto check = interpret_checked(source, m.kernel, d);
    EXPECT_FALSE(check.clean());
    const auto dclasses = dynamic_classes(check);
    EXPECT_TRUE(dclasses.count(m.expected))
        << "dynamic leg missed " << to_string(m.expected);
  }
}

TEST(DefectCorpus, MutatorRejectsStaleAnchors) {
  KernelMutation m;
  m.name = "bogus";
  m.kernel = "als_update_flat";
  m.find = "this anchor does not exist";
  m.replace = "";
  EXPECT_THROW(testing::mutated_source(m, corpus_config()),
               std::runtime_error);
}

}  // namespace
}  // namespace alsmf
