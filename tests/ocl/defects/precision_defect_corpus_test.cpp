// Precision defect corpus: deliberately narrowed accumulators in the
// mixed-precision kernels must be flagged by BOTH certification legs —
//
//   static leg   the precision analyzer reports a gated overflow-possible
//                finding (the accumulator's exact-value interval crosses
//                the fp16 finite ceiling under the certified assumptions),
//   dynamic leg  the shadow-precision witness, driven by the dense
//                overflow-probe row (omega_max ratings at the assumption
//                ceilings), observes a non-finite value in the shadow
//                output.
//
// This is the evidence that the certificates mean something: the exact
// defect the mixed-precision design must prevent (accumulating in
// storage_t instead of real_t) is caught before and during execution.
// Suite name deliberately contains "DefectCorpus" — CI runs all corpus
// suites under ASan via that filter.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ocl/analyze/precision/precision.hpp"
#include "ocl/analyze/precision/shadow.hpp"
#include "ocl/kernel_flavors.hpp"
#include "testing/kernel_mutator.hpp"

namespace alsmf {
namespace {

namespace prec = ocl::analyze::precision;

/// A mutation that narrows an accumulator to storage_t. Reuses the
/// exact-anchor rewrite of testing::apply_mutation; the expected defect is
/// precision overflow rather than a memory-safety class, so the entries
/// live here instead of kernel_mutations().
struct PrecisionMutation {
  std::string name;
  std::string kernel;
  std::string find;
  std::string replace;
};

std::vector<PrecisionMutation> precision_mutations() {
  return {
      // The ISSUE's canonical defect: the staged kernel's scalar reduction
      // accumulator narrowed to fp16 (omega_max·R·F = 81920 >> 65504).
      {"narrow_reduction_accumulator", "als_update_batch_local_f16",
       "    real_t rsum = (real_t)0;\n",
       "    storage_t rsum = (storage_t)0;\n"},
      // The per-lane dot-product array narrowed to fp16: accumulates
      // factor·factor products past the ceiling.
      {"narrow_sum_array", "als_update_batch_f16",
       "    real_t sum[K];\n",
       "    storage_t sum[K];\n"},
  };
}

std::string flavor_source(const std::string& kernel) {
  for (const ocl::KernelFlavor& f :
       ocl::enumerate_kernel_flavors(ocl::KernelConfig{})) {
    if (f.name == kernel) return f.source;
  }
  ADD_FAILURE() << "unknown flavor " << kernel;
  return "";
}

prec::ShadowWitnessConfig probe_config() {
  prec::ShadowWitnessConfig wc;
  // The dense probe row: omega_max max-magnitude ratings against
  // max-magnitude factors, the input that drives a narrowed accumulator
  // past 65504 while staying inside the certificate's assumptions.
  wc.dense_row_nnz = static_cast<int>(wc.assumptions.omega_max);
  return wc;
}

TEST(PrecisionDefectCorpus, StaticLegFlagsEveryMutant) {
  const prec::PrecisionAssumptions as;
  for (const PrecisionMutation& m : precision_mutations()) {
    testing::KernelMutation km;
    km.name = m.name;
    km.find = m.find;
    km.replace = m.replace;
    const std::string src =
        testing::apply_mutation(flavor_source(m.kernel), km);
    const prec::PrecisionReport r =
        prec::analyze_source_precision(src, as)[0];
    EXPECT_FALSE(r.certified) << m.name;
    bool overflow_flagged = false;
    for (const auto& f : r.findings) {
      if (f.kind == prec::PrecisionFinding::Kind::kOverflowPossible) {
        overflow_flagged = true;
        EXPECT_TRUE(prec::gates_certification(f.kind));
        // The flagged interval actually crosses the fp16 ceiling.
        EXPECT_GT(std::max(-f.lo, f.hi), 65504.0) << m.name;
      }
    }
    EXPECT_TRUE(overflow_flagged)
        << m.name << ": no overflow-possible finding";
  }
}

TEST(PrecisionDefectCorpus, DynamicLegWitnessesEveryMutant) {
  for (const PrecisionMutation& m : precision_mutations()) {
    testing::KernelMutation km;
    km.name = m.name;
    km.find = m.find;
    km.replace = m.replace;
    const std::string src =
        testing::apply_mutation(flavor_source(m.kernel), km);
    const prec::ShadowWitness w = prec::run_shadow_witness(
        src, m.kernel, StoragePrecision::kFp16, probe_config());
    ASSERT_TRUE(w.ran) << m.name;
    EXPECT_TRUE(w.overflow_observed)
        << m.name << ": dense probe did not overflow the narrow accumulator";
  }
}

TEST(PrecisionDefectCorpus, UnmutatedKernelsSurviveTheSameProbe) {
  // The probe's power comes from discriminating: the legitimate kernels
  // (real_t accumulation) run the identical dense row without overflow and
  // stay certified — so a corpus hit is the defect, not the probe.
  const prec::PrecisionAssumptions as;
  for (const PrecisionMutation& m : precision_mutations()) {
    const std::string src = flavor_source(m.kernel);
    const prec::PrecisionReport r =
        prec::analyze_source_precision(src, as)[0];
    EXPECT_TRUE(r.certified) << m.kernel;
    const prec::ShadowWitness w = prec::run_shadow_witness(
        src, m.kernel, StoragePrecision::kFp16, probe_config());
    ASSERT_TRUE(w.ran) << m.kernel;
    EXPECT_FALSE(w.overflow_observed) << m.kernel;
    EXPECT_GT(w.observed_err, 0.0) << m.kernel;
    EXPECT_LE(w.observed_err, r.output.err) << m.kernel;
  }
}

}  // namespace
}  // namespace alsmf
