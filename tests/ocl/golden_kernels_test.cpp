// Golden-hash pinning of the kernel generator's output (what export_kernels
// writes): an unreviewed byte change to any emitted OpenCL source fails
// here. The sources are the deployment artifact — drift must be deliberate.
//
// The flavor list comes from enumerate_kernel_flavors, so a new flavor
// family fails the count assertion below until its hashes are pinned.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ocl/kernel_flavors.hpp"
#include "robust/crc32.hpp"
#include "testing/golden.hpp"

namespace alsmf::ocl {
namespace {

// CRC-32 (robust/crc32.hpp) of each generated source at the default
// configuration (k=10, WS=32, TILE_ROWS=256, float compute), in the pinned
// sweep order: flat, 8 batched cholesky, 8 batched cg, SELL, then the 8
// batched cholesky variants × {fp16, bf16} storage.
//
// Regenerating after a DELIBERATE generator change: run the test; each
// mismatch prints the new hash in this table's format — paste it here and
// re-review the emitted source (`build/examples/export_kernels --out DIR`
// writes the .cl files for inspection).
const std::vector<std::pair<std::string, std::uint32_t>> kGolden = {
    {"als_update_flat", 0x79497cc7u},
    {"als_update_batch", 0x457af81du},
    {"als_update_batch_reg", 0x1a2ac42du},
    {"als_update_batch_local", 0x22139236u},
    {"als_update_batch_local_reg", 0xa1c374ffu},
    {"als_update_batch_vec", 0x019dcfb7u},
    {"als_update_batch_reg_vec", 0xc6b2d618u},
    {"als_update_batch_local_vec", 0x5ca36e84u},
    {"als_update_batch_local_reg_vec", 0x819b91c6u},
    {"als_update_batch_cg", 0xa9afc7c8u},
    {"als_update_batch_reg_cg", 0xd270faa7u},
    {"als_update_batch_local_cg", 0x42e3769bu},
    {"als_update_batch_local_reg_cg", 0x5a6dd34eu},
    {"als_update_batch_vec_cg", 0xa3f4bafcu},
    {"als_update_batch_reg_vec_cg", 0x94b3a95au},
    {"als_update_batch_local_vec_cg", 0x283870f1u},
    {"als_update_batch_local_reg_vec_cg", 0x2e23c6c2u},
    {"als_update_flat_sell", 0xfd6b2f65u},
    {"als_update_batch_f16", 0xf4bc8155u},
    {"als_update_batch_reg_f16", 0x0a4b0b19u},
    {"als_update_batch_local_f16", 0xdf071a55u},
    {"als_update_batch_local_reg_f16", 0x4f5a08c1u},
    {"als_update_batch_vec_f16", 0x3a1966bau},
    {"als_update_batch_reg_vec_f16", 0xf2a23872u},
    {"als_update_batch_local_vec_f16", 0xfe016964u},
    {"als_update_batch_local_reg_vec_f16", 0x392f0f26u},
    {"als_update_batch_bf16", 0x61004c26u},
    {"als_update_batch_reg_bf16", 0x177c2074u},
    {"als_update_batch_local_bf16", 0x471e4de2u},
    {"als_update_batch_local_reg_bf16", 0xd64a8757u},
    {"als_update_batch_vec_bf16", 0x9130118bu},
    {"als_update_batch_reg_vec_bf16", 0x0af87036u},
    {"als_update_batch_local_vec_bf16", 0xc0a419d9u},
    {"als_update_batch_local_reg_vec_bf16", 0x072fdd63u},
};

constexpr char kRegen[] = "export_kernels --out <dir>";

TEST(GoldenKernels, EveryGeneratedSourceMatchesItsPinnedHash) {
  const KernelConfig c;  // defaults = what export_kernels emits
  const std::vector<KernelFlavor> flavors = enumerate_kernel_flavors(c);
  // flat + SELL + 8 cholesky + 8 cg + 8 fp16 + 8 bf16.
  ASSERT_EQ(kGolden.size(), 4 * AlsVariant::kVariantCount + 2)
      << "a kernel flavor family was added or removed: extend kGolden";
  ASSERT_EQ(flavors.size(), kGolden.size());
  for (std::size_t i = 0; i < flavors.size(); ++i) {
    // The table is in enumeration order, so a reordered sweep fails loudly
    // instead of silently pinning the wrong source to a name.
    ASSERT_EQ(flavors[i].name, kGolden[i].first) << "flavor order drifted";
    testing::expect_golden_crc(flavors[i].name, flavors[i].source,
                               kGolden[i].second, kRegen);
  }
}

TEST(GoldenKernels, HashesAreConfigSensitive) {
  // Sanity of the pinning itself: a different build configuration must not
  // collide with the golden hashes (k and WS are baked into the preamble).
  KernelConfig c;
  c.k = 12;
  std::map<std::string, std::uint32_t> want(kGolden.begin(), kGolden.end());
  for (const KernelFlavor& f : enumerate_kernel_flavors(c)) {
    EXPECT_NE(robust::crc32(f.source.data(), f.source.size()), want.at(f.name))
        << f.name;
  }
}

}  // namespace
}  // namespace alsmf::ocl
