// Golden-hash pinning of the kernel generator's output (what export_kernels
// writes): an unreviewed byte change to any emitted OpenCL source fails
// here. The sources are the deployment artifact — drift must be deliberate.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ocl/kernel_source.hpp"
#include "robust/crc32.hpp"

namespace alsmf::ocl {
namespace {

// CRC-32 (robust/crc32.hpp) of each generated source at the default
// configuration (k=10, WS=32, TILE_ROWS=256, float).
//
// Regenerating after a DELIBERATE generator change: run the test; each
// mismatch prints the new hash in this table's format — paste it here and
// re-review the emitted source (`build/examples/export_kernels --out DIR`
// writes the .cl files for inspection).
const std::vector<std::pair<std::string, std::uint32_t>> kGolden = {
    {"als_update_batch", 0x457af81du},
    {"als_update_batch_reg", 0x1a2ac42du},
    {"als_update_batch_local", 0x22139236u},
    {"als_update_batch_local_reg", 0xa1c374ffu},
    {"als_update_batch_vec", 0x019dcfb7u},
    {"als_update_batch_reg_vec", 0xc6b2d618u},
    {"als_update_batch_local_vec", 0x5ca36e84u},
    {"als_update_batch_local_reg_vec", 0x819b91c6u},
    {"als_update_batch_cg", 0xa9afc7c8u},
    {"als_update_batch_reg_cg", 0xd270faa7u},
    {"als_update_batch_local_cg", 0x42e3769bu},
    {"als_update_batch_local_reg_cg", 0x5a6dd34eu},
    {"als_update_batch_vec_cg", 0xa3f4bafcu},
    {"als_update_batch_reg_vec_cg", 0x94b3a95au},
    {"als_update_batch_local_vec_cg", 0x283870f1u},
    {"als_update_batch_local_reg_vec_cg", 0x2e23c6c2u},
    {"als_update_flat", 0x79497cc7u},
    {"als_update_flat_sell", 0xfd6b2f65u},
};

std::string source_of(const std::string& name, const KernelConfig& c) {
  if (name == "als_update_flat") return flat_kernel_source(c);
  if (name == "als_update_flat_sell") return sell_kernel_source(c);
  for (RowSolverKind rs : {RowSolverKind::kCholesky, RowSolverKind::kCg}) {
    for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
      const AlsVariant v = AlsVariant::from_mask(mask);
      if (kernel_name(v, rs) == name) {
        KernelConfig with_solver = c;
        with_solver.row_solver = rs;
        return batched_kernel_source(v, with_solver);
      }
    }
  }
  ADD_FAILURE() << "unknown kernel name " << name;
  return "";
}

TEST(GoldenKernels, EveryGeneratedSourceMatchesItsPinnedHash) {
  const KernelConfig c;  // defaults = what export_kernels emits
  ASSERT_EQ(kGolden.size(), 2 * AlsVariant::kVariantCount + 2)
      << "a kernel was added or removed: extend kGolden";
  for (const auto& [name, want] : kGolden) {
    const std::string src = source_of(name, c);
    const std::uint32_t got = robust::crc32(src.data(), src.size());
    char line[96];
    std::snprintf(line, sizeof(line), "    {\"%s\", 0x%08xu},", name.c_str(),
                  got);
    EXPECT_EQ(got, want)
        << name << " drifted from its golden hash.\n"
        << "If the generator change is deliberate, update its entry to:\n"
        << line << "\n"
        << "then re-review the source via: export_kernels --out <dir>";
  }
}

TEST(GoldenKernels, HashesAreConfigSensitive) {
  // Sanity of the pinning itself: a different build configuration must not
  // collide with the golden hashes (k and WS are baked into the preamble).
  KernelConfig c;
  c.k = 12;
  for (const auto& [name, want] : kGolden) {
    const std::string src = source_of(name, c);
    EXPECT_NE(robust::crc32(src.data(), src.size()), want) << name;
  }
}

}  // namespace
}  // namespace alsmf::ocl
