// The checked AST interpreter must agree with itself across kernel
// mappings: the flat baseline (one lane per row, private accumulators) and
// the batched local-memory variant (one group per row, staged tiles,
// cooperative reduction, shared Cholesky helper) compute the same normal
// equations, so interpreting both on the same ratings must produce the
// same X. This pins down the interpreter's SIMT semantics — divergence,
// barriers, local memory, helper calls — against an independent code path.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "devsim/device.hpp"
#include "devsim/profile.hpp"
#include "ocl/analyze/interp.hpp"
#include "ocl/analyze/parser.hpp"
#include "ocl/kernel_source.hpp"

namespace alsmf {
namespace {

using ocl::analyze::InterpArg;
using ocl::analyze::InterpKernel;

struct Problem {
  std::vector<int> row_ptr, col_idx;
  std::vector<float> values, y;
  int rows = 9, cols = 7, k = 10;
};

Problem make_problem() {
  Problem p;
  // Deterministic ragged pattern, including an empty row (row 4) to cover
  // the omega == 0 early-out in both kernels.
  p.row_ptr.push_back(0);
  for (int u = 0; u < p.rows; ++u) {
    const int nnz = u == 4 ? 0 : 1 + (u * 3) % 5;
    for (int z = 0; z < nnz; ++z) {
      p.col_idx.push_back((u + 2 * z) % p.cols);
      p.values.push_back(0.3f + 0.07f * static_cast<float>((u + z) % 11));
    }
    p.row_ptr.push_back(static_cast<int>(p.col_idx.size()));
  }
  p.y.resize(static_cast<std::size_t>(p.k) * p.cols);
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    p.y[i] = 0.02f + 0.015f * static_cast<float>(i % 17);
  }
  return p;
}

std::vector<float> interpret(const std::string& source,
                             const std::string& kernel, Problem& p,
                             std::size_t num_groups, int group_size) {
  std::vector<float> x(static_cast<std::size_t>(p.k) * p.rows, 0.0f);
  InterpKernel ik(source, kernel);
  ik.set_num_groups(static_cast<long>(num_groups));
  const std::vector<InterpArg> args = {
      InterpArg::real_buffer(p.values), InterpArg::int_buffer(p.col_idx),
      InterpArg::int_buffer(p.row_ptr), InterpArg::real_buffer(p.y),
      InterpArg::real_buffer(x),        InterpArg::int_scalar(p.rows),
      InterpArg::real_scalar(0.1)};
  devsim::Device device(devsim::k20c());
  devsim::LaunchConfig lc;
  lc.num_groups = num_groups;
  lc.group_size = group_size;
  lc.validate = true;
  const auto result = device.launch(
      kernel, lc, [&](devsim::GroupCtx& ctx) { ik.run_group(ctx, args); });
  EXPECT_TRUE(result.check.clean()) << kernel;
  return x;
}

TEST(Interp, FlatAndBatchedLocalAgree) {
  const ocl::KernelConfig kc;  // generator defaults: K=10, WS=32
  Problem pa = make_problem();
  Problem pb = make_problem();
  const std::vector<float> flat = interpret(ocl::flat_kernel_source(kc),
                                            "als_update_flat", pa, 1, 32);
  const std::vector<float> batched =
      interpret(ocl::batched_kernel_source(AlsVariant::batch_local(), kc),
                ocl::kernel_name(AlsVariant::batch_local()), pb, 3, 32);
  ASSERT_EQ(flat.size(), batched.size());
  bool nonzero = false;
  for (std::size_t i = 0; i < flat.size(); ++i) {
    ASSERT_TRUE(std::isfinite(flat[i])) << i;
    ASSERT_TRUE(std::isfinite(batched[i])) << i;
    EXPECT_NEAR(flat[i], batched[i], 1e-4f) << i;
    nonzero |= flat[i] != 0.0f;
  }
  EXPECT_TRUE(nonzero);
  // The empty row must be written as zeros, not left untouched garbage.
  for (int f = 0; f < 10; ++f) {
    EXPECT_EQ(flat[static_cast<std::size_t>(4) * 10 + f], 0.0f);
  }
}

TEST(Interp, UnsupportedSourceThrowsParseError) {
  EXPECT_THROW(InterpKernel("__kernel void f() { goto fail; }", "f"),
               ocl::analyze::ParseError);
  EXPECT_THROW(InterpKernel("__kernel void f() {}", "missing"),
               ocl::analyze::ParseError);
}

}  // namespace
}  // namespace alsmf
