// Invariants of the single kernel-flavor enumeration every sweep derives
// its list from (golden CRCs, deep lint, verifier, checked execution,
// precision certification, file export). A drifted order or a silently
// dropped family here would desynchronize all of those gates at once.
#include "ocl/kernel_flavors.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

namespace alsmf::ocl {
namespace {

TEST(KernelFlavors, ThirtyFourFlavorsInPinnedOrder) {
  const std::vector<KernelFlavor> flavors =
      enumerate_kernel_flavors(KernelConfig{});
  ASSERT_EQ(flavors.size(), 4 * AlsVariant::kVariantCount + 2);
  // Pinned sweep order: flat, 8 cholesky, 8 cg, SELL, 8 fp16, 8 bf16.
  EXPECT_EQ(flavors[0].name, "als_update_flat");
  EXPECT_EQ(flavors[1].name, "als_update_batch");
  EXPECT_EQ(flavors[9].name, "als_update_batch_cg");
  EXPECT_EQ(flavors[17].name, "als_update_flat_sell");
  EXPECT_EQ(flavors[18].name, "als_update_batch_f16");
  EXPECT_EQ(flavors[26].name, "als_update_batch_bf16");
  EXPECT_EQ(flavors[33].name, "als_update_batch_local_reg_vec_bf16");
}

TEST(KernelFlavors, NamesUniqueAndPresentInSource) {
  std::set<std::string> names;
  for (const KernelFlavor& f : enumerate_kernel_flavors(KernelConfig{})) {
    EXPECT_TRUE(names.insert(f.name).second) << "duplicate " << f.name;
    EXPECT_NE(f.source.find("__kernel void " + f.name + "("),
              std::string::npos)
        << f.name << " source does not define its own entry point";
  }
}

TEST(KernelFlavors, MetadataMatchesNameSuffixes) {
  for (const KernelFlavor& f : enumerate_kernel_flavors(KernelConfig{})) {
    const bool is_f16 = f.name.size() > 4 &&
                        f.name.rfind("_f16") == f.name.size() - 4;
    const bool is_bf16 = f.name.size() > 5 &&
                         f.name.rfind("_bf16") == f.name.size() - 5;
    EXPECT_EQ(f.storage == StoragePrecision::kFp16, is_f16) << f.name;
    EXPECT_EQ(f.storage == StoragePrecision::kBf16, is_bf16) << f.name;
    if (f.storage != StoragePrecision::kFp32) {
      // Only the batched cholesky variants have narrow flavors: the CG
      // iterate's range is not certifiable against the fp16 ceiling, and
      // flat/SELL are kept-exact comparison baselines.
      EXPECT_TRUE(f.batched) << f.name;
      EXPECT_EQ(f.row_solver, RowSolverKind::kCholesky) << f.name;
    }
    const bool is_cg = f.name.find("_cg") != std::string::npos;
    EXPECT_EQ(f.row_solver == RowSolverKind::kCg, is_cg) << f.name;
    const bool is_flat = f.name.rfind("als_update_flat", 0) == 0;
    EXPECT_EQ(f.batched, !is_flat) << f.name;
  }
}

TEST(KernelFlavors, ConfigRowSolverAndStorageAreOverriddenPerFlavor) {
  // A caller's row_solver/storage must not leak into the enumeration: the
  // sweep covers all flavor families regardless of the passed config.
  KernelConfig c;
  c.storage = StoragePrecision::kFp16;
  c.row_solver = RowSolverKind::kCg;
  const auto biased = enumerate_kernel_flavors(c);
  const auto plain = enumerate_kernel_flavors(KernelConfig{});
  ASSERT_EQ(biased.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(biased[i].name, plain[i].name);
    EXPECT_EQ(biased[i].source, plain[i].source);
  }
}

}  // namespace
}  // namespace alsmf::ocl
