// Structural-lint regression tests for the limit checks and the taint
// rules around them: work-group size limits, control-dependent divergence,
// and the #define/typedef arithmetic the __local sizing relies on.
#include <gtest/gtest.h>

#include <string>

#include "ocl/kernel_lint.hpp"

namespace alsmf::ocl {
namespace {

TEST(KernelLintLimits, FlagsReqdWorkGroupSizeOverDeviceMaximum) {
  const std::string src =
      "__attribute__((reqd_work_group_size(16, 16, 1)))\n"
      "__kernel void f(__global float* out) { out[0] = 1; }\n";
  LintLimits limits;
  limits.max_work_group_size = 128;
  const auto r = lint_kernel_source(src, 1, limits);
  ASSERT_FALSE(r.clean());
  EXPECT_NE(r.to_string().find("256"), std::string::npos);
  EXPECT_NE(r.to_string().find("128"), std::string::npos);

  limits.max_work_group_size = 256;
  EXPECT_TRUE(lint_kernel_source(src, 1, limits).clean());
  // 0 = unknown device: check skipped.
  EXPECT_TRUE(lint_kernel_source(src, 1).clean());
}

TEST(KernelLintLimits, FlagsGeneratedWsOverDeviceMaximum) {
  const std::string src =
      "#define WS 512\n"
      "__kernel void f(__global float* out) { out[0] = 1; }\n";
  LintLimits limits;
  limits.max_work_group_size = 256;
  const auto r = lint_kernel_source(src, 1, limits);
  ASSERT_FALSE(r.clean());
  EXPECT_NE(r.to_string().find("WS=512"), std::string::npos);

  limits.max_work_group_size = 512;
  EXPECT_TRUE(lint_kernel_source(src, 1, limits).clean());
}

TEST(KernelLintLimits, BarrierInLoopBoundedByControlDependentValue) {
  // lim is assigned under a lane-divergent branch, so the loop trip count
  // diverges across lanes and the barrier deadlocks.
  const std::string src =
      "__kernel void f(__local float* t) {\n"
      "  int lim = 0;\n"
      "  if (get_local_id(0) < 4) lim = 8;\n"
      "  for (int i = 0; i < lim; ++i) {\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  }\n"
      "}\n";
  const auto r = lint_kernel_source(src, 1);
  ASSERT_FALSE(r.clean());
  EXPECT_NE(r.to_string().find("lane-divergent"), std::string::npos);
}

TEST(KernelLintLimits, UniformControlDependenceStaysClean) {
  // The same shape conditioned on the group id is uniform per group.
  const std::string src =
      "__kernel void f(__local float* t) {\n"
      "  int lim = 0;\n"
      "  if (get_group_id(0) < 4) lim = 8;\n"
      "  for (int i = 0; i < lim; ++i) {\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  }\n"
      "}\n";
  const auto r = lint_kernel_source(src, 1);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

// --- #define / typedef arithmetic in the __local sizing ---

TEST(KernelLintLimits, SizesLocalsThroughChainedDefines) {
  const std::string src =
      "#define K 10\n"
      "#define TILE_ROWS 8\n"
      "#define TILE_ELEMS (TILE_ROWS * K)\n"
      "typedef float real_t;\n"
      "__kernel void f(__global real_t* out) {\n"
      "  __local real_t tile[TILE_ELEMS + K];\n"  // 90 floats = 360 bytes
      "  tile[0] = 1;\n"
      "  out[0] = tile[0];\n"
      "}\n";
  LintLimits limits;
  limits.local_mem_bytes = 256;
  const auto r = lint_kernel_source(src, 1, limits);
  ASSERT_FALSE(r.clean());
  EXPECT_NE(r.to_string().find("360"), std::string::npos);
  limits.local_mem_bytes = 512;
  EXPECT_TRUE(lint_kernel_source(src, 1, limits).clean());
}

TEST(KernelLintLimits, RedefinedRealTypedefChangesElementWidth) {
  // real_t re-typedef'd to double doubles every extent.
  const std::string src =
      "#define N 64\n"
      "typedef double real_t;\n"
      "__kernel void f(__global real_t* out) {\n"
      "  __local real_t a[N];\n"  // 512 bytes as double
      "  a[0] = 1;\n"
      "  out[0] = a[0];\n"
      "}\n";
  LintLimits limits;
  limits.local_mem_bytes = 384;
  EXPECT_FALSE(lint_kernel_source(src, 1, limits).clean());
  limits.local_mem_bytes = 512;
  EXPECT_TRUE(lint_kernel_source(src, 1, limits).clean());
}

TEST(KernelLintLimits, NonConstantExtentIsNotSilentlyUndercounted) {
  // An extent the evaluator cannot fold must not shrink the total below a
  // sibling declaration that alone exceeds the budget.
  const std::string src =
      "#define K 10\n"
      "typedef float real_t;\n"
      "__kernel void f(__global real_t* out, int n) {\n"
      "  __local real_t big[1024];\n"  // 4096 bytes on its own
      "  big[0] = 1;\n"
      "  out[0] = big[0];\n"
      "}\n";
  LintLimits limits;
  limits.local_mem_bytes = 2048;
  EXPECT_FALSE(lint_kernel_source(src, 1, limits).clean());
}

}  // namespace
}  // namespace alsmf::ocl
