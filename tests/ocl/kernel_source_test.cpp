#include "ocl/kernel_source.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "ocl/kernel_lint.hpp"

namespace alsmf::ocl {
namespace {

KernelConfig config(int k = 10, int ws = 32) {
  KernelConfig c;
  c.k = k;
  c.group_size = ws;
  return c;
}

TEST(KernelSource, AllVariantsLintClean) {
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    const std::string src = batched_kernel_source(v, config());
    const LintReport report = lint_kernel_source(src, 1);
    EXPECT_TRUE(report.clean())
        << v.name() << ":\n" << report.to_string();
  }
}

TEST(KernelSource, FlatLintClean) {
  const std::string src = flat_kernel_source(config());
  const LintReport report = lint_kernel_source(src, 1);
  EXPECT_TRUE(report.clean()) << report.to_string();
}

TEST(KernelSource, LocalVariantDeclaresStagingTile) {
  const std::string with_local =
      batched_kernel_source(AlsVariant::batch_local(), config());
  EXPECT_NE(with_local.find("__local real_t tile[TILE_ROWS * K]"),
            std::string::npos);
  EXPECT_NE(with_local.find("rstage"), std::string::npos);

  const std::string without =
      batched_kernel_source(AlsVariant::batching_only(), config());
  EXPECT_EQ(without.find("tile[TILE_ROWS"), std::string::npos);
}

TEST(KernelSource, RegisterVariantUnrollsAccumulators) {
  const std::string with_reg =
      batched_kernel_source(AlsVariant::from_mask(1), config(10));
  // Fig. 3b: scalar registers sum0..sum9, no dynamically indexed array.
  EXPECT_NE(with_reg.find("sum0"), std::string::npos);
  EXPECT_NE(with_reg.find("sum9"), std::string::npos);
  EXPECT_EQ(with_reg.find("real_t sum[K]"), std::string::npos);

  const std::string without =
      batched_kernel_source(AlsVariant::batching_only(), config(10));
  EXPECT_NE(without.find("real_t sum[K]"), std::string::npos);
  EXPECT_EQ(without.find("sum9"), std::string::npos);
}

TEST(KernelSource, VectorVariantUsesVloadN) {
  const std::string with_vec =
      batched_kernel_source(AlsVariant::batch_vectors(), config(16));
  EXPECT_NE(with_vec.find("vload16"), std::string::npos);
  const std::string k10 =
      batched_kernel_source(AlsVariant::batch_vectors(), config(10));
  EXPECT_NE(k10.find("vload2"), std::string::npos);  // widest divisor of 10

  const std::string without =
      batched_kernel_source(AlsVariant::batching_only(), config(16));
  EXPECT_EQ(without.find("vload"), std::string::npos);
}

TEST(KernelSource, EntryPointNamesMatchVariant) {
  EXPECT_EQ(kernel_name(AlsVariant::batching_only()), "als_update_batch");
  EXPECT_EQ(kernel_name(AlsVariant::batch_local_reg()),
            "als_update_batch_local_reg");
  EXPECT_EQ(kernel_name(AlsVariant::from_mask(7)),
            "als_update_batch_local_reg_vec");
  EXPECT_EQ(kernel_name(AlsVariant::flat_baseline()), "als_update_flat");
  // The entry point actually appears in the source.
  const std::string src =
      batched_kernel_source(AlsVariant::batch_local_reg(), config());
  EXPECT_NE(src.find("__kernel void als_update_batch_local_reg("),
            std::string::npos);
}

TEST(KernelSource, StridedRowLoopAndBarriers) {
  const std::string src =
      batched_kernel_source(AlsVariant::batch_local(), config());
  // The paper's 8192-group strided mapping.
  EXPECT_NE(src.find("u += stride"), std::string::npos);
  EXPECT_NE(src.find("get_num_groups(0)"), std::string::npos);
  EXPECT_NE(src.find("barrier(CLK_LOCAL_MEM_FENCE)"), std::string::npos);
}

TEST(KernelSource, DoublePrecisionToggle) {
  KernelConfig c = config();
  c.use_double = true;
  const std::string src =
      batched_kernel_source(AlsVariant::batching_only(), c);
  EXPECT_NE(src.find("cl_khr_fp64"), std::string::npos);
  EXPECT_NE(src.find("typedef double real_t"), std::string::npos);
}

TEST(KernelSource, BuildOptionsEncodeConstants) {
  KernelConfig c = config(20, 64);
  const std::string opts = build_options(c);
  EXPECT_NE(opts.find("-DK=20"), std::string::npos);
  EXPECT_NE(opts.find("-DWS=64"), std::string::npos);
}

TEST(KernelSource, WritesAllThirtyFourKernelFiles) {
  // flat + SELL + 8 cholesky + 8 cg + 8 fp16-storage + 8 bf16-storage.
  const std::string dir = ::testing::TempDir() + "/alsmf_kernels";
  std::filesystem::remove_all(dir);
  EXPECT_EQ(write_kernel_files(dir, config()), 34);
  int count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().extension(), ".cl");
    std::ifstream in(entry.path());
    std::string content((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
    EXPECT_TRUE(lint_kernel_source(content, 1).clean()) << entry.path();
    ++count;
  }
  EXPECT_EQ(count, 34);
}

TEST(KernelSource, NarrowStorageTypedefAndWideAccumulation) {
  KernelConfig c = config();
  c.storage = StoragePrecision::kFp16;
  const std::string f16 =
      batched_kernel_source(AlsVariant::batching_only(), c);
  EXPECT_NE(f16.find("#pragma OPENCL EXTENSION cl_khr_fp16 : enable"),
            std::string::npos);
  EXPECT_NE(f16.find("typedef half storage_t"), std::string::npos);
  // Buffers narrow; every accumulator stays real_t (the certified shape).
  EXPECT_NE(f16.find("__global const storage_t* restrict Y"),
            std::string::npos);
  EXPECT_NE(f16.find("real_t sum[K]"), std::string::npos);
  EXPECT_EQ(f16.find("storage_t sum"), std::string::npos);
  EXPECT_NE(kernel_name(AlsVariant::batching_only(), RowSolverKind::kCholesky,
                        StoragePrecision::kFp16),
            kernel_name(AlsVariant::batching_only(), RowSolverKind::kCholesky,
                        StoragePrecision::kFp32));

  c.storage = StoragePrecision::kBf16;
  const std::string bf16 =
      batched_kernel_source(AlsVariant::batching_only(), c);
  EXPECT_NE(bf16.find("typedef bfloat16 storage_t"), std::string::npos);
  // bf16 needs no fp16 extension.
  EXPECT_EQ(bf16.find("cl_khr_fp16"), std::string::npos);
}

TEST(KernelSource, SellKernelLintCleanAndUnitStride) {
  const std::string src = sell_kernel_source(config());
  EXPECT_TRUE(lint_kernel_source(src, 1).clean());
  EXPECT_NE(src.find("__kernel void als_update_flat_sell("),
            std::string::npos);
  // The format-side remedy: segment loads are lane-contiguous.
  EXPECT_NE(src.find("base + z * WS + lane"), std::string::npos);
  EXPECT_NE(src.find("slice_ptr"), std::string::npos);
}

TEST(KernelSource, FlatRejectsBatchedGenerator) {
  EXPECT_THROW(batched_kernel_source(AlsVariant::flat_baseline(), config()),
               alsmf::Error);
}

TEST(HostDriver, StructurallySound) {
  const std::string src =
      host_driver_source(AlsVariant::batch_local_reg(), config());
  // Balanced delimiters (reuse the lint's structural pass; 0 kernels).
  const LintReport report = lint_kernel_source(src, 0);
  EXPECT_TRUE(report.clean()) << report.to_string();
  // Loads the right kernel file and entry point, with build options.
  EXPECT_NE(src.find("als_update_batch_local_reg.cl"), std::string::npos);
  EXPECT_NE(src.find("clCreateKernel(prog, \"als_update_batch_local_reg\""),
            std::string::npos);
  EXPECT_NE(src.find("-DK=10"), std::string::npos);
  // Runs both half-updates per iteration.
  EXPECT_NE(src.find("update X over Y"), std::string::npos);
  EXPECT_NE(src.find("update Y over X"), std::string::npos);
}

TEST(HostDriver, WritesFile) {
  const std::string dir = ::testing::TempDir() + "/alsmf_host";
  const std::string path =
      write_host_driver(dir, AlsVariant::batch_local(), config());
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("#include <CL/cl.h>"), std::string::npos);
}

// --- lint self-tests ---

TEST(KernelLint, DetectsUnbalancedBraces) {
  const auto r = lint_kernel_source("__kernel void f() { if (1) { }", 1);
  EXPECT_FALSE(r.clean());
}

TEST(KernelLint, DetectsMissingKernel) {
  const auto r = lint_kernel_source("void helper() {}", 1);
  EXPECT_FALSE(r.clean());
}

TEST(KernelLint, IgnoresCommentsAndCountsKernels) {
  const auto r = lint_kernel_source(
      "// not a real } brace\n/* __kernel in comment */\n"
      "__kernel void f() { (void)0; }\n",
      1);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

TEST(KernelLint, FlagsBarrierOutsideKernel) {
  const auto r =
      lint_kernel_source("void h() { barrier(0); }\n__kernel void f() {}", 1);
  EXPECT_FALSE(r.clean());
}

// --- divergent-barrier detection (tokenizer) ---

TEST(KernelLint, FlagsBarrierInsideGetLocalIdConditional) {
  const auto r = lint_kernel_source(
      "__kernel void f(__local float* t) {\n"
      "  if (get_local_id(0) == 0) {\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  }\n"
      "}\n",
      1);
  ASSERT_FALSE(r.clean());
  EXPECT_NE(r.to_string().find("lane-divergent"), std::string::npos);
  EXPECT_EQ(r.issues[0].line, 3);
}

TEST(KernelLint, TracksLaneAliasesThroughAssignments) {
  // lx aliases get_local_id, p is derived from lx: both divergent.
  const auto r = lint_kernel_source(
      "__kernel void f(__local float* t) {\n"
      "  const int lx = get_local_id(0);\n"
      "  const int p = lx * 2;\n"
      "  if (p < 4) barrier(CLK_LOCAL_MEM_FENCE);\n"
      "}\n",
      1);
  ASSERT_FALSE(r.clean());
  EXPECT_EQ(r.issues[0].line, 4);
}

TEST(KernelLint, FlagsBarrierInsideDivergentLoop) {
  const auto r = lint_kernel_source(
      "__kernel void f(__local float* t, int n) {\n"
      "  for (int i = get_local_id(0); i < n; i += 32) {\n"
      "    t[i] = 0;\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  }\n"
      "}\n",
      1);
  EXPECT_FALSE(r.clean());
}

TEST(KernelLint, FlagsBarrierInDivergentElseBranch) {
  const auto r = lint_kernel_source(
      "__kernel void f(__local float* t) {\n"
      "  const int lx = get_local_id(0);\n"
      "  if (lx == 0) {\n"
      "    t[0] = 1;\n"
      "  } else {\n"
      "    barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  }\n"
      "}\n",
      1);
  EXPECT_FALSE(r.clean());
}

TEST(KernelLint, AcceptsBarrierAfterDivergentScopeCloses) {
  // The generated kernels' shape: lane-strided loop, then a barrier at
  // group scope. Uniform (group-id based) conditions are also fine.
  const auto r = lint_kernel_source(
      "__kernel void f(__local float* t, int n) {\n"
      "  const int lx = get_local_id(0);\n"
      "  const int g = get_group_id(0);\n"
      "  for (int i = lx; i < n; i += 32) t[i] = 0;\n"
      "  if (lx == 0) t[0] = 1;\n"
      "  barrier(CLK_LOCAL_MEM_FENCE);\n"
      "  if (g == 0) { barrier(CLK_LOCAL_MEM_FENCE); }\n"
      "}\n",
      1);
  EXPECT_TRUE(r.clean()) << r.to_string();
}

// --- __local capacity check ---

TEST(KernelLint, FlagsLocalDeclarationsOverCapacity) {
  const std::string src =
      "#define K 16\n"
      "typedef float real_t;\n"
      "__kernel void f() {\n"
      "  __local real_t tile[K * K];\n"  // 1024 bytes
      "  __local real_t extra[K];\n"     // + 64 bytes
      "}\n";
  LintLimits limits;
  limits.local_mem_bytes = 1024;
  const auto r = lint_kernel_source(src, 1, limits);
  ASSERT_FALSE(r.clean());
  EXPECT_NE(r.to_string().find("1088 bytes"), std::string::npos);
  EXPECT_NE(r.to_string().find("1024 bytes"), std::string::npos);

  limits.local_mem_bytes = 2048;
  EXPECT_TRUE(lint_kernel_source(src, 1, limits).clean());
  // Limit 0 = unknown device: check skipped (existing call sites).
  EXPECT_TRUE(lint_kernel_source(src, 1).clean());
}

TEST(KernelLint, CapacityUsesRealTypedefWidth) {
  const std::string src =
      "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n"
      "typedef double real_t;\n"
      "__kernel void f() {\n"
      "  __local real_t a[100];\n"  // 800 bytes as double
      "}\n";
  LintLimits limits;
  limits.local_mem_bytes = 512;
  EXPECT_FALSE(lint_kernel_source(src, 1, limits).clean());
  limits.local_mem_bytes = 1024;
  EXPECT_TRUE(lint_kernel_source(src, 1, limits).clean());
}

TEST(KernelLint, LocalPointerParametersAreExempt) {
  const std::string src =
      "void helper(__local float* a, __local float* b) { a[0] = b[0]; }\n"
      "__kernel void f(__local float* t) { helper(t, t); }\n";
  LintLimits limits;
  limits.local_mem_bytes = 1;  // any declaration would trip this
  EXPECT_TRUE(lint_kernel_source(src, 1, limits).clean());
}

TEST(KernelLint, GeneratedKernelsRespectGpuScratchpad) {
  // The paper's K20c has a 48 KiB scratch-pad; every generated variant at
  // the default configuration must fit (and must not barrier divergently).
  LintLimits limits;
  limits.local_mem_bytes = 48 * 1024;
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    const std::string src = batched_kernel_source(v, config());
    const LintReport report = lint_kernel_source(src, 1, limits);
    EXPECT_TRUE(report.clean()) << v.name() << ":\n" << report.to_string();
  }
  // An implausibly small scratch-pad is detected on the staging variant.
  limits.local_mem_bytes = 256;
  const std::string staged =
      batched_kernel_source(AlsVariant::batch_local(), config());
  EXPECT_FALSE(lint_kernel_source(staged, 1, limits).clean());
}

}  // namespace
}  // namespace alsmf::ocl
