// Static certification sweep + dynamic shadow witness: every generated
// flavor certifies under the ALS operating assumptions, and on the narrow
// (fp16/bf16) flavors the static worst-case error bound dominates the
// divergence a real (interpreted) execution observes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "ocl/analyze/precision/precision.hpp"
#include "ocl/analyze/precision/shadow.hpp"
#include "ocl/kernel_flavors.hpp"

namespace alsmf::ocl {
namespace {

namespace prec = analyze::precision;

TEST(PrecisionCertify, EveryGeneratedFlavorCertifies) {
  const prec::PrecisionAssumptions as;
  for (const KernelFlavor& f : enumerate_kernel_flavors(KernelConfig{})) {
    const std::vector<prec::PrecisionReport> reports =
        prec::analyze_source_precision(f.source, as);
    ASSERT_EQ(reports.size(), 1u) << f.name;
    const prec::PrecisionReport& r = reports[0];
    EXPECT_EQ(r.kernel, f.name);
    EXPECT_TRUE(r.certified) << f.name << ": " << prec::to_json(r);
    for (const auto& finding : r.findings) {
      EXPECT_FALSE(prec::gates_certification(finding.kind))
          << f.name << ": " << finding.message;
    }
    if (f.storage == StoragePrecision::kFp16) {
      EXPECT_EQ(r.storage, "fp16") << f.name;
      // FTZ storage makes subnormal-flush points expected (informational).
      EXPECT_GT(r.subnormal_flush_points, 0) << f.name;
    } else if (f.storage == StoragePrecision::kBf16) {
      EXPECT_EQ(r.storage, "bf16") << f.name;
    } else {
      EXPECT_EQ(r.storage, "fp32") << f.name;
    }
    if (f.batched) {
      EXPECT_TRUE(r.solve_contract_applied) << f.name;
    }
    // Narrow storage must carry a nonzero, finite error bound at the store.
    if (f.storage != StoragePrecision::kFp32) {
      EXPECT_GT(r.output.err, 0.0) << f.name;
      EXPECT_TRUE(std::isfinite(r.output.err)) << f.name;
    }
  }
}

TEST(PrecisionCertify, Bf16BoundExceedsFp16BoundAtSameVariant) {
  // Same kernel structure, coarser mantissa: the bf16 certificate's error
  // bound must be strictly larger than the fp16 one (both finite).
  const prec::PrecisionAssumptions as;
  const auto flavors = enumerate_kernel_flavors(KernelConfig{});
  double f16_err = 0, bf16_err = 0;
  for (const KernelFlavor& f : flavors) {
    if (f.name == "als_update_batch_local_reg_f16") {
      f16_err = prec::analyze_source_precision(f.source, as)[0].output.err;
    }
    if (f.name == "als_update_batch_local_reg_bf16") {
      bf16_err = prec::analyze_source_precision(f.source, as)[0].output.err;
    }
  }
  ASSERT_GT(f16_err, 0.0);
  ASSERT_GT(bf16_err, 0.0);
  EXPECT_GT(bf16_err, f16_err);
}

TEST(PrecisionCertify, StaticBoundDominatesObservedDivergence) {
  // The soundness leg: on a witness problem inside the assumptions, the
  // observed shadow-vs-exact divergence never exceeds the static bound.
  // A spread of narrow flavors (plain / staged / vectorized, both formats)
  // keeps the test fast while covering every codegen shape.
  const std::vector<std::string> picks = {
      "als_update_batch_f16",
      "als_update_batch_local_reg_f16",
      "als_update_batch_local_reg_vec_f16",
      "als_update_batch_bf16",
      "als_update_batch_local_vec_bf16",
  };
  const prec::PrecisionAssumptions as;
  prec::ShadowWitnessConfig wc;
  wc.assumptions = as;
  for (const KernelFlavor& f : enumerate_kernel_flavors(KernelConfig{})) {
    if (std::find(picks.begin(), picks.end(), f.name) == picks.end()) {
      continue;
    }
    const prec::PrecisionReport report =
        prec::analyze_source_precision(f.source, as)[0];
    const prec::ShadowWitness w =
        prec::run_shadow_witness(f.source, f.name, f.storage, wc);
    ASSERT_TRUE(w.ran) << f.name;
    EXPECT_FALSE(w.overflow_observed) << f.name;
    // Quantization on a nontrivial problem must actually perturb the
    // output (a zero divergence would mean the shadow leg is a no-op)...
    EXPECT_GT(w.observed_err, 0.0) << f.name;
    // ...and stay under the certificate's worst-case bound.
    EXPECT_LE(w.observed_err, report.output.err) << f.name;
    // The witness factors stay inside the solve contract's ‖x‖ ceiling.
    EXPECT_LE(w.max_exact,
              as.rating_bound * std::sqrt(as.omega_max / as.lambda_min))
        << f.name;
  }
}

TEST(PrecisionCertify, Fp32ShadowLegIsExact) {
  // With fp32 "storage" the quantizer is the identity: the two legs must
  // agree bitwise, pinning that observed_err measures quantization only.
  const auto flavors = enumerate_kernel_flavors(KernelConfig{});
  for (const KernelFlavor& f : flavors) {
    if (f.name != "als_update_batch") continue;
    const prec::ShadowWitness w = prec::run_shadow_witness(
        f.source, f.name, StoragePrecision::kFp32, prec::ShadowWitnessConfig{});
    ASSERT_TRUE(w.ran);
    EXPECT_EQ(w.observed_err, 0.0);
    EXPECT_FALSE(w.overflow_observed);
  }
}

}  // namespace
}  // namespace alsmf::ocl
