// Narrow corners of the precision analyzer's abstract domain: the fp16
// finite ceiling, flush-to-zero of fp16 subnormals, bf16's coarse mantissa,
// and NaN propagation through poisoned operations. These pin exactly the
// hazards the certification gates are built on.
#include "ocl/analyze/precision/domain.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace alsmf::ocl::analyze::precision {
namespace {

// --- fp16 finite ceiling (65504) ---

TEST(PrecisionDomain, Fp16CeilingBoundaryIsInclusive) {
  const FloatFormat f16 = fp16_format();
  ASSERT_EQ(f16.max_finite, 65504.0);
  // Exactly at the ceiling: representable, no overflow.
  EXPECT_FALSE(quantize(AVal::range(-65504.0, 65504.0), f16)
                   .overflow_possible);
  // One ulp of headroom past it: the interval can produce a value the
  // format cannot hold.
  EXPECT_TRUE(quantize(AVal::range(0.0, 65504.001), f16).overflow_possible);
  EXPECT_TRUE(quantize(AVal::constant(65505.0), f16).overflow_possible);
  EXPECT_TRUE(quantize(AVal::constant(-70000.0), f16).overflow_possible);
}

TEST(PrecisionDomain, OverflowGateJudgesExactIntervalNotErrorHull) {
  // The gate certifies the exact-value range; roundoff drift is bounded by
  // err and checked by the dynamic-dominance leg instead (domain.hpp doc).
  const FloatFormat f16 = fp16_format();
  AVal v = AVal::range(-60000.0, 60000.0);
  v.err = 10000.0;  // error-widened hull crosses 65504, interval does not
  EXPECT_FALSE(quantize(v, f16).overflow_possible);
}

TEST(PrecisionDomain, Fp16CeilingCoversInfiniteIntervals) {
  const FloatFormat f16 = fp16_format();
  AVal poisoned = AVal::range(-std::numeric_limits<double>::infinity(),
                              std::numeric_limits<double>::infinity());
  EXPECT_TRUE(quantize(poisoned, f16).overflow_possible);
}

// --- fp16 subnormal flush-to-zero ---

TEST(PrecisionDomain, Fp16SubnormalFlushDetected) {
  const FloatFormat f16 = fp16_format();
  ASSERT_TRUE(f16.flush_subnormals);
  ASSERT_EQ(f16.min_normal, 0x1p-14);
  // A value strictly under the normal floor can be flushed to zero.
  const Quantized tiny = quantize(AVal::constant(1e-5), f16);
  EXPECT_TRUE(tiny.subnormal_possible);
  // FTZ loss is charged as a full min_normal into the error bound.
  EXPECT_GE(tiny.val.err, f16.min_normal);
  // An interval through zero always admits a flushable value.
  EXPECT_TRUE(quantize(AVal::range(-1.0, 1.0), f16).subnormal_possible);
  // Values bounded away from the floor cannot flush.
  EXPECT_FALSE(quantize(AVal::range(0.5, 2.0), f16).subnormal_possible);
  // Exact zero loses nothing.
  EXPECT_FALSE(quantize(AVal::constant(0.0), f16).subnormal_possible);
}

TEST(PrecisionDomain, Bf16KeepsFp32FloorNoFlush) {
  const FloatFormat bf = bf16_format();
  ASSERT_FALSE(bf.flush_subnormals);
  // The same tiny value is a plain bf16 normal: no FTZ hazard.
  EXPECT_FALSE(quantize(AVal::constant(1e-5), bf).subnormal_possible);
  EXPECT_FALSE(quantize(AVal::range(-1.0, 1.0), bf).subnormal_possible);
}

// --- bf16 mantissa granularity ---

TEST(PrecisionDomain, Bf16GranularityCoarserThanFp16) {
  const FloatFormat f16 = fp16_format();
  const FloatFormat bf = bf16_format();
  ASSERT_EQ(bf.unit_roundoff, 0x1p-8);
  ASSERT_EQ(f16.unit_roundoff, 0x1p-11);
  // Quantizing the same unit value: bf16's 8-bit mantissa loses 2^3 times
  // more than fp16's 11 bits.
  const double e_bf = quantize(AVal::constant(1.0), bf).val.err;
  const double e_f16 = quantize(AVal::constant(1.0), f16).val.err;
  EXPECT_GE(e_bf, 0x1p-8);
  EXPECT_GE(e_f16, 0x1p-11);
  EXPECT_GT(e_bf, e_f16);
  // The trade: bf16 keeps (nearly) fp32's exponent range, so the value
  // that overflows fp16 stores fine in bf16.
  EXPECT_TRUE(quantize(AVal::constant(70000.0), f16).overflow_possible);
  EXPECT_FALSE(quantize(AVal::constant(70000.0), bf).overflow_possible);
}

// --- NaN propagation ---

TEST(PrecisionDomain, DivisionThroughZeroPoisons) {
  const FloatFormat f = fp32_format();
  const AVal num = AVal::constant(1.0);
  const AVal den = AVal::range(-0.5, 0.5);
  const AVal q = div(num, den, f);
  EXPECT_TRUE(q.nan_possible);
  EXPECT_TRUE(std::isinf(q.err));
  // Poison survives subsequent arithmetic and joins.
  EXPECT_TRUE(add(q, AVal::constant(1.0), f).nan_possible);
  EXPECT_TRUE(mul(q, AVal::constant(0.0), f).nan_possible);
  EXPECT_TRUE(AVal::constant(1.0).join(q).nan_possible);
  // And survives quantization into storage.
  EXPECT_TRUE(quantize(q, fp16_format()).val.nan_possible);
}

TEST(PrecisionDomain, SqrtOfPossiblyNegativePoisons) {
  const FloatFormat f = fp32_format();
  EXPECT_TRUE(sqrt_op(AVal::range(-1.0, 4.0), f).nan_possible);
  EXPECT_FALSE(sqrt_op(AVal::range(1.0, 4.0), f).nan_possible);
  // An error bound that can push the argument negative also poisons.
  AVal v = AVal::range(0.1, 4.0);
  v.err = 0.5;
  EXPECT_TRUE(sqrt_op(v, f).nan_possible);
}

TEST(PrecisionDomain, DivisionBoundedAwayFromZeroStaysClean) {
  const FloatFormat f = fp32_format();
  const AVal q = div(AVal::range(-2.0, 2.0), AVal::range(1.0, 4.0), f);
  EXPECT_FALSE(q.nan_possible);
  EXPECT_LE(q.hi, 2.0 + 1e-6);
  EXPECT_GE(q.lo, -2.0 - 1e-6);
  EXPECT_TRUE(std::isfinite(q.err));
}

// --- reduction growth (the symbolic-trip closed form) ---

TEST(PrecisionDomain, AccumulateGrowsLinearlyInTrips) {
  const FloatFormat f = fp32_format();
  const AVal inc = AVal::range(-20.0, 20.0);  // R·F of the ALS dot products
  const AVal s1 = accumulate(AVal::constant(0.0), inc, 1.0, f);
  const AVal s4096 = accumulate(AVal::constant(0.0), inc, 4096.0, f);
  EXPECT_EQ(s4096.lo, -4096.0 * 20.0);
  EXPECT_EQ(s4096.hi, 4096.0 * 20.0);
  // Error: n per-iteration roundings at the final magnitude dominate.
  EXPECT_GT(s4096.err, 1000.0 * s1.err);
  EXPECT_GE(s4096.err, 4096.0 * f.unit_roundoff * s4096.hi);
}

}  // namespace
}  // namespace alsmf::ocl::analyze::precision
