// JSON schema and fail-closed behavior of the verify-kernels entry points:
// the report schema is golden (CI parses it), diagnostics are clickable
// file:line:col anchors, and garbage input must land in `errors` with
// clean() == false instead of throwing or passing.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "als/verify_kernels.hpp"
#include "ocl/kernel_source.hpp"
#include "testing/kernel_mutator.hpp"

namespace alsmf {
namespace {

TEST(VerifyJson, SchemaCarriesGoldenKeys) {
  VerifyKernelsOptions options;
  options.profiles = {"gpu"};
  const VerifyKernelsResult result = verify_kernels(options);
  const std::string json = result.to_json();
  for (const char* key :
       {"\"clean\":true", "\"errors\":[]", "\"diagnostics\":[]",
        "\"kernels\":[", "\"kernel\":\"als_update_flat\"",
        "\"kernel\":\"als_update_flat_sell\"", "\"profile\":\"gpu\"",
        "\"bounds\":{\"refs\":", "\"proven_safe\":", "\"proven_violating\":0",
        "\"unprovable\":0", "\"findings\":[]", "\"races\":{\"pairs\":",
        "\"proven\":0", "\"widths\":[", "\"mixed\":false"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
}

TEST(VerifyJson, MutantReportSerializesFindings) {
  ocl::KernelConfig kc;
  kc.tile_rows = 4;
  const auto mutations = testing::kernel_mutations();
  ASSERT_FALSE(mutations.empty());
  const auto& m = mutations.front();  // off_by_one_gather
  const VerifySourceResult sr =
      verify_kernel_source(testing::mutated_source(m, kc));
  ASSERT_EQ(sr.reports.size(), 1u);
  VerifyKernelsResult result;
  VerifyKernelsEntry entry;
  entry.kernel = m.kernel;
  entry.profile = "gpu";
  entry.report = sr.reports[0];
  result.entries.push_back(entry);
  const std::string json = result.to_json();
  EXPECT_NE(json.find("\"clean\":false"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\":\"proven-violating\""), std::string::npos);
  EXPECT_NE(json.find("\"buffer\":\"Y\""), std::string::npos);
}

// Matches the golden "<kernel>.cl:<line>:<col>: " diagnostic prefix with
// line >= 1 (std::regex is avoided: GCC 12's <regex> trips
// -Wmaybe-uninitialized under the sanitized -Werror build).
bool has_clickable_anchor(const std::string& d) {
  const std::size_t ext = d.find(".cl:");
  if (ext == std::string::npos || ext == 0) return false;
  for (std::size_t i = 0; i < ext; ++i) {
    if (!std::isalnum(static_cast<unsigned char>(d[i])) && d[i] != '_') {
      return false;
    }
  }
  std::size_t i = ext + 4;
  std::size_t line_digits = 0;
  while (i < d.size() && std::isdigit(static_cast<unsigned char>(d[i]))) {
    ++i;
    ++line_digits;
  }
  if (line_digits == 0 || d[ext + 4] == '0') return false;
  if (i >= d.size() || d[i] != ':') return false;
  ++i;
  std::size_t col_digits = 0;
  while (i < d.size() && std::isdigit(static_cast<unsigned char>(d[i]))) {
    ++i;
    ++col_digits;
  }
  return col_digits > 0 && i + 1 < d.size() && d[i] == ':' && d[i + 1] == ' ';
}

TEST(VerifyJson, DiagnosticsAreClickableFileLineCol) {
  ocl::KernelConfig kc;
  kc.tile_rows = 4;
  std::size_t total = 0;
  for (const auto& m : testing::kernel_mutations()) {
    const VerifySourceResult sr =
        verify_kernel_source(testing::mutated_source(m, kc));
    for (const auto& report : sr.reports) {
      for (const auto& d : verify_diagnostics(m.kernel, report)) {
        EXPECT_TRUE(has_clickable_anchor(d)) << d;
        ++total;
      }
    }
  }
  EXPECT_GT(total, 0u);
}

TEST(VerifyJson, GarbageSourceFailsClosedWithoutThrowing) {
  const VerifySourceResult garbage =
      verify_kernel_source("@@@ not opencl at all {{{");
  EXPECT_FALSE(garbage.clean());
  EXPECT_FALSE(garbage.errors.empty());
  EXPECT_TRUE(garbage.reports.empty());

  // Truncated generator output: valid prefix, chopped mid-kernel.
  const std::string full = ocl::flat_kernel_source(ocl::KernelConfig{});
  const VerifySourceResult truncated =
      verify_kernel_source(full.substr(0, full.size() / 2));
  EXPECT_FALSE(truncated.clean());
  EXPECT_FALSE(truncated.errors.empty());

  const VerifySourceResult empty = verify_kernel_source("");
  EXPECT_FALSE(empty.clean());
  EXPECT_FALSE(empty.errors.empty());
}

}  // namespace
}  // namespace alsmf
