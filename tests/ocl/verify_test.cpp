// The clean-pass gate for the static bounds & race verifier: every
// generated kernel, on every device profile, must verify with zero
// unprovable references and zero race findings. "Unprovable" failing the
// gate is the point — the ALS contracts plus the interval/stride domain are
// supposed to discharge every obligation the generator can emit, so any
// unprovable ref is either a generator regression or a verifier coverage
// hole, and both should be loud.
#include <gtest/gtest.h>

#include <string>

#include "als/verify_kernels.hpp"
#include "ocl/analyze/parser.hpp"
#include "ocl/kernel_source.hpp"

namespace alsmf {
namespace {

TEST(Verify, AllGeneratedKernelsFullyProvenOnAllProfiles) {
  const VerifyKernelsResult result = verify_kernels(VerifyKernelsOptions{});
  EXPECT_TRUE(result.clean());
  for (const auto& err : result.errors) ADD_FAILURE() << err;
  for (const auto& d : result.diagnostics) ADD_FAILURE() << d;
  // flat + 8 batched variants (cholesky + cg flavors) + SELL + the
  // fp16/bf16 storage flavors of the cholesky variants, x3 profiles.
  ASSERT_EQ(result.entries.size(), 34u * 3u);
  for (const auto& e : result.entries) {
    SCOPED_TRACE(e.profile + "/" + e.kernel);
    EXPECT_GT(e.report.refs_total, 0);
    EXPECT_EQ(e.report.refs_proven_safe, e.report.refs_total);
    EXPECT_EQ(e.report.refs_proven_violating, 0);
    EXPECT_EQ(e.report.refs_unprovable, 0);
    EXPECT_EQ(e.report.races_proven, 0);
    EXPECT_EQ(e.report.races_unprovable, 0);
    EXPECT_TRUE(e.report.clean());
  }
}

TEST(Verify, ForcedSmallTileStaysProven) {
  // TILE_ROWS=4 shrinks the staging tile well below the chunk loop's
  // natural size; extents and barrier intervals must still check out.
  VerifyKernelsOptions options;
  options.tile_rows = 4;
  options.profiles = {"gpu"};
  const VerifyKernelsResult result = verify_kernels(options);
  EXPECT_TRUE(result.clean());
  for (const auto& d : result.diagnostics) ADD_FAILURE() << d;
  ASSERT_EQ(result.entries.size(), 34u);
}

TEST(Verify, ContractSelectionFollowsStorageFormat) {
  namespace az = ocl::analyze;
  const ocl::KernelConfig kc;
  {
    const auto irs = az::lower_kernels(
        az::parse_translation_unit(ocl::sell_kernel_source(kc)));
    ASSERT_EQ(irs.size(), 1u);
    const auto ct = als_kernel_contract(irs[0]);
    EXPECT_TRUE(ct.buffers.count("slice_ptr"));
    EXPECT_TRUE(ct.buffers.at("perm").injective);
    EXPECT_TRUE(ct.has_group_upper);
  }
  {
    const auto irs = az::lower_kernels(
        az::parse_translation_unit(ocl::flat_kernel_source(kc)));
    ASSERT_EQ(irs.size(), 1u);
    const auto ct = als_kernel_contract(irs[0]);
    EXPECT_TRUE(ct.buffers.count("row_ptr"));
    EXPECT_TRUE(ct.buffers.at("row_ptr").offsets);
    EXPECT_FALSE(ct.buffers.count("slice_ptr"));
  }
}

TEST(Verify, WidthPassRecordsElementWidths) {
  const VerifyKernelsResult result = verify_kernels(VerifyKernelsOptions{});
  ASSERT_FALSE(result.entries.empty());
  const auto narrow = [](const std::string& kernel) {
    return kernel.find("_f16") != std::string::npos ||
           kernel.find("_bf16") != std::string::npos;
  };
  for (const auto& e : result.entries) {
    SCOPED_TRACE(e.profile + "/" + e.kernel);
    EXPECT_FALSE(e.report.widths.empty());
    bool saw_half = false;
    for (const auto& w : e.report.widths) {
      EXPECT_FALSE(w.mixed) << w.buffer;
      ASSERT_EQ(w.widths.size(), 1u) << w.buffer;
      if (narrow(e.kernel) && w.widths[0] == 2) {
        saw_half = true;  // storage_t factor buffers in fp16/bf16 flavors
      } else {
        EXPECT_EQ(w.widths[0], 4) << w.buffer;  // float / int buffers
      }
    }
    // Every narrow flavor must actually surface a 2-byte buffer.
    EXPECT_EQ(saw_half, narrow(e.kernel));
  }
}

}  // namespace
}  // namespace alsmf
