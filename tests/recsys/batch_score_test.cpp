#include "recsys/batch_score.hpp"

#include <gtest/gtest.h>

#include "als/reference.hpp"
#include "common/error.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

struct Model {
  Matrix x, y;
};

Model trained_model() {
  const Csr train = testing::random_csr(30, 25, 0.25, 510);
  AlsOptions options;
  options.k = 5;
  options.iterations = 3;
  auto m = reference_als(train, options);
  return {std::move(m.x), std::move(m.y)};
}

TEST(BatchScore, MatchesBruteForceTopN) {
  const auto m = trained_model();
  const auto top = topn_from_factor(m.x.row(4), m.y, 6);
  ASSERT_EQ(top.size(), 6u);
  // Scores descending.
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
  // Brute force: no item outside the top-6 may beat the 6th score.
  for (index_t item = 0; item < m.y.rows(); ++item) {
    real score = 0;
    for (index_t c = 0; c < m.y.cols(); ++c) score += m.x(4, c) * m.y(item, c);
    bool in_top = false;
    for (const auto& t : top) in_top |= (t.item == item);
    if (!in_top) {
      EXPECT_LE(score, top.back().score);
    }
  }
}

TEST(BatchScore, ExcludeListSkipsItems) {
  const auto m = trained_model();
  const auto full = topn_from_factor(m.x.row(2), m.y, 3);
  const std::vector<index_t> exclude = {full[0].item};
  // Exclusion list must be sorted; a single element trivially is.
  const auto filtered =
      topn_from_factor(m.x.row(2), m.y, 3, nullptr, -1, exclude);
  for (const auto& r : filtered) EXPECT_NE(r.item, full[0].item);
  EXPECT_EQ(filtered[0].item, full[1].item);
}

TEST(BatchScore, NLargerThanItemsReturnsAll) {
  const auto m = trained_model();
  const auto top = topn_from_factor(m.x.row(0), m.y, 1000);
  EXPECT_EQ(top.size(), static_cast<std::size_t>(m.y.rows()));
}

TEST(BatchScore, RankMismatchRejected) {
  const auto m = trained_model();
  const std::vector<real> bad(static_cast<std::size_t>(m.y.cols()) + 1, 0.0f);
  EXPECT_THROW(topn_from_factor(bad, m.y, 3), Error);
}

TEST(BatchScore, BatchAgreesWithSingleCalls) {
  const auto m = trained_model();
  const std::vector<index_t> users = {0, 3, 7, 11, 29};
  std::vector<real> factors;
  for (const index_t u : users) {
    factors.insert(factors.end(), m.x.row(u).begin(), m.x.row(u).end());
  }
  ThreadPool pool(2);
  const auto batched =
      topn_from_factors_batch(factors.data(), users.size(), m.y, 4, &pool);
  ASSERT_EQ(batched.size(), users.size());
  for (std::size_t i = 0; i < users.size(); ++i) {
    const auto single = topn_from_factor(m.x.row(users[i]), m.y, 4);
    ASSERT_EQ(batched[i].size(), single.size());
    for (std::size_t j = 0; j < single.size(); ++j) {
      EXPECT_EQ(batched[i][j].item, single[j].item);
      EXPECT_FLOAT_EQ(batched[i][j].score, single[j].score);
    }
  }
}

TEST(BatchScore, RecommenderDelegationUnchanged) {
  // Recommender::recommend now routes through topn_from_factor; both must
  // agree bit for bit (guards the refactor).
  const Csr train = testing::random_csr(20, 15, 0.3, 511);
  AlsOptions options;
  options.k = 4;
  options.iterations = 3;
  Recommender rec;
  rec.train(train, options, devsim::xeon_e5_2670_dual());
  const auto via_rec = rec.recommend(3, 5, &train);
  const auto direct = topn_from_factor(rec.user_factors().row(3),
                                       rec.item_factors(), 5, nullptr, 3,
                                       train.row_cols(3));
  ASSERT_EQ(via_rec.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(via_rec[i].item, direct[i].item);
    EXPECT_FLOAT_EQ(via_rec[i].score, direct[i].score);
  }
}

}  // namespace
}  // namespace alsmf
