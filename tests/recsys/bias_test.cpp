#include "recsys/bias.hpp"

#include <gtest/gtest.h>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(Bias, GlobalMeanOfConstantMatrix) {
  Coo coo(4, 4);
  for (index_t u = 0; u < 4; ++u) coo.add(u, u, 3.0f);
  const BiasModel model = BiasModel::fit(coo_to_csr(coo));
  EXPECT_FLOAT_EQ(model.global_mean(), 3.0f);
  // Constant ratings: biases shrink to ~0, prediction ~= mean.
  EXPECT_NEAR(model.predict(0, 0), 3.0f, 0.05);
}

TEST(Bias, CapturesGenerousUser) {
  // User 0 rates everything 5, user 1 rates everything 1 (same items).
  Coo coo(2, 20);
  for (index_t i = 0; i < 20; ++i) {
    coo.add(0, i, 5.0f);
    coo.add(1, i, 1.0f);
  }
  const BiasModel model = BiasModel::fit(coo_to_csr(coo));
  EXPECT_GT(model.user_bias(0), 0.5f);
  EXPECT_LT(model.user_bias(1), -0.5f);
  EXPECT_GT(model.predict(0, 3), model.predict(1, 3) + 1.0f);
}

TEST(Bias, CapturesPopularItem) {
  // Item 0 always gets 5, item 1 always 1, across many users.
  Coo coo(30, 2);
  for (index_t u = 0; u < 30; ++u) {
    coo.add(u, 0, 5.0f);
    coo.add(u, 1, 1.0f);
  }
  const BiasModel model = BiasModel::fit(coo_to_csr(coo));
  EXPECT_GT(model.item_bias(0), 0.5f);
  EXPECT_LT(model.item_bias(1), -0.5f);
}

TEST(Bias, ShrinkagePullsSparseBiasesToZero) {
  // A user with a single 5-star rating: strong shrinkage keeps the bias small.
  Coo coo(2, 10);
  coo.add(0, 0, 5.0f);
  for (index_t i = 0; i < 10; ++i) coo.add(1, i, 3.0f);
  BiasOptions strong;
  strong.user_shrinkage = 100.0f;
  const BiasModel model = BiasModel::fit(coo_to_csr(coo), strong);
  EXPECT_LT(std::abs(model.user_bias(0)), 0.1f);
}

TEST(Bias, ResidualsHaveNearZeroMean) {
  const Csr ratings = testing::random_csr(80, 60, 0.1, 210);
  const BiasModel model = BiasModel::fit(ratings);
  const Csr res = model.residuals(ratings);
  double sum = 0;
  for (index_t u = 0; u < res.rows(); ++u) {
    for (real v : res.row_values(u)) sum += v;
  }
  EXPECT_NEAR(sum / static_cast<double>(res.nnz()), 0.0, 0.05);
  // Structure unchanged.
  EXPECT_EQ(res.row_ptr(), ratings.row_ptr());
  EXPECT_EQ(res.col_idx(), ratings.col_idx());
}

/// Ratings with genuine per-user and per-item offsets (the structure the
/// bias model exists to capture): r = 3 + b_u + b_i + noise.
Coo biased_ratings(index_t users, index_t items, nnz_t nnz,
                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> bu(static_cast<std::size_t>(users));
  std::vector<real> bi(static_cast<std::size_t>(items));
  for (auto& b : bu) b = static_cast<real>(rng.normal(0.0, 0.6));
  for (auto& b : bi) b = static_cast<real>(rng.normal(0.0, 0.4));
  Coo coo(users, items);
  for (nnz_t n = 0; n < nnz; ++n) {
    const auto u = static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(users)));
    const auto i = static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(items)));
    const double r = 3.0 + bu[static_cast<std::size_t>(u)] +
                     bi[static_cast<std::size_t>(i)] + rng.normal(0.0, 0.3);
    coo.add(u, i, static_cast<real>(std::clamp(r, 1.0, 5.0)));
  }
  coo.canonicalize();
  return coo;
}

TEST(Bias, BaselineBeatsGlobalMeanOnHeldout) {
  const Coo all = biased_ratings(400, 200, 12000, 211);
  auto [train_coo, test_coo] = split_holdout(all, 0.15, 3);
  const Csr train = coo_to_csr(train_coo);
  Coo test_sized(train.rows(), train.cols());
  for (const auto& t : test_coo.entries()) test_sized.add(t.row, t.col, t.value);
  const Csr test = coo_to_csr(test_sized);

  const BiasModel model = BiasModel::fit(train);
  // Global-mean-only RMSE:
  double sse = 0;
  for (index_t u = 0; u < test.rows(); ++u) {
    for (real v : test.row_values(u)) {
      const double e = v - model.global_mean();
      sse += e * e;
    }
  }
  const double mean_rmse = std::sqrt(sse / static_cast<double>(test.nnz()));
  EXPECT_LT(model.rmse_on(test), mean_rmse * 0.85);
}

TEST(Bias, ResidualFactorizationImprovesAccuracy) {
  // On data with real bias structure, ALS on bias-removed residuals plus
  // the baseline beats ALS on the raw ratings.
  const Coo all = biased_ratings(300, 150, 9000, 212);
  auto [train_coo, test_coo] = split_holdout(all, 0.15, 7);
  const Csr train = coo_to_csr(train_coo);

  AlsOptions o;
  o.k = 4;
  o.lambda = 0.3f;
  o.iterations = 10;

  // Raw ALS.
  const auto raw = reference_als(train, o);
  const double raw_rmse = rmse(test_coo, raw.x, raw.y);

  // Bias + residual ALS.
  const BiasModel bias = BiasModel::fit(train);
  const auto res_model = reference_als(bias.residuals(train), o);
  double sse = 0;
  for (const auto& t : test_coo.entries()) {
    real pred = bias.predict(t.row, t.col);
    for (int f = 0; f < o.k; ++f) {
      pred += res_model.x(t.row, f) * res_model.y(t.col, f);
    }
    sse += (t.value - pred) * (t.value - pred);
  }
  const double combined_rmse =
      std::sqrt(sse / static_cast<double>(test_coo.nnz()));
  EXPECT_LT(combined_rmse, raw_rmse);
}

TEST(Bias, BoundsChecked) {
  const BiasModel model = BiasModel::fit(testing::random_csr(5, 5, 0.4, 213));
  EXPECT_THROW(model.predict(5, 0), Error);
  EXPECT_THROW(model.predict(0, 5), Error);
  const Csr wrong = testing::random_csr(6, 5, 0.4, 214);
  EXPECT_THROW(model.residuals(wrong), Error);
}

TEST(Bias, EmptyMatrix) {
  const BiasModel model = BiasModel::fit(coo_to_csr(Coo(3, 3)));
  EXPECT_FLOAT_EQ(model.global_mean(), 0.0f);
  EXPECT_FLOAT_EQ(model.predict(0, 0), 0.0f);
}

}  // namespace
}  // namespace alsmf
