#include "recsys/fold_in.hpp"

#include <gtest/gtest.h>

#include "als/reference.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(FoldIn, MatchesTrainingRowSolveExactly) {
  // Folding in a user who was in the training set, with exactly their
  // training ratings, must reproduce their trained factor bit for bit
  // (fold-in IS the ALS row update).
  const Csr train = testing::random_csr(50, 40, 0.2, 170);
  AlsOptions options;
  options.k = 5;
  options.lambda = 0.1f;
  options.iterations = 4;
  auto model = reference_als(train, options);
  // Refresh X against the *final* Y so the comparison is an identity (the
  // iteration loop leaves X one half-step behind Y).
  reference_half_update(train, model.y, model.x, options);

  index_t user = 0;
  for (index_t u = 0; u < train.rows(); ++u) {
    if (train.row_nnz(u) >= 3) {
      user = u;
      break;
    }
  }
  auto cols = train.row_cols(user);
  auto vals = train.row_values(user);
  const auto folded = fold_in_user(model.y, cols, vals, options.lambda);
  // The final X update used this exact Y, so the row solve agrees exactly.
  ASSERT_EQ(folded.size(), 5u);
  for (int f = 0; f < 5; ++f) {
    EXPECT_FLOAT_EQ(folded[static_cast<std::size_t>(f)], model.x(user, f));
  }
}

TEST(FoldIn, NewUserGetsReasonablePredictions) {
  SyntheticSpec spec;
  spec.users = 200;
  spec.items = 100;
  spec.nnz = 8000;
  spec.planted_rank = 3;
  spec.noise = 0.1;
  spec.integer_ratings = false;
  spec.seed = 171;
  const Csr train = coo_to_csr(generate_synthetic(spec));
  AlsOptions options;
  options.k = 6;
  options.iterations = 8;
  const auto model = reference_als(train, options);

  // The "new user" rates items 0..9 with the values user 0 gave would-be
  // (use the planted structure via user 0's actual ratings).
  std::vector<index_t> items(train.row_cols(0).begin(),
                             train.row_cols(0).end());
  std::vector<real> ratings(train.row_values(0).begin(),
                            train.row_values(0).end());
  ASSERT_GE(items.size(), 1u);
  const auto folded = fold_in_user(model.y, items, ratings, options.lambda);

  // Predictions on the rated items should be close to the given ratings.
  double err = 0;
  for (std::size_t i = 0; i < items.size(); ++i) {
    const real pred = fold_in_predict(folded, model.y, items[i]);
    err += std::abs(static_cast<double>(pred) - ratings[i]);
  }
  EXPECT_LT(err / static_cast<double>(items.size()), 1.0);
}

TEST(FoldIn, ItemSideSymmetric) {
  const Csr train = testing::random_csr(40, 30, 0.2, 172);
  AlsOptions options;
  options.k = 4;
  options.iterations = 3;
  const auto model = reference_als(train, options);

  const Csr train_t = transpose(train);
  index_t item = 0;
  for (index_t i = 0; i < train_t.rows(); ++i) {
    if (train_t.row_nnz(i) >= 2) {
      item = i;
      break;
    }
  }
  const auto folded = fold_in_item(model.x, train_t.row_cols(item),
                                   train_t.row_values(item), options.lambda);
  for (int f = 0; f < 4; ++f) {
    EXPECT_FLOAT_EQ(folded[static_cast<std::size_t>(f)], model.y(item, f));
  }
}

TEST(FoldIn, SingleRatingWorks) {
  Matrix y(10, 3);
  Rng rng(173);
  y.fill_uniform(rng, -1, 1);
  const std::vector<index_t> items = {4};
  const std::vector<real> ratings = {5.0f};
  const auto folded = fold_in_user(y, items, ratings, 0.1f);
  EXPECT_EQ(folded.size(), 3u);
  // The prediction moves toward the rating (shrunk by lambda).
  EXPECT_GT(fold_in_predict(folded, y, 4), 0.0f);
}

TEST(FoldIn, InvalidInputsRejected) {
  Matrix y(10, 3, 0.1f);
  const std::vector<index_t> items = {4};
  const std::vector<real> one = {3.0f};
  const std::vector<real> two = {3.0f, 2.0f};
  EXPECT_THROW(fold_in_user(y, items, two, 0.1f), Error);   // size mismatch
  EXPECT_THROW(fold_in_user(y, {}, {}, 0.1f), Error);       // empty
  EXPECT_THROW(fold_in_user(y, std::vector<index_t>{99}, one, 0.1f), Error);
  EXPECT_THROW(fold_in_user(y, items, one, 0.0f), Error);   // lambda
}

TEST(FoldIn, ErrorMessagesNameTheViolation) {
  Matrix y(10, 3, 0.1f);
  const std::vector<real> one = {3.0f};
  try {
    fold_in_user(y, std::vector<index_t>{99}, one, 0.1f);
    FAIL() << "out-of-range id accepted";
  } catch (const Error& e) {
    // The message states the offending id and the valid range.
    EXPECT_NE(std::string(e.what()).find("99"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("[0, 10)"), std::string::npos)
        << e.what();
  }
  try {
    fold_in_user(y, {}, {}, 0.1f);
    FAIL() << "empty ratings accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("at least one rating"),
              std::string::npos)
        << e.what();
  }
  try {
    fold_in_user(y, std::vector<index_t>{1, 2}, one, 0.1f);
    FAIL() << "length mismatch accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("2 ids"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("1 ratings"), std::string::npos)
        << e.what();
  }
}

TEST(FoldIn, NegativeIdRejected) {
  Matrix y(10, 3, 0.1f);
  const std::vector<real> one = {3.0f};
  EXPECT_THROW(fold_in_user(y, std::vector<index_t>{-1}, one, 0.1f), Error);
  EXPECT_THROW(fold_in_item(y, std::vector<index_t>{-7}, one, 0.1f), Error);
}

}  // namespace
}  // namespace alsmf
