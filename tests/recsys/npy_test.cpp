#include "recsys/npy.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace alsmf {
namespace {

TEST(Npy, RoundTripExact) {
  Matrix m(7, 3);
  Rng rng(240);
  m.fill_uniform(rng, -2, 2);
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  write_npy(s, m);
  const Matrix back = read_npy(s);
  EXPECT_EQ(back, m);
}

TEST(Npy, HeaderIsValidNpyV1) {
  Matrix m(2, 5, 1.5f);
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  write_npy(s, m);
  const std::string bytes = s.str();
  ASSERT_GE(bytes.size(), 10u);
  EXPECT_EQ(bytes.substr(1, 5), "NUMPY");
  EXPECT_EQ(bytes[6], '\x01');  // version 1.0
  // Total header length (magic+version+len+dict) is a multiple of 64.
  const std::size_t hlen = static_cast<unsigned char>(bytes[8]) |
                           (static_cast<unsigned char>(bytes[9]) << 8);
  EXPECT_EQ((10 + hlen) % 64, 0u);
  EXPECT_NE(bytes.find("'shape': (2, 5)"), std::string::npos);
  EXPECT_NE(bytes.find("'<f4'"), std::string::npos);
  // Payload size matches.
  EXPECT_EQ(bytes.size(), 10 + hlen + 2 * 5 * sizeof(float));
}

TEST(Npy, EmptyMatrix) {
  Matrix m(0, 4);
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  write_npy(s, m);
  const Matrix back = read_npy(s);
  EXPECT_EQ(back.rows(), 0);
  EXPECT_EQ(back.cols(), 4);
}

TEST(Npy, RejectsGarbage) {
  std::stringstream s("not numpy at all");
  EXPECT_THROW(read_npy(s), Error);
}

TEST(Npy, RejectsWrongDtype) {
  // Forge a float64 header.
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  Matrix m(1, 1, 1.0f);
  write_npy(s, m);
  std::string bytes = s.str();
  const auto pos = bytes.find("<f4");
  bytes.replace(pos, 3, "<f8");
  std::stringstream forged(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_npy(forged), Error);
}

TEST(Npy, FileRoundTrip) {
  Matrix m(3, 3, 0.25f);
  const std::string path = ::testing::TempDir() + "/alsmf_factors.npy";
  write_npy_file(path, m);
  EXPECT_EQ(read_npy_file(path), m);
  EXPECT_THROW(read_npy_file("/nonexistent.npy"), Error);
}

}  // namespace
}  // namespace alsmf
