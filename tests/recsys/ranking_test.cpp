#include "recsys/ranking.hpp"

#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

/// Factors crafted so user u's scores rank item (u mod items) first,
/// then (u+1) mod items, etc. — a fully controlled ranking.
struct ControlledRanking {
  Csr train;
  Csr test;
  Matrix x, y;
};

/// One user, known scores: y_i score = items - i for user 0.
ControlledRanking descending_scores(index_t items, index_t test_item,
                                    index_t train_item) {
  ControlledRanking c;
  c.x = Matrix(1, 1);
  c.x(0, 0) = 1.0f;
  c.y = Matrix(items, 1);
  for (index_t i = 0; i < items; ++i) {
    c.y(i, 0) = static_cast<real>(items - i);
  }
  Coo train(1, items), test(1, items);
  if (train_item >= 0) train.add(0, train_item, 1.0f);
  test.add(0, test_item, 1.0f);
  c.train = coo_to_csr(train);
  c.test = coo_to_csr(test);
  return c;
}

TEST(Ranking, PerfectHitAtRankOne) {
  // Test item 0 has the top score.
  const auto c = descending_scores(10, 0, -1);
  const RankingMetrics m = evaluate_ranking(c.train, c.test, c.x, c.y, 3);
  EXPECT_EQ(m.evaluated_users, 1);
  EXPECT_DOUBLE_EQ(m.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_NEAR(m.precision, 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.ndcg, 1.0);  // ideal position
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
}

TEST(Ranking, MissWhenTestItemRanksLow) {
  // Test item is the lowest-scored of 10; top-3 misses it.
  const auto c = descending_scores(10, 9, -1);
  const RankingMetrics m = evaluate_ranking(c.train, c.test, c.x, c.y, 3);
  EXPECT_DOUBLE_EQ(m.hit_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.ndcg, 0.0);
  EXPECT_DOUBLE_EQ(m.auc, 0.0);  // every negative outranks it
}

TEST(Ranking, TrainItemsExcludedFromCandidates) {
  // Item 0 (top score) is a *train* item; test item 1 should then hit rank 1.
  const auto c = descending_scores(10, 1, 0);
  const RankingMetrics m = evaluate_ranking(c.train, c.test, c.x, c.y, 1);
  EXPECT_DOUBLE_EQ(m.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(m.auc, 1.0);
}

TEST(Ranking, MidRankAucIsFractional) {
  // Test item ranks 5th of 10 candidates: 5 negatives below, 4 above.
  const auto c = descending_scores(10, 4, -1);
  const RankingMetrics m = evaluate_ranking(c.train, c.test, c.x, c.y, 10);
  EXPECT_NEAR(m.auc, 5.0 / 9.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.hit_rate, 1.0);  // within top-10
}

TEST(Ranking, UsersWithoutTestItemsSkipped) {
  Coo train(3, 5), test(3, 5);
  train.add(0, 0, 1.0f);
  test.add(1, 2, 1.0f);  // only user 1 evaluated
  Matrix x(3, 1, 1.0f), y(5, 1, 1.0f);
  const RankingMetrics m =
      evaluate_ranking(coo_to_csr(train), coo_to_csr(test), x, y, 2);
  EXPECT_EQ(m.evaluated_users, 1);
}

TEST(Ranking, DcgAtN) {
  // relevance [1, 0, 1]: dcg = 1/log2(2) + 1/log2(4) = 1 + 0.5.
  EXPECT_NEAR(dcg_at_n({1, 0, 1}, 3), 1.5, 1e-12);
  EXPECT_NEAR(dcg_at_n({1, 0, 1}, 1), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(dcg_at_n({0, 0, 0}, 3), 0.0);
}

TEST(Ranking, ShapeChecksThrow) {
  Matrix x(3, 2), y(5, 2);
  const Csr train = coo_to_csr(Coo(3, 5));
  const Csr bad = coo_to_csr(Coo(4, 5));
  EXPECT_THROW(evaluate_ranking(train, bad, x, y, 3), Error);
}

TEST(Ranking, RandomFactorsScoreNearChanceAuc) {
  const Csr train = testing::random_csr(60, 50, 0.1, 90);
  const Csr test = testing::random_csr(60, 50, 0.05, 91);
  Matrix x(60, 4), y(50, 4);
  Rng rng(92);
  x.fill_uniform(rng, -1, 1);
  y.fill_uniform(rng, -1, 1);
  const RankingMetrics m = evaluate_ranking(train, test, x, y, 10);
  EXPECT_NEAR(m.auc, 0.5, 0.1);  // uninformed ranking
}

TEST(RecallAtN, PairwiseSetOverlap) {
  const std::vector<index_t> exact{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(recall_at_n(std::vector<index_t>{1, 2, 3, 4, 5}, exact), 1.0);
  // Order is ignored: same set, permuted.
  EXPECT_DOUBLE_EQ(recall_at_n(std::vector<index_t>{5, 3, 1, 4, 2}, exact), 1.0);
  EXPECT_DOUBLE_EQ(recall_at_n(std::vector<index_t>{1, 2, 3, 9, 8}, exact), 0.6);
  EXPECT_DOUBLE_EQ(recall_at_n(std::vector<index_t>{7, 8, 9}, exact), 0.0);
  EXPECT_DOUBLE_EQ(recall_at_n(std::vector<index_t>{}, exact), 0.0);
}

TEST(RecallAtN, EmptyExactListRecallsTrivially) {
  EXPECT_DOUBLE_EQ(recall_at_n(std::vector<index_t>{1, 2}, std::vector<index_t>{}),
                   1.0);
  EXPECT_DOUBLE_EQ(recall_at_n(std::vector<index_t>{}, std::vector<index_t>{}),
                   1.0);
}

TEST(RecallAtN, DuplicatesCountOnce) {
  EXPECT_DOUBLE_EQ(recall_at_n(std::vector<index_t>{1, 1, 1},
                               std::vector<index_t>{1, 2, 2}),
                   0.5);
}

TEST(RecallAtN, RecommendationOverloadUsesItems) {
  const std::vector<Recommendation> approx{{3, 9.0f}, {1, 8.0f}};
  const std::vector<Recommendation> exact{{1, 8.5f}, {2, 8.2f}};
  // Scores differ (ANN rescoring vs oracle); only item membership counts.
  EXPECT_DOUBLE_EQ(recall_at_n(approx, exact), 0.5);
}

}  // namespace
}  // namespace alsmf
