// Recommender facade with bias integration + npy export.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "common/rng.hpp"
#include "data/split.hpp"
#include "recsys/npy.hpp"
#include "recsys/recommender.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

Coo biased_ratings(index_t users, index_t items, nnz_t nnz,
                   std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> bu(static_cast<std::size_t>(users));
  std::vector<real> bi(static_cast<std::size_t>(items));
  for (auto& b : bu) b = static_cast<real>(rng.normal(0.0, 0.6));
  for (auto& b : bi) b = static_cast<real>(rng.normal(0.0, 0.4));
  Coo coo(users, items);
  for (nnz_t n = 0; n < nnz; ++n) {
    const auto u = static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(users)));
    const auto i = static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(items)));
    const double r = 3.0 + bu[static_cast<std::size_t>(u)] +
                     bi[static_cast<std::size_t>(i)] + rng.normal(0.0, 0.3);
    coo.add(u, i, static_cast<real>(std::clamp(r, 1.0, 5.0)));
  }
  coo.canonicalize();
  return coo;
}

AlsOptions opts() {
  AlsOptions o;
  o.k = 4;
  o.lambda = 0.2f;
  o.iterations = 6;
  o.num_groups = 128;
  return o;
}

TEST(RecommenderBias, BiasTrainingBeatsPlainOnBiasedData) {
  const Coo all = biased_ratings(300, 150, 9000, 260);
  auto [train_coo, test_coo] = split_holdout(all, 0.15, 5);
  const Csr train = coo_to_csr(train_coo);

  Recommender plain, biased;
  plain.train(train, opts(), devsim::xeon_e5_2670_dual());
  biased.train_with_bias(train, opts(), devsim::xeon_e5_2670_dual());
  EXPECT_TRUE(biased.has_bias());
  EXPECT_FALSE(plain.has_bias());
  EXPECT_LT(biased.rmse_on(test_coo), plain.rmse_on(test_coo));
}

TEST(RecommenderBias, PredictionIncludesBaseline) {
  const Coo all = biased_ratings(100, 80, 4000, 261);
  const Csr train = coo_to_csr(all);
  Recommender rec;
  rec.train_with_bias(train, opts(), devsim::xeon_e5_2670_dual());
  // Predictions land near the rating scale (baseline restores the ~3 mean),
  // unlike the raw residual factors which are near zero.
  double mean = 0;
  int n = 0;
  for (index_t u = 0; u < 20; ++u) {
    for (index_t i = 0; i < 20; ++i) {
      mean += rec.predict(u, i);
      ++n;
    }
  }
  mean /= n;
  EXPECT_GT(mean, 2.0);
  EXPECT_LT(mean, 4.0);
}

TEST(RecommenderBias, SaveLoadRoundTripWithBias) {
  const Coo all = biased_ratings(60, 50, 2500, 262);
  const Csr train = coo_to_csr(all);
  Recommender rec;
  rec.train_with_bias(train, opts(), devsim::xeon_e5_2670_dual());

  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  rec.save(s);
  const Recommender back = Recommender::load(s);
  EXPECT_TRUE(back.has_bias());
  EXPECT_FLOAT_EQ(back.predict(3, 7), rec.predict(3, 7));
  EXPECT_FLOAT_EQ(back.bias().global_mean(), rec.bias().global_mean());
}

TEST(RecommenderBias, V1ModelsStillLoad) {
  const Csr train = testing::random_csr(30, 20, 0.2, 263);
  Recommender rec;
  rec.train(train, opts(), devsim::xeon_e5_2670_dual());
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  rec.save(s);
  const Recommender back = Recommender::load(s);
  EXPECT_FALSE(back.has_bias());
  EXPECT_FLOAT_EQ(back.predict(1, 1), rec.predict(1, 1));
}

TEST(RecommenderBias, RecommendScoresMatchPredict) {
  const Coo all = biased_ratings(50, 40, 2000, 264);
  const Csr train = coo_to_csr(all);
  Recommender rec;
  rec.train_with_bias(train, opts(), devsim::xeon_e5_2670_dual());
  const auto recs = rec.recommend(5, 3);
  for (const auto& r : recs) {
    EXPECT_FLOAT_EQ(r.score, rec.predict(5, r.item));
  }
}

TEST(RecommenderBias, NpyExportRoundTrips) {
  const Csr train = testing::random_csr(25, 15, 0.25, 265);
  Recommender rec;
  rec.train(train, opts(), devsim::xeon_e5_2670_dual());
  const std::string prefix = ::testing::TempDir() + "/alsmf_export_";
  rec.export_factors_npy(prefix);
  const Matrix x = read_npy_file(prefix + "user_factors.npy");
  const Matrix y = read_npy_file(prefix + "item_factors.npy");
  EXPECT_EQ(x, rec.user_factors());
  EXPECT_EQ(y, rec.item_factors());
}

}  // namespace
}  // namespace alsmf
