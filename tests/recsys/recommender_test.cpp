#include "recsys/recommender.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

AlsOptions opts() {
  AlsOptions o;
  o.k = 6;
  o.lambda = 0.1f;
  o.iterations = 8;
  o.seed = 5;
  o.num_groups = 128;
  return o;
}

Csr planted_train() {
  SyntheticSpec spec;
  spec.users = 200;
  spec.items = 150;
  spec.nnz = 8000;
  spec.planted_rank = 3;
  spec.noise = 0.1;
  spec.seed = 61;
  return coo_to_csr(generate_synthetic(spec));
}

TEST(Recommender, TrainReportsMetrics) {
  Recommender rec;
  const auto report =
      rec.train(planted_train(), opts(), devsim::xeon_e5_2670_dual());
  EXPECT_TRUE(rec.trained());
  EXPECT_GT(report.modeled_seconds, 0.0);
  EXPECT_GT(report.train_rmse, 0.0);
  EXPECT_LT(report.train_rmse, 1.0);
  EXPECT_EQ(report.device, "2 x Xeon E5-2670");
  EXPECT_EQ(rec.users(), 200);
  EXPECT_EQ(rec.items(), 150);
  EXPECT_EQ(rec.k(), 6);
}

TEST(Recommender, SameFactorsOnEveryDevice) {
  const Csr train = planted_train();
  Recommender a, b, c;
  const AlsVariant v = AlsVariant::batch_local();
  a.train(train, opts(), devsim::k20c(), v);
  b.train(train, opts(), devsim::xeon_e5_2670_dual(), v);
  c.train(train, opts(), devsim::xeon_phi_31sp(), v);
  EXPECT_EQ(a.user_factors(), b.user_factors());
  EXPECT_EQ(b.user_factors(), c.user_factors());
}

TEST(Recommender, PredictBeforeTrainThrows) {
  Recommender rec;
  EXPECT_THROW(rec.predict(0, 0), Error);
  EXPECT_THROW(rec.recommend(0, 3), Error);
}

TEST(Recommender, PredictBoundsChecked) {
  Recommender rec;
  rec.train(planted_train(), opts(), devsim::xeon_e5_2670_dual());
  EXPECT_THROW(rec.predict(200, 0), Error);
  EXPECT_THROW(rec.predict(0, 150), Error);
  EXPECT_NO_THROW(rec.predict(199, 149));
}

TEST(Recommender, RecommendSortedDescendingAndSized) {
  Recommender rec;
  rec.train(planted_train(), opts(), devsim::xeon_e5_2670_dual());
  const auto recs = rec.recommend(3, 10);
  ASSERT_EQ(recs.size(), 10u);
  for (std::size_t i = 1; i < recs.size(); ++i) {
    EXPECT_GE(recs[i - 1].score, recs[i].score);
  }
}

TEST(Recommender, RecommendTopItemIsArgmax) {
  Recommender rec;
  rec.train(planted_train(), opts(), devsim::xeon_e5_2670_dual());
  const auto recs = rec.recommend(7, 1);
  ASSERT_EQ(recs.size(), 1u);
  for (index_t i = 0; i < rec.items(); ++i) {
    EXPECT_LE(rec.predict(7, i), recs[0].score + 1e-5);
  }
}

TEST(Recommender, RecommendExcludesRatedItems) {
  const Csr train = planted_train();
  Recommender rec;
  rec.train(train, opts(), devsim::xeon_e5_2670_dual());
  // Pick a user with several ratings.
  index_t user = 0;
  for (index_t u = 0; u < train.rows(); ++u) {
    if (train.row_nnz(u) >= 5) {
      user = u;
      break;
    }
  }
  const auto recs = rec.recommend(user, 20, &train);
  auto rated = train.row_cols(user);
  for (const auto& r : recs) {
    for (auto item : rated) EXPECT_NE(r.item, item);
  }
}

TEST(Recommender, RecommendMoreThanItemsClamps) {
  Recommender rec;
  rec.train(planted_train(), opts(), devsim::xeon_e5_2670_dual());
  const auto recs = rec.recommend(0, 10000);
  EXPECT_EQ(recs.size(), static_cast<std::size_t>(rec.items()));
}

TEST(Recommender, SaveLoadRoundTrip) {
  Recommender rec;
  rec.train(planted_train(), opts(), devsim::xeon_e5_2670_dual());
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  rec.save(s);
  Recommender back = Recommender::load(s);
  EXPECT_EQ(back.user_factors(), rec.user_factors());
  EXPECT_EQ(back.item_factors(), rec.item_factors());
  EXPECT_FLOAT_EQ(back.predict(3, 4), rec.predict(3, 4));
}

TEST(Recommender, LoadRejectsGarbage) {
  std::stringstream s;
  s << "not a model";
  EXPECT_THROW(Recommender::load(s), Error);
}

TEST(Recommender, TestRmseReasonableOnHoldout) {
  SyntheticSpec spec;
  spec.users = 400;
  spec.items = 250;
  spec.nnz = 20000;
  spec.planted_rank = 3;
  spec.noise = 0.2;
  spec.seed = 62;
  const Coo all = generate_synthetic(spec);
  auto [train, test] = split_holdout(all, 0.1, 9);
  Recommender rec;
  rec.train(coo_to_csr(train), opts(), devsim::xeon_e5_2670_dual());
  // Planted data: holdout error must beat the trivial all-3s predictor.
  EXPECT_LT(rec.rmse_on(test), 1.2);
}

}  // namespace
}  // namespace alsmf
