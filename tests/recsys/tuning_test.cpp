#include "recsys/tuning.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

Coo planted() {
  SyntheticSpec spec;
  spec.users = 200;
  spec.items = 120;
  spec.nnz = 7000;
  spec.planted_rank = 3;
  spec.noise = 0.15;
  spec.integer_ratings = false;
  spec.seed = 180;
  return generate_synthetic(spec);
}

TEST(Tuning, EvaluatesEveryGridPointSorted) {
  TuningGrid grid;
  grid.ks = {2, 4};
  grid.lambdas = {0.05f, 0.5f};
  grid.iterations = 4;
  const TuningResult r = grid_search(planted(), grid);
  EXPECT_EQ(r.all.size(), 4u);
  for (std::size_t i = 1; i < r.all.size(); ++i) {
    EXPECT_LE(r.all[i - 1].validation_rmse, r.all[i].validation_rmse);
  }
  EXPECT_EQ(r.best.k, r.all.front().k);
  EXPECT_GT(r.best.validation_rmse, 0.0);
}

TEST(Tuning, PrefersSufficientRankOnPlantedData) {
  // Planted rank 3: k = 1 must lose to k = 6 on validation.
  TuningGrid grid;
  grid.ks = {1, 6};
  grid.lambdas = {0.05f};
  grid.iterations = 8;
  const TuningResult r = grid_search(planted(), grid);
  EXPECT_EQ(r.best.k, 6);
}

TEST(Tuning, ExtremeLambdaLoses) {
  TuningGrid grid;
  grid.ks = {4};
  grid.lambdas = {0.05f, 500.0f};  // absurd ridge underfits badly
  grid.iterations = 6;
  const TuningResult r = grid_search(planted(), grid);
  EXPECT_FLOAT_EQ(r.best.lambda, 0.05f);
}

TEST(Tuning, DeterministicInSeed) {
  TuningGrid grid;
  grid.ks = {3};
  grid.lambdas = {0.1f};
  grid.iterations = 3;
  ThreadPool pool(1);
  const TuningResult a = grid_search(planted(), grid, &pool);
  const TuningResult b = grid_search(planted(), grid, &pool);
  EXPECT_DOUBLE_EQ(a.best.validation_rmse, b.best.validation_rmse);
}

TEST(Tuning, InvalidGridRejected) {
  TuningGrid empty;
  empty.ks = {};
  EXPECT_THROW(grid_search(planted(), empty), Error);
  TuningGrid bad_frac;
  bad_frac.validation_fraction = 0.0;
  EXPECT_THROW(grid_search(planted(), bad_frac), Error);
}

}  // namespace
}  // namespace alsmf
