#include "robust/checkpoint.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "als/solver.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "robust/fault_injection.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

robust::TrainingCheckpoint sample_checkpoint() {
  robust::TrainingCheckpoint ckpt;
  ckpt.options_hash = 0xdeadbeefcafef00dULL;
  ckpt.iteration = 7;
  ckpt.rng_state = {1, 2, 3, 4};
  Rng rng(99);
  ckpt.x = Matrix(6, 4);
  ckpt.x.fill_uniform(rng, -1.0f, 1.0f);
  ckpt.y = Matrix(5, 4);
  ckpt.y.fill_uniform(rng, -1.0f, 1.0f);
  return ckpt;
}

void flip_byte(const fs::path& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.good());
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.get(byte);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(byte ^ 0xff));
}

std::string error_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(Checkpoint, RoundTripIsBitwiseExact) {
  const auto dir = fresh_dir("ckpt_roundtrip");
  const auto ckpt = sample_checkpoint();
  const auto path = robust::checkpoint_path(dir.string(), ckpt.iteration);
  robust::save_checkpoint_file(path, ckpt);

  const auto loaded = robust::load_checkpoint_file(path);
  EXPECT_EQ(loaded.options_hash, ckpt.options_hash);
  EXPECT_EQ(loaded.iteration, ckpt.iteration);
  EXPECT_EQ(loaded.rng_state, ckpt.rng_state);
  EXPECT_EQ(loaded.x, ckpt.x);  // Matrix operator== is bitwise
  EXPECT_EQ(loaded.y, ckpt.y);
}

TEST(Checkpoint, SaveIsAtomicNoTmpLeftBehind) {
  const auto dir = fresh_dir("ckpt_atomic");
  const auto path = robust::checkpoint_path(dir.string(), 1);
  robust::save_checkpoint_file(path, sample_checkpoint());
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(path + ".tmp"));

  // Overwriting an existing checkpoint goes through the same tmp+rename.
  auto updated = sample_checkpoint();
  updated.iteration = 42;
  robust::save_checkpoint_file(path, updated);
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_EQ(robust::load_checkpoint_file(path).iteration, 42);
}

TEST(Checkpoint, CorruptedPayloadFailsCrcWithOffset) {
  const auto dir = fresh_dir("ckpt_crc");
  const auto path = robust::checkpoint_path(dir.string(), 1);
  robust::save_checkpoint_file(path, sample_checkpoint());
  // Offset 120 lands inside the X factor section's float payload
  // (magic 8 + header section 72 + X tag/len 12 + shape 16 = 108).
  flip_byte(path, 120);

  const auto msg =
      error_message([&] { robust::load_checkpoint_file(path); });
  EXPECT_NE(msg.find("CRC mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at offset"), std::string::npos) << msg;
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
}

TEST(Checkpoint, TruncatedFileIsRejected) {
  const auto dir = fresh_dir("ckpt_trunc");
  const auto path = robust::checkpoint_path(dir.string(), 1);
  robust::save_checkpoint_file(path, sample_checkpoint());
  fs::resize_file(path, fs::file_size(path) - 10);

  const auto msg =
      error_message([&] { robust::load_checkpoint_file(path); });
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at offset"), std::string::npos) << msg;
}

TEST(Checkpoint, BadMagicIsRejected) {
  const auto dir = fresh_dir("ckpt_magic");
  const auto path = robust::checkpoint_path(dir.string(), 1);
  robust::save_checkpoint_file(path, sample_checkpoint());
  flip_byte(path, 0);

  const auto msg =
      error_message([&] { robust::load_checkpoint_file(path); });
  EXPECT_NE(msg.find("bad magic"), std::string::npos) << msg;
}

TEST(Checkpoint, InjectedIoFaultSurfacesAsTruncation) {
  const auto dir = fresh_dir("ckpt_iofault");
  const auto path = robust::checkpoint_path(dir.string(), 1);
  robust::save_checkpoint_file(path, sample_checkpoint());

  robust::FaultPlan plan;
  plan.exact[static_cast<int>(robust::FaultSite::kIoRead)] = {0};
  robust::ScopedFaultInjector scoped(plan);
  const auto msg =
      error_message([&] { robust::load_checkpoint_file(path); });
  EXPECT_NE(msg.find("injected I/O fault"), std::string::npos) << msg;
}

TEST(Checkpoint, ListAndPrune) {
  const auto dir = fresh_dir("ckpt_list");
  for (std::int64_t it : {3, 1, 5, 2, 4}) {
    auto ckpt = sample_checkpoint();
    ckpt.iteration = it;
    robust::save_checkpoint_file(robust::checkpoint_path(dir.string(), it),
                                 ckpt);
  }
  const auto all = robust::list_checkpoints(dir.string());
  ASSERT_EQ(all.size(), 5u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].iteration, static_cast<std::int64_t>(i + 1));
  }

  robust::prune_checkpoints(dir.string(), 2);
  const auto kept = robust::list_checkpoints(dir.string());
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0].iteration, 4);
  EXPECT_EQ(kept[1].iteration, 5);

  EXPECT_TRUE(robust::list_checkpoints((dir / "missing").string()).empty());
}

// ---------------------------------------------------------------------------
// Solver integration: save/resume semantics.

AlsOptions train_opts() {
  AlsOptions o;
  o.k = 4;
  o.lambda = 0.1f;
  o.iterations = 6;
  o.seed = 11;
  o.num_groups = 64;
  return o;
}

TEST(Checkpoint, TrajectoryHashCoversTrajectoryOnly) {
  const Csr train = testing::random_csr(40, 30, 0.2, 19);
  const Csr other = testing::random_csr(41, 30, 0.2, 19);
  const AlsOptions base = train_opts();
  const auto h = trajectory_hash(base, train);

  // Launch shape and guard knobs do not change the factors, so checkpoints
  // stay interchangeable across them.
  AlsOptions groups = base;
  groups.num_groups = 256;
  EXPECT_EQ(trajectory_hash(groups, train), h);
  AlsOptions guards = base;
  guards.guard_max_attempts = 9;
  guards.guard_kernel_retries = 0;
  EXPECT_EQ(trajectory_hash(guards, train), h);

  AlsOptions lambda = base;
  lambda.lambda = 0.2f;
  EXPECT_NE(trajectory_hash(lambda, train), h);
  AlsOptions rank = base;
  rank.k = 5;
  EXPECT_NE(trajectory_hash(rank, train), h);
  AlsOptions seed = base;
  seed.seed = 12;
  EXPECT_NE(trajectory_hash(seed, train), h);
  EXPECT_NE(trajectory_hash(base, other), h);
}

TEST(Checkpoint, SolverRoundTripRestoresFullState) {
  const Csr train = testing::random_csr(40, 30, 0.2, 19);
  const AlsOptions o = train_opts();
  const auto dir = fresh_dir("ckpt_solver");

  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batch_local_reg(), device);
  solver.run_iteration();
  solver.run_iteration();
  const auto path = robust::checkpoint_path(dir.string(), 2);
  solver.save_checkpoint(path);
  solver.run_iteration();  // diverge from the saved state

  devsim::Device device2(devsim::k20c());
  AlsSolver resumed(train, o, AlsVariant::batch_local_reg(), device2);
  resumed.resume_from_checkpoint(path);
  EXPECT_EQ(resumed.iterations_done(), 2);
  resumed.run_iteration();
  EXPECT_EQ(resumed.x(), solver.x());
  EXPECT_EQ(resumed.y(), solver.y());
}

TEST(Checkpoint, ResumeRefusesDifferentTrajectory) {
  const Csr train = testing::random_csr(40, 30, 0.2, 19);
  const auto dir = fresh_dir("ckpt_mismatch");
  const auto path = robust::checkpoint_path(dir.string(), 1);

  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, train_opts(), AlsVariant::batch_local_reg(), device);
  solver.run_iteration();
  solver.save_checkpoint(path);

  AlsOptions other = train_opts();
  other.lambda = 0.5f;
  devsim::Device device2(devsim::k20c());
  AlsSolver mismatched(train, other, AlsVariant::batch_local_reg(), device2);
  EXPECT_THROW(mismatched.resume_from_checkpoint(path), Error);
  // resume_latest skips the mismatched file instead of throwing.
  EXPECT_EQ(mismatched.resume_latest(dir.string()), -1);
  EXPECT_EQ(mismatched.iterations_done(), 0);
}

TEST(Checkpoint, ResumeLatestSkipsCorruptNewest) {
  const Csr train = testing::random_csr(40, 30, 0.2, 19);
  const AlsOptions o = train_opts();
  const auto dir = fresh_dir("ckpt_skip_corrupt");

  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batch_local_reg(), device);
  solver.run_iteration();
  solver.save_checkpoint(robust::checkpoint_path(dir.string(), 1));
  solver.run_iteration();
  const auto newest = robust::checkpoint_path(dir.string(), 2);
  solver.save_checkpoint(newest);
  flip_byte(newest, 120);

  devsim::Device device2(devsim::k20c());
  AlsSolver resumed(train, o, AlsVariant::batch_local_reg(), device2);
  EXPECT_EQ(resumed.resume_latest(dir.string()), 1);
  EXPECT_EQ(resumed.iterations_done(), 1);
}

TEST(Checkpoint, KillMidIterationResumeMatchesUninterruptedRun) {
  const Csr train = testing::random_csr(40, 30, 0.2, 19);
  AlsOptions o = train_opts();
  o.guard_kernel_retries = 0;  // the injected crash must propagate
  const auto dir = fresh_dir("ckpt_kill_resume");
  const CheckpointConfig config{dir.string(), /*every=*/1, /*keep=*/0};
  RunConfig ckpt_run;
  ckpt_run.checkpoint = config;

  devsim::Device ref_device(devsim::k20c());
  AlsSolver uninterrupted(train, o, AlsVariant::batch_local_reg(), ref_device);
  uninterrupted.run({});

  // Each iteration is two launches; occurrence 6 is iteration 4's update_x.
  // The "crash" kills the run after checkpoints for iterations 1-3 landed.
  {
    robust::FaultPlan plan;
    plan.exact[static_cast<int>(robust::FaultSite::kKernelLaunch)] = {6};
    robust::ScopedFaultInjector scoped(plan);
    devsim::Device device(devsim::k20c());
    AlsSolver crashed(train, o, AlsVariant::batch_local_reg(), device);
    EXPECT_THROW(crashed.run(ckpt_run), Error);
    EXPECT_EQ(crashed.iterations_done(), 3);
  }
  ASSERT_EQ(robust::list_checkpoints(dir.string()).size(), 3u);

  // A fresh process resumes from the newest checkpoint and finishes.
  devsim::Device device(devsim::k20c());
  AlsSolver resumed(train, o, AlsVariant::batch_local_reg(), device);
  EXPECT_EQ(resumed.resume_latest(dir.string()), 3);
  resumed.run(ckpt_run);
  EXPECT_EQ(resumed.iterations_done(), o.iterations);

  EXPECT_EQ(resumed.x(), uninterrupted.x());  // bitwise
  EXPECT_EQ(resumed.y(), uninterrupted.y());
  EXPECT_NEAR(resumed.train_rmse(), uninterrupted.train_rmse(), 1e-6);
}

}  // namespace
}  // namespace alsmf
