#include "robust/circuit_breaker.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace alsmf::robust {
namespace {

using std::chrono::milliseconds;
using clock_t_ = CircuitBreaker::clock;

CircuitBreakerOptions fast_options() {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown = milliseconds(100);
  options.half_open_trials = 1;
  return options;
}

// All tests inject explicit time points — nothing here ever sleeps.
const clock_t_::time_point t0{};

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreaker breaker(fast_options());
  EXPECT_EQ(breaker.state(t0), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(t0));
  breaker.record_failure(t0);
  breaker.record_failure(t0);
  EXPECT_EQ(breaker.state(t0), BreakerState::kClosed);
  breaker.record_failure(t0);
  EXPECT_EQ(breaker.state(t0), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);

  EXPECT_FALSE(breaker.allow(t0 + milliseconds(50)));
  EXPECT_FALSE(breaker.allow(t0 + milliseconds(99)));
  EXPECT_EQ(breaker.rejections(), 2u);
}

TEST(CircuitBreaker, SuccessResetsConsecutiveFailureCount) {
  CircuitBreaker breaker(fast_options());
  breaker.record_failure(t0);
  breaker.record_failure(t0);
  breaker.record_success(t0);  // streak broken
  breaker.record_failure(t0);
  breaker.record_failure(t0);
  EXPECT_EQ(breaker.state(t0), BreakerState::kClosed);
  breaker.record_failure(t0);
  EXPECT_EQ(breaker.state(t0), BreakerState::kOpen);
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  CircuitBreaker breaker(fast_options());
  for (int i = 0; i < 3; ++i) breaker.record_failure(t0);
  ASSERT_EQ(breaker.state(t0), BreakerState::kOpen);

  const auto probe_time = t0 + milliseconds(150);
  EXPECT_TRUE(breaker.allow(probe_time));  // cooldown elapsed → probe admitted
  EXPECT_EQ(breaker.state(probe_time), BreakerState::kHalfOpen);
  // Only half_open_trials=1 probe may be in flight.
  EXPECT_FALSE(breaker.allow(probe_time));

  breaker.record_success(probe_time);
  EXPECT_EQ(breaker.state(probe_time), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(probe_time));
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreaker, HalfOpenProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(fast_options());
  for (int i = 0; i < 3; ++i) breaker.record_failure(t0);

  const auto probe_time = t0 + milliseconds(150);
  ASSERT_TRUE(breaker.allow(probe_time));
  breaker.record_failure(probe_time);
  EXPECT_EQ(breaker.state(probe_time), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);

  // Cooldown restarted at the probe failure, not the original trip.
  EXPECT_FALSE(breaker.allow(probe_time + milliseconds(99)));
  EXPECT_TRUE(breaker.allow(probe_time + milliseconds(101)));
  EXPECT_EQ(breaker.state(probe_time + milliseconds(101)),
            BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, MultipleHalfOpenTrials) {
  CircuitBreakerOptions options = fast_options();
  options.half_open_trials = 2;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 3; ++i) breaker.record_failure(t0);

  const auto probe_time = t0 + milliseconds(150);
  EXPECT_TRUE(breaker.allow(probe_time));
  EXPECT_TRUE(breaker.allow(probe_time));
  EXPECT_FALSE(breaker.allow(probe_time));
}

TEST(CircuitBreaker, StateToStringAndJson) {
  CircuitBreaker breaker(fast_options());
  EXPECT_STREQ(to_string(BreakerState::kClosed), "closed");
  EXPECT_STREQ(to_string(BreakerState::kOpen), "open");
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half_open");

  for (int i = 0; i < 3; ++i) breaker.record_failure(t0);
  breaker.allow(t0);  // rejected
  const auto json = breaker.to_json();
  EXPECT_NE(json.find("\"trips\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rejections\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace alsmf::robust
