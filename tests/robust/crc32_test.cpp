#include "robust/crc32.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace alsmf::robust {
namespace {

TEST(Crc32, KnownVectors) {
  // The standard CRC-32/IEEE check value.
  const char check[] = "123456789";
  EXPECT_EQ(crc32(check, std::strlen(check)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
  const char a[] = "a";
  EXPECT_EQ(crc32(a, 1), 0xE8B7BE43u);
}

TEST(Crc32, ChunkedEqualsWhole) {
  const std::string data =
      "ALS factor checkpoints checksum every section payload.";
  const auto whole = crc32(data.data(), data.size());
  for (std::size_t split = 0; split <= data.size(); ++split) {
    const auto first = crc32(data.data(), split);
    const auto chunked = crc32(data.data() + split, data.size() - split, first);
    EXPECT_EQ(chunked, whole) << "split at " << split;
  }
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data(64, '\x5a');
  const auto clean = crc32(data.data(), data.size());
  for (std::size_t byte : {0u, 31u, 63u}) {
    std::string flipped = data;
    flipped[byte] = static_cast<char>(flipped[byte] ^ 0x01);
    EXPECT_NE(crc32(flipped.data(), flipped.size()), clean) << "byte " << byte;
  }
}

}  // namespace
}  // namespace alsmf::robust
