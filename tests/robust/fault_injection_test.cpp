#include "robust/fault_injection.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "als/solver.hpp"
#include "testing/util.hpp"

namespace alsmf::robust {
namespace {

// CI's fault-injection smoke job sweeps this over several seeds; every
// recovery property below must hold for any seed.
std::uint64_t fault_seed() {
  const char* env = std::getenv("ALSMF_FAULT_SEED");
  return env ? std::strtoull(env, nullptr, 10) : 42;
}

TEST(FaultInjection, DecisionsDependOnlyOnSeedAndOccurrence) {
  FaultPlan plan;
  plan.seed = 123;
  plan.probability[static_cast<int>(FaultSite::kSolve)] = 0.5;
  FaultInjector a(plan), b(plan);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.should_fault(FaultSite::kSolve),
              b.should_fault(FaultSite::kSolve))
        << "occurrence " << i;
  }
  EXPECT_EQ(a.triggered(FaultSite::kSolve), b.triggered(FaultSite::kSolve));
  EXPECT_EQ(a.occurrences(FaultSite::kSolve), 1000u);
}

TEST(FaultInjection, ExactOccurrenceIndicesFire) {
  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kKernelLaunch)] = {2, 5};
  FaultInjector injector(plan);
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    if (injector.should_fault(FaultSite::kKernelLaunch)) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{2, 5}));
  EXPECT_EQ(injector.triggered(FaultSite::kKernelLaunch), 2u);
}

TEST(FaultInjection, SitesHaveIndependentCounters) {
  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kSolve)] = {0};
  FaultInjector injector(plan);
  // Occurrences at other sites must not consume kSolve's index 0.
  EXPECT_FALSE(injector.should_fault(FaultSite::kKernelLaunch));
  EXPECT_FALSE(injector.should_fault(FaultSite::kIoRead));
  EXPECT_TRUE(injector.should_fault(FaultSite::kSolve));
}

TEST(FaultInjection, BudgetCapsTotalFaults) {
  FaultPlan plan;
  plan.probability[static_cast<int>(FaultSite::kSolve)] = 1.0;
  plan.max_faults = 3;
  FaultInjector injector(plan);
  for (int i = 0; i < 10; ++i) injector.should_fault(FaultSite::kSolve);
  EXPECT_EQ(injector.triggered(FaultSite::kSolve), 3u);
  EXPECT_EQ(injector.total_triggered(), 3u);
}

TEST(FaultInjection, ProbabilityIsRoughlyRespected) {
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.probability[static_cast<int>(FaultSite::kSolve)] = 0.3;
  FaultInjector injector(plan);
  for (int i = 0; i < 2000; ++i) injector.should_fault(FaultSite::kSolve);
  const auto hits = injector.triggered(FaultSite::kSolve);
  // 0.3 * 2000 = 600; a counter-based hash is far inside ±150 at n=2000.
  EXPECT_GT(hits, 450u);
  EXPECT_LT(hits, 750u);
}

TEST(FaultInjection, NoInjectorMeansNoFaults) {
  ASSERT_EQ(installed_fault_injector(), nullptr);
  EXPECT_FALSE(fault_at(FaultSite::kKernelLaunch));
  EXPECT_FALSE(fault_at(FaultSite::kSolve));
}

TEST(FaultInjection, ScopedInstallAndUninstall) {
  {
    ScopedFaultInjector scoped(FaultPlan{});
    EXPECT_EQ(installed_fault_injector(), &scoped.injector());
  }
  EXPECT_EQ(installed_fault_injector(), nullptr);
}

TEST(FaultInjection, KeyedDecisionsDependOnlyOnSeedSiteAndKey) {
  FaultPlan plan;
  plan.seed = fault_seed();
  plan.probability[static_cast<int>(FaultSite::kDeviceFailure)] = 0.5;
  FaultInjector a(plan), b(plan);
  // Same keys queried in opposite orders: decisions must agree pairwise —
  // the property that makes concurrent coordinator threads replayable.
  std::vector<std::uint64_t> keys;
  for (std::uint64_t dev = 0; dev < 4; ++dev) {
    for (std::uint64_t occ = 0; occ < 50; ++occ) {
      keys.push_back(fault_key(dev, occ));
    }
  }
  std::vector<bool> forward;
  for (const auto key : keys) {
    forward.push_back(a.should_fault_keyed(FaultSite::kDeviceFailure, key));
  }
  for (std::size_t i = keys.size(); i > 0; --i) {
    EXPECT_EQ(b.should_fault_keyed(FaultSite::kDeviceFailure, keys[i - 1]),
              static_cast<bool>(forward[i - 1]));
  }
  EXPECT_EQ(a.triggered(FaultSite::kDeviceFailure),
            b.triggered(FaultSite::kDeviceFailure));
}

TEST(FaultInjection, KeyedExactEntriesMatchTheKey) {
  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kStraggler)] = {fault_key(2, 1)};
  FaultInjector injector(plan);
  EXPECT_FALSE(injector.should_fault_keyed(FaultSite::kStraggler,
                                           fault_key(2, 0)));
  EXPECT_FALSE(injector.should_fault_keyed(FaultSite::kStraggler,
                                           fault_key(1, 1)));
  EXPECT_TRUE(injector.should_fault_keyed(FaultSite::kStraggler,
                                          fault_key(2, 1)));
  EXPECT_EQ(injector.occurrences(FaultSite::kStraggler), 3u);
  EXPECT_EQ(injector.triggered(FaultSite::kStraggler), 1u);
}

TEST(FaultInjection, SuppressedAccountsForBudgetWithheldFaults) {
  FaultPlan plan;
  plan.probability[static_cast<int>(FaultSite::kSolve)] = 1.0;
  plan.max_faults = 3;
  FaultInjector injector(plan);
  for (int i = 0; i < 10; ++i) injector.should_fault(FaultSite::kSolve);
  EXPECT_EQ(injector.triggered(FaultSite::kSolve), 3u);
  EXPECT_EQ(injector.suppressed(FaultSite::kSolve), 7u);
  // The conservation invariant the metrics exposition gates on.
  EXPECT_EQ(injector.injected(FaultSite::kSolve),
            injector.triggered(FaultSite::kSolve) +
                injector.suppressed(FaultSite::kSolve));
  EXPECT_EQ(injector.injected(FaultSite::kSolve), 10u);
}

TEST(FaultInjection, UniformKeyedIsDeterministicAndInRange) {
  FaultPlan plan;
  plan.seed = fault_seed();
  FaultInjector a(plan), b(plan);
  for (std::uint64_t key = 0; key < 200; ++key) {
    const double u = a.uniform_keyed(FaultSite::kStraggler, key, 1);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_DOUBLE_EQ(u, b.uniform_keyed(FaultSite::kStraggler, key, 1));
    // Distinct salts give distinct streams (severity vs decision).
    EXPECT_NE(u, a.uniform_keyed(FaultSite::kStraggler, key, 2));
  }
  // uniform_keyed never advances occurrence counters.
  EXPECT_EQ(a.occurrences(FaultSite::kStraggler), 0u);
}

TEST(FaultInjection, SolveFaultsAreRecoveredByGuards) {
  const Csr train = testing::random_csr(40, 30, 0.2, 17);
  AlsOptions o;
  o.k = 4;
  o.lambda = 0.1f;
  o.iterations = 3;
  o.seed = 5;
  o.num_groups = 64;

  FaultPlan plan;
  plan.seed = fault_seed();
  plan.probability[static_cast<int>(FaultSite::kSolve)] = 0.25;
  ScopedFaultInjector scoped(plan);

  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batch_local_reg(), device);
  solver.run({});

  const auto& injector = scoped.injector();
  const auto faults = injector.triggered(FaultSite::kSolve);
  ASSERT_GT(faults, 0u) << "plan injected nothing; test is vacuous";

  // Every poisoned row was caught by the sweep and repaired or zeroed.
  const auto& report = solver.robustness_report();
  EXPECT_EQ(report.nonfinite_rows, faults);
  EXPECT_EQ(report.redamped_rows + report.zeroed_rows, report.nonfinite_rows);
  EXPECT_TRUE(nonfinite_rows(solver.x()).empty());
  EXPECT_TRUE(nonfinite_rows(solver.y()).empty());
}

TEST(FaultInjection, GuardRecoveryIsBitwiseExactForTransientFaults) {
  // A transient NaN solve re-solved by the guard at the original damping
  // must reproduce the fault-free factors bit for bit.
  const Csr train = testing::random_csr(35, 25, 0.2, 23);
  AlsOptions o;
  o.k = 4;
  o.lambda = 0.1f;
  o.iterations = 2;
  o.seed = 7;
  o.num_groups = 64;

  devsim::Device clean_device(devsim::k20c());
  AlsSolver clean(train, o, AlsVariant::batch_local_reg(), clean_device);
  clean.run({});

  FaultPlan plan;
  plan.seed = fault_seed();
  plan.probability[static_cast<int>(FaultSite::kSolve)] = 0.2;
  ScopedFaultInjector scoped(plan);
  devsim::Device faulty_device(devsim::k20c());
  AlsSolver faulty(train, o, AlsVariant::batch_local_reg(), faulty_device);
  faulty.run({});

  ASSERT_GT(scoped.injector().triggered(FaultSite::kSolve), 0u);
  EXPECT_EQ(faulty.robustness_report().zeroed_rows, 0u);
  EXPECT_EQ(faulty.x(), clean.x());
  EXPECT_EQ(faulty.y(), clean.y());
}

TEST(FaultInjection, KernelLaunchFaultIsRetriedTransparently) {
  const Csr train = testing::random_csr(30, 20, 0.2, 31);
  AlsOptions o;
  o.k = 4;
  o.iterations = 2;
  o.seed = 3;
  o.num_groups = 64;
  ASSERT_EQ(o.guard_kernel_retries, 1);

  devsim::Device clean_device(devsim::k20c());
  AlsSolver clean(train, o, AlsVariant::batch_local_reg(), clean_device);
  clean.run({});

  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kKernelLaunch)] = {0, 3};
  ScopedFaultInjector scoped(plan);
  devsim::Device faulty_device(devsim::k20c());
  AlsSolver faulty(train, o, AlsVariant::batch_local_reg(), faulty_device);
  faulty.run({});

  EXPECT_EQ(faulty.robustness_report().kernel_relaunches, 2u);
  EXPECT_EQ(faulty.x(), clean.x());
  EXPECT_EQ(faulty.y(), clean.y());
}

TEST(FaultInjection, BackToBackKernelFaultsExhaustRetriesAndThrow) {
  const Csr train = testing::random_csr(30, 20, 0.2, 31);
  AlsOptions o;
  o.k = 4;
  o.iterations = 2;
  o.num_groups = 64;

  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kKernelLaunch)] = {0, 1};
  ScopedFaultInjector scoped(plan);
  devsim::Device device(devsim::k20c());
  AlsSolver solver(train, o, AlsVariant::batch_local_reg(), device);
  EXPECT_THROW(solver.run({}), Error);
}

}  // namespace
}  // namespace alsmf::robust
