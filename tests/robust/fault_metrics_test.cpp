#include "robust/fault_metrics.hpp"

#include <gtest/gtest.h>

#include "obs/registry.hpp"
#include "robust/fault_injection.hpp"

namespace alsmf::robust {
namespace {

obs::Labels site_labels(FaultSite site) {
  return {{"site", to_string(site)}};
}

TEST(FaultMetrics, ExportsPerSiteCountsAndConservationHolds) {
  FaultPlan plan;
  plan.seed = 9;
  plan.probability[static_cast<int>(FaultSite::kSolve)] = 1.0;
  plan.max_faults = 2;
  FaultInjector injector(plan);
  for (int i = 0; i < 10; ++i) injector.should_fault(FaultSite::kSolve);

  obs::Registry registry;
  export_fault_metrics(injector, registry);

  const auto labels = site_labels(FaultSite::kSolve);
  EXPECT_EQ(
      registry.counter("fault_injection_occurrences_total", labels).value(),
      10u);
  EXPECT_EQ(registry.counter("fault_injection_injected_total", labels).value(),
            10u);
  EXPECT_EQ(registry.counter("fault_injection_observed_total", labels).value(),
            2u);
  EXPECT_EQ(
      registry.counter("fault_injection_suppressed_total", labels).value(),
      8u);
  // injected == observed + suppressed at every site.
  EXPECT_TRUE(registry.check_assertions().empty());

  const std::string text = registry.prometheus_text();
  EXPECT_NE(text.find("fault_injection_injected_total"), std::string::npos);
  EXPECT_NE(text.find("site=\"solve\""), std::string::npos);
}

TEST(FaultMetrics, RepeatedExportStaysMonotone) {
  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kKernelLaunch)] = {0};
  FaultInjector injector(plan);
  injector.should_fault(FaultSite::kKernelLaunch);

  obs::Registry registry;
  export_fault_metrics(injector, registry);
  export_fault_metrics(injector, registry);  // no new faults: no double count
  const auto labels = site_labels(FaultSite::kKernelLaunch);
  EXPECT_EQ(registry.counter("fault_injection_observed_total", labels).value(),
            1u);

  injector.should_fault(FaultSite::kKernelLaunch);  // occurrence 1: no fault
  export_fault_metrics(injector, registry);
  EXPECT_EQ(
      registry.counter("fault_injection_occurrences_total", labels).value(),
      2u);
  EXPECT_EQ(registry.counter("fault_injection_observed_total", labels).value(),
            1u);
  EXPECT_TRUE(registry.check_assertions().empty());
}

TEST(FaultMetrics, ConservationAssertionCatchesDrift) {
  FaultInjector injector(FaultPlan{});
  obs::Registry registry;
  export_fault_metrics(injector, registry);
  EXPECT_TRUE(registry.check_assertions().empty());

  // Tamper with one side of the invariant: the assertion must flag it.
  registry
      .counter("fault_injection_observed_total",
               site_labels(FaultSite::kDeviceFailure))
      .inc();
  const auto violations = registry.check_assertions();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("device_failure"), std::string::npos);
  EXPECT_NE(violations[0].find("injected"), std::string::npos);
}

TEST(FaultMetrics, CoversDistributedSites) {
  FaultPlan plan;
  plan.exact[static_cast<int>(FaultSite::kLinkTransfer)] = {fault_key(1, 0)};
  FaultInjector injector(plan);
  injector.should_fault_keyed(FaultSite::kLinkTransfer, fault_key(1, 0));
  injector.should_fault_keyed(FaultSite::kLinkTransfer, fault_key(0, 0));

  obs::Registry registry;
  export_fault_metrics(injector, registry);
  const auto labels = site_labels(FaultSite::kLinkTransfer);
  EXPECT_EQ(
      registry.counter("fault_injection_occurrences_total", labels).value(),
      2u);
  EXPECT_EQ(registry.counter("fault_injection_observed_total", labels).value(),
            1u);
  EXPECT_TRUE(registry.check_assertions().empty());
}

}  // namespace
}  // namespace alsmf::robust
