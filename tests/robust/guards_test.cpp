#include "robust/guards.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace alsmf::robust {
namespace {

constexpr real kNaN = std::numeric_limits<real>::quiet_NaN();
constexpr real kInf = std::numeric_limits<real>::infinity();

Matrix finite_matrix(index_t rows, index_t cols) {
  Matrix m(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) m(r, c) = static_cast<real>(r * 10 + c);
  }
  return m;
}

TEST(Guards, NonfiniteRowsFindsNaNAndInf) {
  Matrix m = finite_matrix(5, 3);
  m(1, 2) = kNaN;
  m(3, 0) = -kInf;
  EXPECT_EQ(nonfinite_rows(m), (std::vector<index_t>{1, 3}));
  EXPECT_TRUE(nonfinite_rows(finite_matrix(4, 2)).empty());
}

TEST(Guards, RepairsBadRowsViaResolver) {
  Matrix m = finite_matrix(4, 3);
  m(0, 1) = kNaN;
  m(2, 0) = kInf;
  RobustnessReport report;
  const auto touched = guard_rows(
      m,
      [](index_t row, real, real* out) {
        for (int c = 0; c < 3; ++c) out[c] = static_cast<real>(row) + 0.5f;
        return true;
      },
      GuardOptions{}, report);
  EXPECT_EQ(touched, 2u);
  EXPECT_EQ(report.guard_sweeps, 1u);
  EXPECT_EQ(report.nonfinite_rows, 2u);
  EXPECT_EQ(report.redamped_rows, 2u);
  EXPECT_EQ(report.zeroed_rows, 0u);
  EXPECT_FLOAT_EQ(m(0, 1), 0.5f);
  EXPECT_FLOAT_EQ(m(2, 0), 2.5f);
  // Healthy rows are untouched.
  EXPECT_FLOAT_EQ(m(1, 0), 10.0f);
  EXPECT_FLOAT_EQ(m(3, 2), 32.0f);
}

TEST(Guards, EscalatesLambdaPerAttempt) {
  Matrix m(1, 2);
  m(0, 0) = kNaN;
  m(0, 1) = 0;
  std::vector<real> scales;
  RobustnessReport report;
  GuardOptions options;
  options.lambda_escalation = 10.0f;
  options.max_attempts = 3;
  guard_rows(
      m,
      [&](index_t, real lambda_scale, real* out) {
        scales.push_back(lambda_scale);
        if (lambda_scale < 100.0f) return false;  // only heavy damping works
        out[0] = out[1] = 1.0f;
        return true;
      },
      options, report);
  // Attempt 0 repeats the original damping; escalation starts at attempt 1.
  ASSERT_EQ(scales.size(), 3u);
  EXPECT_FLOAT_EQ(scales[0], 1.0f);
  EXPECT_FLOAT_EQ(scales[1], 10.0f);
  EXPECT_FLOAT_EQ(scales[2], 100.0f);
  EXPECT_EQ(report.redamped_rows, 1u);
  EXPECT_FLOAT_EQ(m(0, 0), 1.0f);
}

TEST(Guards, ZeroesUnrecoverableRows) {
  Matrix m = finite_matrix(3, 3);
  m(1, 1) = kNaN;
  RobustnessReport report;
  guard_rows(
      m, [](index_t, real, real*) { return false; }, GuardOptions{}, report);
  EXPECT_EQ(report.zeroed_rows, 1u);
  EXPECT_EQ(report.redamped_rows, 0u);
  for (int c = 0; c < 3; ++c) EXPECT_EQ(m(1, c), 0.0f);
  EXPECT_TRUE(nonfinite_rows(m).empty());
}

TEST(Guards, ResolverReturningNonfiniteStillCountsAsFailure) {
  // A resolver whose "solution" is itself NaN must not be accepted.
  Matrix m(2, 2);
  m(0, 0) = kNaN;
  RobustnessReport report;
  guard_rows(
      m,
      [](index_t, real, real* out) {
        out[0] = out[1] = kNaN;
        return true;
      },
      GuardOptions{}, report);
  EXPECT_EQ(report.zeroed_rows, 1u);
  EXPECT_TRUE(nonfinite_rows(m).empty());
}

TEST(Guards, DisabledGuardIsNoOp) {
  Matrix m(2, 2);
  m(1, 0) = kNaN;
  RobustnessReport report;
  GuardOptions options;
  options.enabled = false;
  const auto touched = guard_rows(
      m, [](index_t, real, real*) { return true; }, options, report);
  EXPECT_EQ(touched, 0u);
  EXPECT_EQ(report.guard_sweeps, 0u);
  EXPECT_TRUE(std::isnan(m(1, 0)));
}

TEST(Guards, ReportMergeAndJson) {
  RobustnessReport a, b;
  a.nonfinite_rows = 2;
  a.redamped_rows = 1;
  b.nonfinite_rows = 3;
  b.zeroed_rows = 1;
  b.solver_fallbacks = 4;
  a.merge(b);
  EXPECT_EQ(a.nonfinite_rows, 5u);
  EXPECT_EQ(a.redamped_rows, 1u);
  EXPECT_EQ(a.zeroed_rows, 1u);
  EXPECT_EQ(a.solver_fallbacks, 4u);
  const auto json = a.to_json();
  EXPECT_NE(json.find("\"nonfinite_rows\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"zeroed_rows\":1"), std::string::npos) << json;
}

}  // namespace
}  // namespace alsmf::robust
