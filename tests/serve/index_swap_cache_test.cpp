// Satellite regression: the top-N result cache must be invalidated on an
// INDEX swap exactly as on a model swap — both eagerly and through the lazy
// version tag — so a cached list computed by the old index (or the
// exhaustive path) can never be served after swap_index publishes a new
// snapshot version.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "index/ivf_index.hpp"
#include "serve/lru_cache.hpp"
#include "serve/service.hpp"

namespace alsmf::serve {
namespace {

std::shared_ptr<ModelSnapshot> random_model(index_t users, index_t items,
                                            int k, std::uint64_t seed) {
  Rng rng(seed);
  Matrix x(users, k), y(items, k);
  x.fill_uniform(rng, -0.5f, 0.5f);
  y.fill_uniform(rng, -0.5f, 0.5f);
  return snapshot_from_factors(std::move(x), std::move(y), 0.1f);
}

TEST(IndexSwapCache, SwapIndexInvalidatesCachedTopN) {
  ServiceOptions options;
  options.cache_capacity = 64;
  RecommendService service(random_model(20, 150, 8, 1), options);
  const auto v1 = service.model_version();

  // Prime the cache and confirm the repeat is a hit.
  const auto first = service.topn(3, 5);
  ASSERT_EQ(first.model_version, v1);
  const auto repeat = service.topn(3, 5);
  EXPECT_EQ(repeat.model_version, v1);
  EXPECT_GE(service.cache_stats().hits, 1u);

  // Attach an IVF index: a new snapshot version, same factors.
  index::IvfOptions ivf;
  ivf.clusters = 8;
  const auto snap = service.snapshot();
  const auto v2 = service.swap_index(index::IvfIndex::build(snap->y, ivf));
  ASSERT_GT(v2, v1);

  // The cached v1 entry must not be served: the answer must carry v2.
  const auto after = service.topn(3, 5);
  EXPECT_EQ(after.model_version, v2);
  // Same factors, full-recall settings: the set should match, proving the
  // invalidation was about versioning, not about different results.
  ASSERT_EQ(after.topn.size(), first.topn.size());

  // Detach (null index): yet another version, cache again invalidated.
  const auto v3 = service.swap_index(nullptr);
  ASSERT_GT(v3, v2);
  const auto detached = service.topn(3, 5);
  EXPECT_EQ(detached.model_version, v3);
  EXPECT_EQ(service.metrics().swaps(), 2u);
}

TEST(IndexSwapCache, LazyVersionTagRejectsStalePutAfterSwap) {
  // A slow in-flight request computed against the old snapshot can insert
  // its result AFTER invalidate_all() ran; the version tag must still
  // reject it at read time. Exercised on the cache directly, as the
  // service's races are timing-dependent.
  TopNCache cache(8);
  const std::vector<Recommendation> stale{{7, 1.0f}};
  const std::vector<Recommendation> fresh{{9, 2.0f}};

  cache.put(3, 5, /*version=*/1, stale);
  cache.invalidate_all();           // the swap's eager invalidation
  cache.put(3, 5, /*version=*/1, stale);  // slow request lands late

  std::vector<Recommendation> out;
  EXPECT_FALSE(cache.get(3, 5, /*version=*/2, &out));  // tag mismatch
  cache.put(3, 5, /*version=*/2, fresh);
  ASSERT_TRUE(cache.get(3, 5, /*version=*/2, &out));
  EXPECT_EQ(out.front().item, 9);
}

TEST(IndexSwapCache, SwapIndexRequiresAPublishedModel) {
  RecommendService service(nullptr, {});
  EXPECT_THROW(service.swap_index(nullptr), Error);
}

}  // namespace
}  // namespace alsmf::serve
