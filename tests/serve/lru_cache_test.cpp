#include "serve/lru_cache.hpp"

#include <gtest/gtest.h>

namespace alsmf::serve {
namespace {

std::vector<Recommendation> recs(index_t item, real score) {
  return {{item, score}};
}

TEST(TopNCache, MissThenHit) {
  TopNCache cache(4);
  std::vector<Recommendation> out;
  EXPECT_FALSE(cache.get(7, 10, 1, &out));
  cache.put(7, 10, 1, recs(3, 1.5f));
  ASSERT_TRUE(cache.get(7, 10, 1, &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].item, 3);
  EXPECT_FLOAT_EQ(out[0].score, 1.5f);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(TopNCache, DifferentNIsDifferentKey) {
  TopNCache cache(4);
  cache.put(7, 10, 1, recs(3, 1.0f));
  EXPECT_FALSE(cache.get(7, 5, 1, nullptr));
  EXPECT_TRUE(cache.get(7, 10, 1, nullptr));
}

TEST(TopNCache, VersionMismatchIsMissAndEvicts) {
  TopNCache cache(4);
  cache.put(7, 10, 1, recs(3, 1.0f));
  // A swap happened: version 2 must never see version 1's entry.
  EXPECT_FALSE(cache.get(7, 10, 2, nullptr));
  EXPECT_EQ(cache.size(), 0u);  // stale entry dropped eagerly
  // And the old version can't resurrect it either.
  EXPECT_FALSE(cache.get(7, 10, 1, nullptr));
}

TEST(TopNCache, EvictsLeastRecentlyUsed) {
  TopNCache cache(2);
  cache.put(1, 10, 1, recs(1, 1.0f));
  cache.put(2, 10, 1, recs(2, 1.0f));
  EXPECT_TRUE(cache.get(1, 10, 1, nullptr));  // touch 1 → 2 is now LRU
  cache.put(3, 10, 1, recs(3, 1.0f));         // evicts 2
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.get(2, 10, 1, nullptr));
  EXPECT_TRUE(cache.get(1, 10, 1, nullptr));
  EXPECT_TRUE(cache.get(3, 10, 1, nullptr));
}

TEST(TopNCache, PutReplacesExistingEntry) {
  TopNCache cache(2);
  cache.put(1, 10, 1, recs(1, 1.0f));
  cache.put(1, 10, 2, recs(9, 2.0f));
  EXPECT_EQ(cache.size(), 1u);
  std::vector<Recommendation> out;
  ASSERT_TRUE(cache.get(1, 10, 2, &out));
  EXPECT_EQ(out[0].item, 9);
}

TEST(TopNCache, InvalidateAllClears) {
  TopNCache cache(4);
  cache.put(1, 10, 1, recs(1, 1.0f));
  cache.put(2, 10, 1, recs(2, 1.0f));
  cache.invalidate_all();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1, 10, 1, nullptr));
}

TEST(TopNCache, CapacityOneHoldsExactlyTheNewestEntry) {
  TopNCache cache(1);
  cache.put(1, 10, 1, recs(1, 1.0f));
  EXPECT_TRUE(cache.get(1, 10, 1, nullptr));
  cache.put(2, 10, 1, recs(2, 2.0f));  // evicts user 1
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.get(1, 10, 1, nullptr));
  std::vector<Recommendation> out;
  ASSERT_TRUE(cache.get(2, 10, 1, &out));
  EXPECT_EQ(out[0].item, 2);
  // Re-putting the same key at capacity 1 must replace, not evict-then-grow.
  cache.put(2, 10, 1, recs(9, 9.0f));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.get(2, 10, 1, &out));
  EXPECT_EQ(out[0].item, 9);
}

TEST(TopNCache, ZeroCapacityDisables) {
  TopNCache cache(0);
  cache.put(1, 10, 1, recs(1, 1.0f));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1, 10, 1, nullptr));
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace alsmf::serve
