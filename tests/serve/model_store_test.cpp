#include "serve/model_store.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "recsys/recommender.hpp"

namespace alsmf::serve {
namespace {

std::shared_ptr<ModelSnapshot> snapshot(real fill, index_t users = 4,
                                        index_t items = 3, int k = 2) {
  Matrix x(users, k, fill), y(items, k, fill);
  return snapshot_from_factors(std::move(x), std::move(y), 0.1f);
}

TEST(ModelStore, StartsEmpty) {
  ModelStore store;
  EXPECT_EQ(store.current(), nullptr);
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.publish_count(), 0u);
}

TEST(ModelStore, PublishAssignsMonotonicVersions) {
  ModelStore store;
  EXPECT_EQ(store.publish(snapshot(1.0f)), 1u);
  EXPECT_EQ(store.publish(snapshot(2.0f)), 2u);
  EXPECT_EQ(store.version(), 2u);
  EXPECT_EQ(store.publish_count(), 2u);
  EXPECT_FLOAT_EQ(store.current()->x(0, 0), 2.0f);
}

TEST(ModelStore, RejectsNullAndMismatchedRank) {
  ModelStore store;
  EXPECT_THROW(store.publish(nullptr), Error);
  auto bad = std::make_shared<ModelSnapshot>();
  bad->x = Matrix(2, 3);
  bad->y = Matrix(2, 4);
  EXPECT_THROW(store.publish(bad), Error);
}

TEST(ModelStore, OldSnapshotSurvivesWhileHeld) {
  ModelStore store(snapshot(1.0f));
  const auto held = store.current();
  store.publish(snapshot(2.0f));
  // RCU semantics: the reader's snapshot is untouched by the publish.
  EXPECT_FLOAT_EQ(held->x(0, 0), 1.0f);
  EXPECT_EQ(held->version, 1u);
  EXPECT_EQ(store.current()->version, 2u);
}

TEST(ModelStore, SnapshotFromRecommenderCopiesFactors) {
  Recommender rec;
  EXPECT_THROW(snapshot_from_recommender(rec), Error);  // untrained
}

TEST(ModelStore, ConcurrentReadersAlwaysSeeACompleteSnapshot) {
  ModelStore store(snapshot(1.0f));
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::vector<std::jthread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto snap = store.current();
        // Every element of a snapshot equals its version (by construction
        // below); any mix would be a torn read.
        const real expect = static_cast<real>(snap->version);
        for (index_t r = 0; r < snap->x.rows(); ++r) {
          for (index_t c = 0; c < snap->x.cols(); ++c) {
            if (snap->x(r, c) != expect) torn = true;
          }
        }
      }
    });
  }
  for (std::uint64_t v = 2; v <= 200; ++v) {
    store.publish(snapshot(static_cast<real>(v)));
  }
  stop = true;
  readers.clear();
  EXPECT_FALSE(torn.load());
}

}  // namespace
}  // namespace alsmf::serve
