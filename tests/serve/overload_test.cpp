// Overload-protection tests: bounded-queue shedding, deadline drops,
// degraded popularity fallback, the fold-in circuit breaker, and the
// submitted == completed + shed invariant under a 2x-capacity hammer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <limits>
#include <mutex>
#include <thread>
#include <vector>

#include "als/reference.hpp"
#include "common/error.hpp"
#include "robust/fault_injection.hpp"
#include "serve/batcher.hpp"
#include "serve/service.hpp"
#include "testing/util.hpp"

namespace alsmf::serve {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::shared_ptr<ModelSnapshot> small_snapshot() {
  const Csr train = testing::random_csr(60, 40, 0.2, 901);
  AlsOptions options;
  options.k = 6;
  options.lambda = 0.1f;
  options.iterations = 3;
  auto model = reference_als(train, options);
  return snapshot_from_factors(std::move(model.x), std::move(model.y),
                               options.lambda);
}

ServeRequest topn_request(index_t user, int n) {
  ServeRequest request;
  request.kind = RequestKind::kTopN;
  request.user = user;
  request.n = n;
  return request;
}

TEST(Overload, BatcherShedsWhenQueueFull) {
  // Block the executor so the queue genuinely fills: one batch is stuck in
  // the executor, at most one request is queued, the rest must be shed.
  std::mutex gate;
  std::atomic<int> shed_observed{0};
  std::unique_lock<std::mutex> hold(gate);

  BatcherOptions options;
  options.max_batch = 1;
  options.max_queue = 1;
  options.max_wait = microseconds(0);
  MicroBatcher batcher(
      options,
      [&](std::vector<ServeRequest>&& batch) {
        std::lock_guard<std::mutex> wait_for_gate(gate);
        for (auto& r : batch) r.promise.set_value(ServeResult{});
      },
      [&](const ServeRequest&, ServeStatus status) {
        EXPECT_EQ(status, ServeStatus::kRejectedQueueFull);
        ++shed_observed;
      });

  constexpr int kSubmits = 10;
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < kSubmits; ++i) {
    auto request = topn_request(i, 3);
    futures.push_back(request.promise.get_future());
    batcher.submit(std::move(request));
  }
  hold.unlock();  // release the stuck batch

  int rejected = 0;
  for (auto& f : futures) {
    if (f.get().status == ServeStatus::kRejectedQueueFull) ++rejected;
  }
  // One request can be in flight and one queued; everything else was shed.
  EXPECT_GE(rejected, kSubmits - 2);
  EXPECT_EQ(rejected, shed_observed.load());
}

TEST(Overload, BatcherShedsExpiredDeadlinesAtDequeue) {
  std::atomic<int> executed{0};
  BatcherOptions options;
  options.max_wait = microseconds(0);
  MicroBatcher batcher(options, [&](std::vector<ServeRequest>&& batch) {
    executed += static_cast<int>(batch.size());
    for (auto& r : batch) r.promise.set_value(ServeResult{});
  });

  auto expired = topn_request(1, 3);
  expired.deadline = steady_clock::now() - milliseconds(1);
  auto expired_future = expired.promise.get_future();
  batcher.submit(std::move(expired));
  EXPECT_EQ(expired_future.get().status, ServeStatus::kShedDeadline);

  auto fresh = topn_request(2, 3);
  fresh.deadline = steady_clock::now() + std::chrono::seconds(30);
  auto fresh_future = fresh.promise.get_future();
  batcher.submit(std::move(fresh));
  EXPECT_EQ(fresh_future.get().status, ServeStatus::kOk);
  EXPECT_EQ(executed.load(), 1);
}

TEST(Overload, DegradedModeServesPopularityFallback) {
  ServiceOptions options;
  options.max_wait_us = 0;
  RecommendService service(nullptr, options);  // no model published

  // Before a fallback is installed nothing can answer.
  EXPECT_EQ(service.topn(3, 2).status, ServeStatus::kNoModel);

  service.set_popularity_fallback({{7, 5.0f}, {2, 4.0f}, {9, 3.0f}});
  const auto degraded = service.topn(3, 2);
  EXPECT_EQ(degraded.status, ServeStatus::kDegraded);
  EXPECT_FALSE(degraded.ok());
  ASSERT_EQ(degraded.topn.size(), 2u);
  EXPECT_EQ(degraded.topn[0].item, 7);
  EXPECT_EQ(degraded.topn[1].item, 2);
  EXPECT_EQ(degraded.model_version, 0u);

  // Predict and fold-in have no popularity answer.
  EXPECT_EQ(service.predict(1, 1).status, ServeStatus::kNoModel);
  EXPECT_EQ(service.fold_in({1}, {4.0f}, 2).status, ServeStatus::kNoModel);
  EXPECT_GE(service.metrics().degraded(), 1u);

  // Publishing a model ends degraded mode.
  service.swap_model(small_snapshot());
  const auto live = service.topn(3, 2);
  EXPECT_EQ(live.status, ServeStatus::kOk);
  EXPECT_EQ(live.model_version, 1u);
}

TEST(Overload, FoldInBreakerOpensAfterRepeatedSolveFailures) {
  ServiceOptions options;
  options.max_wait_us = 0;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown = std::chrono::minutes(10);
  RecommendService service(small_snapshot(), options);

  robust::FaultPlan plan;
  plan.probability[static_cast<int>(robust::FaultSite::kFoldInSolve)] = 1.0;
  robust::ScopedFaultInjector scoped(plan);

  EXPECT_EQ(service.fold_in({0, 1}, {4.0f, 5.0f}, 3).status,
            ServeStatus::kSolveFailed);
  EXPECT_EQ(service.fold_in({0, 1}, {4.0f, 5.0f}, 3).status,
            ServeStatus::kSolveFailed);
  // Threshold reached: the breaker now fails fold-ins fast.
  EXPECT_EQ(service.fold_in({0, 1}, {4.0f, 5.0f}, 3).status,
            ServeStatus::kCircuitOpen);
  EXPECT_EQ(service.breaker().trips(), 1u);
  EXPECT_EQ(service.metrics().solve_failures(), 2u);
  EXPECT_GE(service.metrics().circuit_open(), 1u);

  // Other request kinds keep working while the fold-in breaker is open.
  EXPECT_EQ(service.predict(3, 7).status, ServeStatus::kOk);
  EXPECT_EQ(service.topn(5, 4).status, ServeStatus::kOk);
}

TEST(Overload, NonFiniteFoldInRatingIsRejectedAtSubmit) {
  RecommendService service(small_snapshot());
  const real bad = std::numeric_limits<real>::quiet_NaN();
  auto future = service.submit_fold_in({0, 1}, {4.0f, bad}, 3);
  EXPECT_THROW(future.get(), Error);
}

TEST(Overload, HammerAtTwiceCapacityShedsButNeverLosesARequest) {
  ServiceOptions options;
  options.max_batch = 8;
  options.max_wait_us = 50;
  options.max_queue = 16;
  options.default_deadline_us = 200;
  options.cache_capacity = 0;  // force every request through the queue
  RecommendService service(small_snapshot(), options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::atomic<std::uint64_t> fulfilled{0};
  std::atomic<std::uint64_t> ok_count{0}, shed_count{0};
  std::vector<std::thread> hammers;
  hammers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    hammers.emplace_back([&, t] {
      std::vector<std::future<ServeResult>> futures;
      futures.reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        const auto user = static_cast<index_t>((t * kPerThread + i) % 60);
        if (i % 2 == 0) {
          futures.push_back(service.submit_topn(user, 5));
        } else {
          futures.push_back(
              service.submit_predict(user, static_cast<index_t>(i % 40)));
        }
      }
      for (auto& f : futures) {
        const auto result = f.get();  // every promise must be fulfilled
        ++fulfilled;
        if (result.ok()) {
          ++ok_count;
        } else {
          EXPECT_TRUE(result.status == ServeStatus::kRejectedQueueFull ||
                      result.status == ServeStatus::kShedDeadline)
              << to_string(result.status);
          ++shed_count;
        }
      }
    });
  }
  for (auto& h : hammers) h.join();

  EXPECT_EQ(fulfilled.load(), kThreads * kPerThread);
  const auto& m = service.metrics();
  // The overload accounting invariant: nothing is double-counted or lost.
  EXPECT_EQ(m.submitted(),
            m.completed() + m.shed_queue_full() + m.shed_deadline());
  EXPECT_EQ(m.completed(), ok_count.load());
  EXPECT_EQ(m.shed_queue_full() + m.shed_deadline(), shed_count.load());
  // A tiny queue + 200us deadlines at 2x capacity must shed something.
  EXPECT_GT(shed_count.load(), 0u);

  // The service recovers once the burst ends.
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    recovered = service.topn(1, 5).ok();
  }
  EXPECT_TRUE(recovered);
}

TEST(Overload, StatsJsonIncludesOverloadAndBreaker) {
  ServiceOptions options;
  options.max_wait_us = 0;
  RecommendService service(small_snapshot(), options);
  service.topn(1, 3);
  const auto json = service.stats_json();
  EXPECT_NE(json.find("\"overload\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_queue_full\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"breaker\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"state\":\"closed\""), std::string::npos) << json;
}

}  // namespace
}  // namespace alsmf::serve
