// Quantized factor snapshots for serving: fp16 and symmetric per-row int8
// compression applied at snapshot-build time, before the IVF index exists,
// so every published model+index pair scores against the same values.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "common/halfprec.hpp"
#include "common/rng.hpp"
#include "index/ivf_index.hpp"
#include "serve/model_store.hpp"

namespace alsmf::serve {
namespace {

std::shared_ptr<ModelSnapshot> random_snapshot(index_t users = 12,
                                               index_t items = 9, int k = 6) {
  Rng rng(42);
  Matrix x(users, k), y(items, k);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x.data()[i] = static_cast<real>(rng.uniform(-2.0, 2.0));
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    y.data()[i] = static_cast<real>(rng.uniform(-2.0, 2.0));
  }
  return snapshot_from_factors(std::move(x), std::move(y), 0.1f);
}

TEST(QuantizedSnapshot, Fp16ValuesLandOnTheHalfGrid) {
  auto snap = random_snapshot();
  const Matrix before = snap->x;
  quantize_snapshot(*snap, SnapshotQuantization::kFp16);
  EXPECT_EQ(snap->quantization, SnapshotQuantization::kFp16);
  bool any_changed = false;
  for (std::size_t i = 0; i < snap->x.size(); ++i) {
    const float v = snap->x.data()[i];
    EXPECT_EQ(fp16_round_ftz(v), v) << i;
    EXPECT_NEAR(v, before.data()[i], 2e-3f * std::fabs(before.data()[i]) +
                                         1e-4f);
    any_changed = any_changed || v != before.data()[i];
  }
  EXPECT_TRUE(any_changed);  // the rounding actually did something
}

TEST(QuantizedSnapshot, Int8ValuesLandOnThePerRowGrid) {
  auto snap = random_snapshot();
  quantize_snapshot(*snap, SnapshotQuantization::kInt8);
  for (index_t r = 0; r < snap->y.rows(); ++r) {
    const auto row = snap->y.row(r);
    real maxabs = 0;
    for (real v : row) maxabs = std::max(maxabs, std::abs(v));
    if (maxabs == 0) continue;
    // maxabs is preserved by symmetric quantization, so the scale is
    // recoverable from the quantized row itself.
    const real scale = maxabs / real{127};
    for (real v : row) {
      const real q = std::round(v / scale);
      EXPECT_NEAR(q * scale, v, 1e-6f);
      EXPECT_LE(std::abs(q), 127.0f);
    }
  }
}

TEST(QuantizedSnapshot, Int8PreservesRankingApproximately) {
  // The recall property the bench leg gates at scale, in miniature: the
  // per-row grid is fine enough that scores move by < maxabs/127 per term.
  auto exact = random_snapshot();
  auto quant = std::make_shared<ModelSnapshot>(*exact);
  quantize_snapshot(*quant, SnapshotQuantization::kInt8);
  const int k = exact->k();
  for (index_t u = 0; u < exact->users(); ++u) {
    for (index_t i = 0; i < exact->items(); ++i) {
      double se = 0, sq = 0;
      for (int j = 0; j < k; ++j) {
        se += exact->x(u, j) * exact->y(i, j);
        sq += quant->x(u, j) * quant->y(i, j);
      }
      EXPECT_NEAR(sq, se, 0.05 * k);
    }
  }
}

TEST(QuantizedSnapshot, FactorBytesShrinkWithTheFormat) {
  auto snap = random_snapshot();
  const std::size_t fp32 = snap->factor_bytes();
  quantize_snapshot(*snap, SnapshotQuantization::kFp16);
  EXPECT_EQ(snap->factor_bytes(), fp32 / 2);
  snap->quantization = SnapshotQuantization::kInt8;
  EXPECT_LT(snap->factor_bytes(), fp32 / 2);
  EXPECT_GT(snap->factor_bytes(), fp32 / 8);  // elems + per-row scales
}

TEST(QuantizedSnapshot, NoneIsIdentityAndPublishable) {
  auto snap = random_snapshot();
  const Matrix before = snap->x;
  quantize_snapshot(*snap, SnapshotQuantization::kNone);
  EXPECT_EQ(snap->x, before);
  ModelStore store;
  EXPECT_EQ(store.publish(snap), 1u);
}

TEST(QuantizedSnapshot, RefusesToQuantizeAfterIndexAttach) {
  // Quantizing after the index is built would publish an index keyed to
  // values no request scores against.
  auto snap = random_snapshot();
  attach_ivf_index(*snap, index::IvfOptions{});
  EXPECT_THROW(quantize_snapshot(*snap, SnapshotQuantization::kFp16), Error);
}

TEST(QuantizedSnapshot, QuantizeThenIndexThenPublish) {
  auto snap = random_snapshot();
  quantize_snapshot(*snap, SnapshotQuantization::kFp16);
  attach_ivf_index(*snap, index::IvfOptions{});
  ModelStore store;
  EXPECT_EQ(store.publish(snap), 1u);
  EXPECT_EQ(store.current()->quantization, SnapshotQuantization::kFp16);
  EXPECT_STREQ(to_string(store.current()->quantization), "fp16");
}

}  // namespace
}  // namespace alsmf::serve
