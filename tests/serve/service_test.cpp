#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "als/reference.hpp"
#include "common/error.hpp"
#include "recsys/batch_score.hpp"
#include "recsys/fold_in.hpp"
#include "testing/util.hpp"

namespace alsmf::serve {
namespace {

struct TrainedModel {
  Matrix x, y;
  real lambda = 0.1f;
};

TrainedModel small_model() {
  const Csr train = testing::random_csr(60, 40, 0.2, 900);
  AlsOptions options;
  options.k = 6;
  options.lambda = 0.1f;
  options.iterations = 4;
  auto model = reference_als(train, options);
  return {std::move(model.x), std::move(model.y), options.lambda};
}

std::shared_ptr<ModelSnapshot> snapshot_of(const TrainedModel& m) {
  return snapshot_from_factors(m.x, m.y, m.lambda);
}

TEST(RecommendService, PredictMatchesDirectDot) {
  const auto model = small_model();
  RecommendService service(snapshot_of(model));
  const auto result = service.predict(3, 7);
  real expect = 0;
  for (index_t c = 0; c < model.x.cols(); ++c) expect += model.x(3, c) * model.y(7, c);
  EXPECT_FLOAT_EQ(result.score, expect);
  EXPECT_EQ(result.model_version, 1u);
  EXPECT_FALSE(result.cache_hit);
}

TEST(RecommendService, TopNMatchesBatchScoreAndCaches) {
  const auto model = small_model();
  RecommendService service(snapshot_of(model));
  const auto direct = topn_from_factor(model.x.row(5), model.y, 8);

  const auto first = service.topn(5, 8);
  ASSERT_EQ(first.topn.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(first.topn[i].item, direct[i].item);
    EXPECT_FLOAT_EQ(first.topn[i].score, direct[i].score);
  }
  EXPECT_FALSE(first.cache_hit);

  const auto second = service.topn(5, 8);
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.topn.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(second.topn[i].item, direct[i].item);
  }
  EXPECT_GE(service.cache_stats().hits, 1u);
}

TEST(RecommendService, FoldInMatchesSingleSolve) {
  const auto model = small_model();
  RecommendService service(snapshot_of(model));
  const std::vector<index_t> items = {1, 5, 9};
  const std::vector<real> ratings = {4.0f, 2.0f, 5.0f};

  const auto result = service.fold_in(items, ratings, 5);
  const auto direct = fold_in_user(model.y, items, ratings, model.lambda);
  ASSERT_EQ(result.factor.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_FLOAT_EQ(result.factor[i], direct[i]);
  }
  // Rated items are excluded from the returned top-n.
  for (const auto& r : result.topn) {
    EXPECT_NE(r.item, 1);
    EXPECT_NE(r.item, 5);
    EXPECT_NE(r.item, 9);
  }
  EXPECT_EQ(result.topn.size(), 5u);
}

TEST(RecommendService, InvalidRequestsRejectTheFutureOnly) {
  const auto model = small_model();
  RecommendService service(snapshot_of(model));
  EXPECT_THROW(service.predict(-1, 0), Error);
  EXPECT_THROW(service.predict(0, 40), Error);
  EXPECT_THROW(service.topn(60, 5), Error);
  EXPECT_THROW(service.fold_in({}, {}, 5), Error);
  EXPECT_THROW(service.fold_in({40}, {3.0f}, 5), Error);
  EXPECT_THROW(service.fold_in({1, 2}, {3.0f}, 5), Error);
  // The service keeps serving after rejections.
  EXPECT_NO_THROW(service.predict(0, 0));
}

TEST(RecommendService, SwapInvalidatesCacheAndBumpsVersion) {
  const auto model = small_model();
  RecommendService service(snapshot_of(model));
  const auto before = service.topn(2, 4);
  EXPECT_EQ(before.model_version, 1u);

  // Swap in a perturbed model: different factors → different scores.
  TrainedModel next = small_model();
  for (index_t r = 0; r < next.x.rows(); ++r) {
    for (index_t c = 0; c < next.x.cols(); ++c) next.x(r, c) *= 2.0f;
  }
  const std::uint64_t v = service.swap_model(snapshot_of(next));
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(service.model_version(), 2u);

  const auto after = service.topn(2, 4);
  EXPECT_EQ(after.model_version, 2u);
  EXPECT_FALSE(after.cache_hit);  // cache was invalidated by the swap
  EXPECT_EQ(service.metrics().swaps(), 1u);
}

TEST(RecommendService, ConcurrentSubmissionsFormBatches) {
  const auto model = small_model();
  ServiceOptions options;
  options.max_batch = 16;
  options.max_wait_us = 2000;  // generous window so submissions coalesce
  options.cache_capacity = 0;  // force every request through the queue
  RecommendService service(snapshot_of(model), options);

  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(service.submit_topn(i % 60, 5));
  }
  for (auto& f : futures) {
    const auto result = f.get();
    EXPECT_EQ(result.model_version, 1u);
    EXPECT_EQ(result.topn.size(), 5u);
  }
  EXPECT_EQ(service.metrics().completed(), 64u);
  // 64 requests in a 2 ms window on a 16-deep batcher: strictly fewer
  // batches than requests proves micro-batching actually coalesced.
  EXPECT_LT(service.metrics().batches(), 64u);
  EXPECT_GT(service.metrics().mean_batch_size(), 1.0);
}

TEST(RecommendService, StopDrainsOutstandingRequests) {
  const auto model = small_model();
  ServiceOptions options;
  options.max_wait_us = 5000;
  RecommendService service(snapshot_of(model), options);
  std::vector<std::future<ServeResult>> futures;
  for (int i = 0; i < 8; ++i) futures.push_back(service.submit_topn(i, 3));
  service.stop();
  for (auto& f : futures) EXPECT_EQ(f.get().topn.size(), 3u);
  // Submits after stop still complete (inline execution).
  EXPECT_EQ(service.topn(1, 2).topn.size(), 2u);
}

TEST(RecommendService, StatsJsonHasTheReportShape) {
  const auto model = small_model();
  RecommendService service(snapshot_of(model));
  (void)service.topn(1, 3);
  (void)service.topn(1, 3);  // cache hit
  (void)service.predict(0, 0);
  const std::string json = service.stats_json();
  for (const char* key :
       {"\"qps\":", "\"requests\":", "\"cache\":", "\"hit_rate\":",
        "\"latency_us\":", "\"queue\":", "\"exec\":", "\"total\":",
        "\"batch_size\":", "\"queue_depth\":", "\"p50\":", "\"p99\":",
        "\"swaps\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key << " in " << json;
  }
}

}  // namespace
}  // namespace alsmf::serve
