// Satellite: N producer threads hammer the service while the model is hot
// swapped repeatedly. Every answer must be internally consistent with
// exactly ONE snapshot — the one named by its model_version — and the cache
// must serve only current-version entries after each swap.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "index/ivf_index.hpp"
#include "recsys/batch_score.hpp"
#include "recsys/fold_in.hpp"
#include "serve/service.hpp"

namespace alsmf::serve {
namespace {

constexpr index_t kUsers = 32;
constexpr index_t kItems = 24;
constexpr int kRank = 4;

// Version v's factors are all fill(v), so any score from snapshot v equals
// kRank·fill(v)² exactly (small integers: exact in float). A torn read —
// factors from one snapshot, version tag or bias from another — produces a
// value outside the valid set.
real fill_of(std::uint64_t version) {
  return static_cast<real>(1 + (version % 5));
}

std::shared_ptr<ModelSnapshot> snapshot_for_next_version(std::uint64_t version) {
  Matrix x(kUsers, kRank, fill_of(version));
  Matrix y(kItems, kRank, fill_of(version));
  return snapshot_from_factors(std::move(x), std::move(y), 0.1f);
}

real expected_score(std::uint64_t version) {
  return static_cast<real>(kRank) * fill_of(version) * fill_of(version);
}

TEST(SwapUnderLoad, EveryAnswerComesFromExactlyOneSnapshot) {
  ServiceOptions options;
  options.max_batch = 8;
  options.max_wait_us = 100;
  options.cache_capacity = 64;
  RecommendService service(snapshot_for_next_version(1), options);

  constexpr int kProducers = 4;
  constexpr int kRequestsPerProducer = 250;
  constexpr std::uint64_t kSwaps = 40;

  std::atomic<std::uint64_t> max_seen_version{1};
  std::atomic<int> torn{0};
  std::atomic<int> completed{0};

  auto check_version = [&](std::uint64_t version) {
    // Versions are published 1..kSwaps+1; anything else is corrupt.
    if (version < 1 || version > kSwaps + 1) torn.fetch_add(1);
    std::uint64_t seen = max_seen_version.load();
    while (version > seen &&
           !max_seen_version.compare_exchange_weak(seen, version)) {
    }
  };

  std::vector<std::jthread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kRequestsPerProducer; ++i) {
        const auto user = static_cast<index_t>((p * 31 + i) % kUsers);
        const int kind = i % 3;
        if (kind == 0) {
          const auto r = service.predict(user, static_cast<index_t>(i % kItems));
          check_version(r.model_version);
          if (r.score != expected_score(r.model_version)) torn.fetch_add(1);
        } else if (kind == 1) {
          const auto r = service.topn(user, 5);
          check_version(r.model_version);
          for (const auto& rec : r.topn) {
            if (rec.score != expected_score(r.model_version)) torn.fetch_add(1);
          }
          if (r.topn.size() != 5u) torn.fetch_add(1);
        } else {
          const auto r = service.fold_in({0, 1}, {3.0f, 4.0f}, 3);
          check_version(r.model_version);
          // The solved factor must be bit-identical to a direct fold-in
          // against the claimed snapshot's item factors (same arithmetic).
          const Matrix y(kItems, kRank, fill_of(r.model_version));
          const auto direct =
              fold_in_user(y, std::vector<index_t>{0, 1},
                           std::vector<real>{3.0f, 4.0f}, 0.1f);
          if (r.factor != direct) torn.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }

  std::uint64_t published = 1;
  for (std::uint64_t s = 0; s < kSwaps; ++s) {
    published = service.swap_model(snapshot_for_next_version(published + 1));
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  producers.clear();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(completed.load(), kProducers * kRequestsPerProducer);
  EXPECT_EQ(published, kSwaps + 1);
  // Producers observed swaps actually landing mid-stream.
  EXPECT_GT(max_seen_version.load(), 1u);

  // Cache coherence after the dust settles: answers must match the final
  // snapshot exactly, whether or not they come from the cache.
  const auto final_version = service.model_version();
  EXPECT_EQ(final_version, kSwaps + 1);
  for (int round = 0; round < 2; ++round) {
    const auto r = service.topn(3, 5);
    EXPECT_EQ(r.model_version, final_version);
    for (const auto& rec : r.topn) {
      EXPECT_EQ(rec.score, expected_score(final_version));
    }
  }
  EXPECT_EQ(service.metrics().swaps(), kSwaps);
}

// Same hammer, but every published snapshot carries a freshly built IVF
// index (a model+index PAIR swap). Scores must still be internally
// consistent with exactly one snapshot: the index rescoring runs against
// the same snapshot's factors, so a torn model/index pairing would surface
// as a score outside the valid per-version set.
TEST(SwapUnderLoad, ModelAndIndexPairsSwapAtomically) {
  ServiceOptions options;
  options.max_batch = 8;
  options.max_wait_us = 100;
  options.cache_capacity = 64;
  options.nprobe = 2;  // partial probing: the index is really in the path
  index::IvfOptions ivf;
  ivf.clusters = 4;

  auto paired_snapshot = [&](std::uint64_t version) {
    auto snap = snapshot_for_next_version(version);
    attach_ivf_index(*snap, ivf);
    return snap;
  };

  RecommendService service(paired_snapshot(1), options);

  constexpr int kProducers = 4;
  constexpr int kRequestsPerProducer = 200;
  constexpr std::uint64_t kSwaps = 25;

  std::atomic<int> torn{0};
  std::atomic<int> completed{0};

  std::vector<std::jthread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kRequestsPerProducer; ++i) {
        const auto user = static_cast<index_t>((p * 31 + i) % kUsers);
        if (i % 2 == 0) {
          const auto r = service.topn(user, 5);
          if (r.model_version < 1 || r.model_version > kSwaps + 1) {
            torn.fetch_add(1);
          }
          if (r.topn.size() != 5u) torn.fetch_add(1);
          for (const auto& rec : r.topn) {
            if (rec.score != expected_score(r.model_version)) torn.fetch_add(1);
          }
        } else {
          const auto r = service.fold_in({0, 1}, {3.0f, 4.0f}, 3);
          if (r.model_version < 1 || r.model_version > kSwaps + 1) {
            torn.fetch_add(1);
          }
          const Matrix y(kItems, kRank, fill_of(r.model_version));
          const auto direct =
              fold_in_user(y, std::vector<index_t>{0, 1},
                           std::vector<real>{3.0f, 4.0f}, 0.1f);
          if (r.factor != direct) torn.fetch_add(1);
        }
        completed.fetch_add(1);
      }
    });
  }

  std::uint64_t published = 1;
  for (std::uint64_t s = 0; s < kSwaps; ++s) {
    published = service.swap_model(paired_snapshot(published + 1));
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  producers.clear();

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(completed.load(), kProducers * kRequestsPerProducer);
  EXPECT_EQ(published, kSwaps + 1);
  // The final snapshot still has its index attached and answers through it.
  ASSERT_NE(service.snapshot()->ann, nullptr);
  const auto r = service.topn(1, 5);
  EXPECT_EQ(r.model_version, kSwaps + 1);
  for (const auto& rec : r.topn) {
    EXPECT_EQ(rec.score, expected_score(kSwaps + 1));
  }
}

// Publishing a snapshot whose index was built for different factors must be
// rejected before it becomes visible — the no-mismatch guarantee's backstop.
TEST(SwapUnderLoad, MismatchedIndexPairIsRejectedAtPublish) {
  RecommendService service(snapshot_for_next_version(1), {});
  Matrix other(kItems + 3, kRank, 1.0f);  // wrong item count
  auto bad = snapshot_for_next_version(2);
  bad->ann = index::IvfIndex::build(other, index::IvfOptions{.clusters = 2});
  EXPECT_THROW(service.swap_model(std::move(bad)), Error);
  // The rejected publish left the served version untouched.
  EXPECT_EQ(service.model_version(), 1u);
}

}  // namespace
}  // namespace alsmf::serve
