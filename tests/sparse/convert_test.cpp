#include "sparse/convert.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "testing/util.hpp"

namespace alsmf {
namespace {

using Shape = std::tuple<index_t, index_t, double, std::uint64_t>;

class ConvertRoundTrip : public ::testing::TestWithParam<Shape> {
 protected:
  Coo input() const {
    auto [rows, cols, density, seed] = GetParam();
    return testing::random_coo(rows, cols, density, seed);
  }
};

TEST_P(ConvertRoundTrip, CooToCsrToCoo) {
  const Coo coo = input();
  const Coo back = csr_to_coo(coo_to_csr(coo));
  EXPECT_EQ(coo.entries(), back.entries());
  EXPECT_EQ(coo.rows(), back.rows());
  EXPECT_EQ(coo.cols(), back.cols());
}

TEST_P(ConvertRoundTrip, CsrToCscToCsr) {
  const Csr csr = coo_to_csr(input());
  const Csr back = csc_to_csr(csr_to_csc(csr));
  EXPECT_EQ(csr, back);
}

TEST_P(ConvertRoundTrip, DoubleTransposeIsIdentity) {
  const Csr csr = coo_to_csr(input());
  EXPECT_EQ(csr, transpose(transpose(csr)));
}

TEST_P(ConvertRoundTrip, TransposeSwapsEntryCoordinates) {
  const Csr csr = coo_to_csr(input());
  const Csr t = transpose(csr);
  EXPECT_EQ(t.rows(), csr.cols());
  EXPECT_EQ(t.cols(), csr.rows());
  EXPECT_EQ(t.nnz(), csr.nnz());
  const Coo coo = csr_to_coo(csr);
  for (const auto& e : coo.entries()) {
    EXPECT_FLOAT_EQ(t.at(e.col, e.row), e.value);
  }
}

TEST_P(ConvertRoundTrip, CscMatchesDirectConstruction) {
  const Coo coo = input();
  const Csc via_coo = coo_to_csc(coo);
  const Csc via_csr = csr_to_csc(coo_to_csr(coo));
  EXPECT_EQ(via_coo, via_csr);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvertRoundTrip,
    ::testing::Values(Shape{1, 1, 1.0, 1}, Shape{5, 5, 0.0, 2},
                      Shape{10, 3, 0.4, 3}, Shape{3, 10, 0.4, 4},
                      Shape{40, 40, 0.05, 5}, Shape{17, 23, 0.8, 6},
                      Shape{64, 1, 0.5, 7}, Shape{1, 64, 0.5, 8}));

TEST(Convert, UnsortedCooStillYieldsCanonicalCsr) {
  Coo coo(3, 3);
  coo.add(2, 2, 1.0f);
  coo.add(0, 2, 2.0f);
  coo.add(0, 0, 3.0f);
  coo.add(1, 1, 4.0f);  // deliberately unsorted
  const Csr csr = coo_to_csr(coo);
  EXPECT_TRUE(csr.check_invariants());
  EXPECT_FLOAT_EQ(csr.at(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(csr.at(0, 2), 2.0f);
}

TEST(Convert, EmptyMatrix) {
  Coo coo(4, 6);
  const Csr csr = coo_to_csr(coo);
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_TRUE(csr.check_invariants());
  const Csc csc = csr_to_csc(csr);
  EXPECT_EQ(csc.nnz(), 0);
  EXPECT_TRUE(csc.check_invariants());
}

}  // namespace
}  // namespace alsmf
