#include "sparse/coo.hpp"

#include <gtest/gtest.h>

namespace alsmf {
namespace {

TEST(Coo, EmptyMatrix) {
  Coo coo(3, 4);
  EXPECT_EQ(coo.rows(), 3);
  EXPECT_EQ(coo.cols(), 4);
  EXPECT_EQ(coo.nnz(), 0);
  EXPECT_TRUE(coo.is_canonical());
}

TEST(Coo, AddAndRead) {
  Coo coo(2, 2);
  coo.add(0, 1, 3.5f);
  coo.add(1, 0, -1.0f);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 1, 3.5f}));
  EXPECT_EQ(coo.entries()[1], (Triplet{1, 0, -1.0f}));
}

TEST(Coo, AddOutOfRangeThrows) {
  Coo coo(2, 2);
  EXPECT_THROW(coo.add(2, 0, 1.0f), Error);
  EXPECT_THROW(coo.add(0, 2, 1.0f), Error);
  EXPECT_THROW(coo.add(-1, 0, 1.0f), Error);
}

TEST(Coo, SortRowMajor) {
  Coo coo(3, 3);
  coo.add(2, 0, 1.0f);
  coo.add(0, 2, 2.0f);
  coo.add(0, 1, 3.0f);
  coo.add(1, 1, 4.0f);
  coo.sort_row_major();
  EXPECT_TRUE(coo.is_canonical());
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 1, 3.0f}));
  EXPECT_EQ(coo.entries()[1], (Triplet{0, 2, 2.0f}));
  EXPECT_EQ(coo.entries()[2], (Triplet{1, 1, 4.0f}));
  EXPECT_EQ(coo.entries()[3], (Triplet{2, 0, 1.0f}));
}

TEST(Coo, DedupKeepsLastValue) {
  Coo coo(2, 2);
  coo.add(0, 0, 1.0f);
  coo.add(0, 0, 2.0f);
  coo.add(0, 1, 3.0f);
  coo.sort_row_major();
  coo.dedup_keep_last();
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[0].value, 2.0f);  // last write wins
  EXPECT_TRUE(coo.is_canonical());
}

TEST(Coo, IsCanonicalDetectsDuplicates) {
  Coo coo(2, 2);
  coo.add(0, 0, 1.0f);
  coo.add(0, 0, 2.0f);
  EXPECT_FALSE(coo.is_canonical());
}

TEST(Coo, IsCanonicalDetectsDisorder) {
  Coo coo(2, 2);
  coo.add(1, 0, 1.0f);
  coo.add(0, 0, 2.0f);
  EXPECT_FALSE(coo.is_canonical());
}

TEST(Coo, SortIsStableForDuplicates) {
  Coo coo(1, 1);
  coo.add(0, 0, 1.0f);
  coo.add(0, 0, 2.0f);
  coo.sort_row_major();
  // Stable sort keeps insertion order; dedup then keeps the later value.
  coo.dedup_keep_last();
  EXPECT_EQ(coo.entries()[0].value, 2.0f);
}

TEST(Coo, ReserveDoesNotChangeSize) {
  Coo coo(10, 10);
  coo.reserve(100);
  EXPECT_EQ(coo.nnz(), 0);
}

}  // namespace
}  // namespace alsmf
