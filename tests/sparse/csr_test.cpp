#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

// The paper's Fig. 2 example: 4x4 matrix with 5 stored ratings.
Csr fig2_matrix() {
  Coo coo(4, 4);
  coo.add(0, 1, 5.0f);
  coo.add(1, 0, 2.0f);
  coo.add(1, 3, 4.0f);
  coo.add(2, 2, 3.0f);
  coo.add(3, 1, 1.0f);
  return coo_to_csr(coo);
}

TEST(Csr, Fig2Layout) {
  const Csr csr = fig2_matrix();
  EXPECT_EQ(csr.nnz(), 5);
  const aligned_vector<nnz_t> expected_ptr = {0, 1, 3, 4, 5};
  EXPECT_EQ(csr.row_ptr(), expected_ptr);
  const aligned_vector<index_t> expected_idx = {1, 0, 3, 2, 1};
  EXPECT_EQ(csr.col_idx(), expected_idx);
}

TEST(Csr, RowAccessors) {
  const Csr csr = fig2_matrix();
  EXPECT_EQ(csr.row_nnz(0), 1);
  EXPECT_EQ(csr.row_nnz(1), 2);
  auto cols = csr.row_cols(1);
  ASSERT_EQ(cols.size(), 2u);
  EXPECT_EQ(cols[0], 0);
  EXPECT_EQ(cols[1], 3);
  auto vals = csr.row_values(1);
  EXPECT_FLOAT_EQ(vals[0], 2.0f);
  EXPECT_FLOAT_EQ(vals[1], 4.0f);
}

TEST(Csr, AtReturnsStoredOrZero) {
  const Csr csr = fig2_matrix();
  EXPECT_FLOAT_EQ(csr.at(0, 1), 5.0f);
  EXPECT_FLOAT_EQ(csr.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(csr.at(3, 1), 1.0f);
}

TEST(Csr, AtBoundsChecked) {
  const Csr csr = fig2_matrix();
  EXPECT_THROW(csr.at(4, 0), Error);
  EXPECT_THROW(csr.at(0, 4), Error);
}

TEST(Csr, InvariantsHoldForRandom) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    EXPECT_TRUE(testing::random_csr(20, 30, 0.2, seed).check_invariants());
  }
}

TEST(Csr, ConstructorRejectsBadArrays) {
  // row_ptr not ending at nnz.
  EXPECT_THROW(Csr(2, 2, {0, 1, 3}, {0, 1}, {1.0f, 2.0f}), Error);
  // column out of range.
  EXPECT_THROW(Csr(2, 2, {0, 1, 2}, {0, 5}, {1.0f, 2.0f}), Error);
  // non-monotone row_ptr.
  EXPECT_THROW(Csr(2, 2, {0, 2, 1}, {0, 1}, {1.0f, 2.0f}), Error);
  // unsorted columns within a row.
  EXPECT_THROW(Csr(1, 3, {0, 2}, {2, 0}, {1.0f, 2.0f}), Error);
}

TEST(Csr, EmptyRowsAllowed) {
  Coo coo(3, 3);
  coo.add(1, 1, 1.0f);
  const Csr csr = coo_to_csr(coo);
  EXPECT_EQ(csr.row_nnz(0), 0);
  EXPECT_EQ(csr.row_nnz(1), 1);
  EXPECT_EQ(csr.row_nnz(2), 0);
  EXPECT_TRUE(csr.row_cols(0).empty());
}

TEST(Csc, ColumnAccessors) {
  const Csc csc = coo_to_csc(csr_to_coo(fig2_matrix()));
  EXPECT_EQ(csc.col_nnz(1), 2);  // rows 0 and 3
  auto rows = csc.col_rows(1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0);
  EXPECT_EQ(rows[1], 3);
  auto vals = csc.col_values(1);
  EXPECT_FLOAT_EQ(vals[0], 5.0f);
  EXPECT_FLOAT_EQ(vals[1], 1.0f);
}

TEST(Csc, InvariantsHold) {
  const Csc csc = coo_to_csc(testing::random_coo(25, 15, 0.3, 7));
  EXPECT_TRUE(csc.check_invariants());
}

TEST(Csr, EqualityOperator) {
  EXPECT_EQ(fig2_matrix(), fig2_matrix());
  Csr other = testing::random_csr(4, 4, 0.5, 1);
  EXPECT_NE(fig2_matrix(), other);
}

}  // namespace
}  // namespace alsmf
