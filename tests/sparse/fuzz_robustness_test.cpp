// Failure-injection robustness: corrupted inputs must throw alsmf::Error
// (or parse as valid data), never crash or silently produce wrong
// structures. A deterministic mutation fuzz over the binary and text
// deserializers.
#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.hpp"
#include "sparse/io.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

std::string valid_csr_bytes() {
  const Csr csr = testing::random_csr(20, 15, 0.25, 250);
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(s, csr);
  return s.str();
}

TEST(FuzzRobustness, BinaryCsrByteFlipsThrowOrValidate) {
  const std::string original = valid_csr_bytes();
  Rng rng(251);
  int threw = 0, parsed = 0;
  for (int round = 0; round < 300; ++round) {
    std::string mutated = original;
    const std::size_t at = rng.bounded(mutated.size());
    mutated[at] = static_cast<char>(rng.bounded(256));
    std::stringstream in(mutated, std::ios::in | std::ios::binary);
    try {
      const Csr csr = read_csr_binary(in);
      // If it parsed, the invariants must hold (the constructor checks).
      EXPECT_TRUE(csr.check_invariants());
      ++parsed;
    } catch (const Error&) {
      ++threw;
    }
    // Anything else (segfault, std::bad_alloc from absurd sizes is allowed
    // to surface as Error only because sizes are validated first).
  }
  EXPECT_EQ(threw + parsed, 300);
  EXPECT_GT(threw, 0);  // mutations do get caught
}

TEST(FuzzRobustness, BinaryCsrTruncationsAlwaysThrow) {
  const std::string original = valid_csr_bytes();
  for (std::size_t len = 0; len < original.size();
       len += std::max<std::size_t>(1, original.size() / 40)) {
    std::stringstream in(original.substr(0, len),
                         std::ios::in | std::ios::binary);
    EXPECT_THROW(read_csr_binary(in), Error) << "length " << len;
  }
}

TEST(FuzzRobustness, TextParserSurvivesGarbageLines) {
  Rng rng(252);
  const std::string charset =
      "0123456789 .:-abcdefXYZ%#\t";
  for (int round = 0; round < 100; ++round) {
    std::string blob;
    for (int line = 0; line < 20; ++line) {
      const std::size_t len = rng.bounded(30);
      for (std::size_t i = 0; i < len; ++i) {
        blob.push_back(charset[rng.bounded(charset.size())]);
      }
      blob.push_back('\n');
    }
    std::istringstream in(blob);
    try {
      const Coo coo = read_ratings_text(in);
      EXPECT_GE(coo.rows(), 0);
    } catch (const Error&) {
      // fine: explicit rejection
    } catch (const std::invalid_argument&) {
      // stoll/stod rejection of numeric-looking garbage: acceptable
    } catch (const std::out_of_range&) {
      // overlong numbers: acceptable
    }
  }
}

TEST(FuzzRobustness, MatrixMarketHeaderMutations) {
  const std::string base =
      "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 1 2.0\n";
  Rng rng(253);
  for (int round = 0; round < 200; ++round) {
    std::string mutated = base;
    const std::size_t at = rng.bounded(mutated.size());
    mutated[at] = static_cast<char>('!' + rng.bounded(90));
    std::istringstream in(mutated);
    try {
      const Coo coo = read_matrix_market(in);
      EXPECT_LE(coo.nnz(), 2);
    } catch (const Error&) {
    } catch (const std::invalid_argument&) {
    } catch (const std::out_of_range&) {
    }
  }
}

}  // namespace
}  // namespace alsmf
