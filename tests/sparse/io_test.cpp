#include "sparse/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(IoText, ParsesSpaceSeparated) {
  std::istringstream in("1 2 4.5\n2 1 3\n");
  const Coo coo = read_ratings_text(in);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 1, 4.5f}));  // 1-based shifted
  EXPECT_EQ(coo.rows(), 2);
  EXPECT_EQ(coo.cols(), 2);
}

TEST(IoText, ParsesMovieLensDoubleColon) {
  std::istringstream in("1::31::2.5\n1::1029::3.0\n");
  const Coo coo = read_ratings_text(in);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[1].col, 1028);
  EXPECT_FLOAT_EQ(coo.entries()[1].value, 3.0f);
}

TEST(IoText, ParsesCommaSeparated) {
  std::istringstream in("3,4,5\n");
  const Coo coo = read_ratings_text(in);
  EXPECT_EQ(coo.entries()[0], (Triplet{2, 3, 5.0f}));
}

TEST(IoText, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n% other comment\n1 1 1\n");
  const Coo coo = read_ratings_text(in);
  EXPECT_EQ(coo.nnz(), 1);
}

TEST(IoText, ZeroBasedOption) {
  TextFormat fmt;
  fmt.one_based_ids = false;
  std::istringstream in("0 0 2\n");
  const Coo coo = read_ratings_text(in, fmt);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 0, 2.0f}));
}

TEST(IoText, DimensionHintsEnforced) {
  std::istringstream in("5 5 1\n");
  EXPECT_THROW(read_ratings_text(in, {}, 3, 3), Error);
}

TEST(IoText, ExtraFieldsIgnoredAfterThree) {
  std::istringstream in("1 1 4 978300760\n");  // MovieLens timestamp
  const Coo coo = read_ratings_text(in);
  EXPECT_EQ(coo.nnz(), 1);
  EXPECT_FLOAT_EQ(coo.entries()[0].value, 4.0f);
}

TEST(IoText, WriteReadRoundTrip) {
  const Coo coo = testing::random_coo(12, 9, 0.3, 5);
  std::stringstream s;
  write_ratings_text(s, coo);
  const Coo back = read_ratings_text(s, {}, coo.rows(), coo.cols());
  ASSERT_EQ(back.nnz(), coo.nnz());
  for (std::size_t i = 0; i < coo.entries().size(); ++i) {
    EXPECT_EQ(coo.entries()[i].row, back.entries()[i].row);
    EXPECT_EQ(coo.entries()[i].col, back.entries()[i].col);
    EXPECT_NEAR(coo.entries()[i].value, back.entries()[i].value, 1e-4);
  }
}

TEST(IoBinary, RoundTripExact) {
  const Csr csr = testing::random_csr(30, 20, 0.15, 9);
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(s, csr);
  const Csr back = read_csr_binary(s);
  EXPECT_EQ(csr, back);
}

TEST(IoBinary, RejectsBadMagic) {
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  s << "NOTACSR1 garbage";
  EXPECT_THROW(read_csr_binary(s), Error);
}

TEST(IoBinary, RejectsTruncatedStream) {
  const Csr csr = testing::random_csr(10, 10, 0.3, 2);
  std::stringstream s(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(s, csr);
  std::string data = s.str();
  data.resize(data.size() / 2);
  std::stringstream cut(data, std::ios::in | std::ios::binary);
  EXPECT_THROW(read_csr_binary(cut), Error);
}

TEST(IoBinary, FileRoundTrip) {
  const Csr csr = testing::random_csr(8, 8, 0.4, 3);
  const std::string path = ::testing::TempDir() + "/alsmf_io_test.bin";
  write_csr_binary_file(path, csr);
  EXPECT_EQ(read_csr_binary_file(path), csr);
}

TEST(IoBinary, MissingFileThrows) {
  EXPECT_THROW(read_csr_binary_file("/nonexistent/alsmf.bin"), Error);
  EXPECT_THROW(read_ratings_file("/nonexistent/alsmf.txt"), Error);
}

}  // namespace
}  // namespace alsmf
