#include <gtest/gtest.h>

#include <sstream>

#include "sparse/io.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(MatrixMarket, ParsesGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% comment line\n"
      "3 4 2\n"
      "1 2 3.5\n"
      "3 4 -1\n");
  const Coo coo = read_matrix_market(in);
  EXPECT_EQ(coo.rows(), 3);
  EXPECT_EQ(coo.cols(), 4);
  ASSERT_EQ(coo.nnz(), 2);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 1, 3.5f}));
  EXPECT_EQ(coo.entries()[1], (Triplet{2, 3, -1.0f}));
}

TEST(MatrixMarket, PatternEntriesGetValueOne) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "2 1\n");
  const Coo coo = read_matrix_market(in);
  EXPECT_EQ(coo.entries()[0], (Triplet{1, 0, 1.0f}));
}

TEST(MatrixMarket, SymmetricExpands) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 2\n"
      "2 1 5\n"
      "3 3 7\n");
  const Coo coo = read_matrix_market(in);
  ASSERT_EQ(coo.nnz(), 3);  // (1,0), (0,1) mirrored, (2,2) diagonal once
  EXPECT_FLOAT_EQ(coo.entries()[0].value, 5.0f);  // (0,1)
  EXPECT_EQ(coo.entries()[2], (Triplet{2, 2, 7.0f}));
}

TEST(MatrixMarket, RoundTrip) {
  const Coo coo = testing::random_coo(12, 9, 0.3, 190);
  std::stringstream s;
  write_matrix_market(s, coo);
  const Coo back = read_matrix_market(s);
  ASSERT_EQ(back.nnz(), coo.nnz());
  for (std::size_t i = 0; i < coo.entries().size(); ++i) {
    EXPECT_EQ(back.entries()[i].row, coo.entries()[i].row);
    EXPECT_EQ(back.entries()[i].col, coo.entries()[i].col);
    EXPECT_NEAR(back.entries()[i].value, coo.entries()[i].value, 1e-4);
  }
}

TEST(MatrixMarket, RejectsBadHeader) {
  std::istringstream a("not a header\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(a), Error);
  std::istringstream b("%%MatrixMarket matrix array real general\n");
  EXPECT_THROW(read_matrix_market(b), Error);
  std::istringstream c("%%MatrixMarket matrix coordinate complex general\n1 1 0\n");
  EXPECT_THROW(read_matrix_market(c), Error);
}

TEST(MatrixMarket, RejectsTruncatedBody) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 5\n"
      "1 1 1\n");
  EXPECT_THROW(read_matrix_market(in), Error);
}

TEST(MatrixMarket, FileRoundTrip) {
  const Coo coo = testing::random_coo(6, 6, 0.4, 191);
  const std::string path = ::testing::TempDir() + "/alsmf_mm.mtx";
  write_matrix_market_file(path, coo);
  const Coo back = read_matrix_market_file(path);
  EXPECT_EQ(back.nnz(), coo.nnz());
  EXPECT_THROW(read_matrix_market_file("/nonexistent.mtx"), Error);
}

}  // namespace
}  // namespace alsmf
