#include "sparse/reorder.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sparse/stats.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

TEST(Reorder, PermuteRowsMovesContent) {
  const Csr csr = testing::random_csr(10, 8, 0.3, 120);
  std::vector<index_t> perm(10);
  std::iota(perm.rbegin(), perm.rend(), index_t{0});  // reverse
  const Csr out = permute_rows(csr, perm);
  EXPECT_TRUE(out.check_invariants());
  for (index_t u = 0; u < 10; ++u) {
    EXPECT_EQ(out.row_nnz(u), csr.row_nnz(9 - u));
    auto a = out.row_cols(u);
    auto b = csr.row_cols(9 - u);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(Reorder, IdentityPermutationIsNoop) {
  const Csr csr = testing::random_csr(12, 12, 0.2, 121);
  std::vector<index_t> perm(12);
  std::iota(perm.begin(), perm.end(), index_t{0});
  EXPECT_EQ(permute_rows(csr, perm), csr);
}

TEST(Reorder, RejectsNonPermutations) {
  const Csr csr = testing::random_csr(5, 5, 0.4, 122);
  EXPECT_THROW(permute_rows(csr, {0, 1, 2, 3}), Error);        // wrong size
  EXPECT_THROW(permute_rows(csr, {0, 1, 2, 3, 3}), Error);     // duplicate
  EXPECT_THROW(permute_rows(csr, {0, 1, 2, 3, 7}), Error);     // out of range
}

TEST(Reorder, SortByLengthDescending) {
  const Csr csr = testing::random_csr(40, 30, 0.15, 123);
  const auto perm = sort_rows_by_length(csr);
  const Csr sorted = permute_rows(csr, perm);
  for (index_t u = 1; u < sorted.rows(); ++u) {
    EXPECT_GE(sorted.row_nnz(u - 1), sorted.row_nnz(u));
  }
}

TEST(Reorder, SortingReducesWarpDivergence) {
  // The point of the ablation: sorted rows have a lower divergence factor.
  const Csr csr = testing::random_csr(256, 64, 0.08, 124);
  const auto before = warp_divergence_factor(row_lengths(csr), 32);
  const Csr sorted = permute_rows(csr, sort_rows_by_length(csr));
  const auto after = warp_divergence_factor(row_lengths(sorted), 32);
  EXPECT_LE(after, before);
}

TEST(Reorder, InvertPermutationRoundTrip) {
  const Csr csr = testing::random_csr(20, 10, 0.2, 125);
  const auto perm = sort_rows_by_length(csr);
  const auto inv = invert_permutation(perm);
  const Csr there = permute_rows(csr, perm);
  const Csr back = permute_rows(there, inv);
  EXPECT_EQ(back, csr);
}

}  // namespace
}  // namespace alsmf
