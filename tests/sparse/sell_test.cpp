#include "sparse/sell.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

using SellParam = std::tuple<int, int>;  // C, sigma/C

class SellRoundTrip : public ::testing::TestWithParam<SellParam> {};

TEST_P(SellRoundTrip, CsrRoundTripExact) {
  auto [c, sigma_mult] = GetParam();
  for (std::uint64_t seed : {1u, 2u}) {
    const Csr csr = testing::random_csr(70, 50, 0.12, seed + 130);
    const SellMatrix sell(csr, c, c * sigma_mult);
    EXPECT_EQ(sell.to_csr(), csr) << "C=" << c << " sigma=" << c * sigma_mult;
  }
}

TEST_P(SellRoundTrip, PaddingFactorAtLeastOne) {
  auto [c, sigma_mult] = GetParam();
  const Csr csr = testing::random_csr(64, 40, 0.1, 140);
  const SellMatrix sell(csr, c, c * sigma_mult);
  EXPECT_GE(sell.padding_factor(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SellRoundTrip,
                         ::testing::Values(SellParam{4, 1}, SellParam{8, 1},
                                           SellParam{32, 1}, SellParam{8, 4},
                                           SellParam{32, 8}));

TEST(Sell, LargerSigmaNeverIncreasesPadding) {
  // A wider sorting window can only improve the slice packing.
  SyntheticSpec spec;
  spec.users = 512;
  spec.items = 256;
  spec.nnz = 8000;
  spec.user_alpha = 1.0;
  spec.seed = 141;
  const Csr csr = coo_to_csr(generate_synthetic(spec));
  const SellMatrix narrow(csr, 32, 32);
  const SellMatrix wide(csr, 32, 512);
  EXPECT_LE(wide.padding_factor(), narrow.padding_factor());
  // On skewed data the gain is substantial.
  EXPECT_LT(wide.padding_factor(), narrow.padding_factor() * 0.9);
}

TEST(Sell, SliceWidthIsMaxLaneLength) {
  const Csr csr = testing::random_csr(40, 30, 0.2, 142);
  const SellMatrix sell(csr, 8, 8);
  for (index_t s = 0; s < sell.num_slices(); ++s) {
    nnz_t mx = 0;
    for (int lane = 0; lane < sell.c(); ++lane) {
      mx = std::max(mx, sell.lane_length(s, lane));
    }
    EXPECT_EQ(sell.slice_width(s), mx);
  }
}

TEST(Sell, TailSliceHandlesMissingRows) {
  // 10 rows with C = 8: second slice has 6 padded lanes.
  const Csr csr = testing::random_csr(10, 10, 0.4, 143);
  const SellMatrix sell(csr, 8, 8);
  EXPECT_EQ(sell.num_slices(), 2);
  int missing = 0;
  for (int lane = 0; lane < 8; ++lane) {
    if (sell.row_of(1, lane) < 0) ++missing;
  }
  EXPECT_EQ(missing, 6);
  EXPECT_EQ(sell.to_csr(), csr);
}

TEST(Sell, InvalidParamsRejected) {
  const Csr csr = testing::random_csr(8, 8, 0.3, 144);
  EXPECT_THROW(SellMatrix(csr, 0, 8), Error);
  EXPECT_THROW(SellMatrix(csr, 8, 4), Error);   // sigma < C
  EXPECT_THROW(SellMatrix(csr, 8, 12), Error);  // not a multiple
}

TEST(Sell, EmptyMatrix) {
  const Csr csr = coo_to_csr(Coo(5, 5));
  const SellMatrix sell(csr, 4, 4);
  EXPECT_EQ(sell.padded_size(), 0);
  EXPECT_EQ(sell.to_csr().nnz(), 0);
}

}  // namespace
}  // namespace alsmf
