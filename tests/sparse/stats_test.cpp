#include "sparse/stats.hpp"

#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "testing/util.hpp"

namespace alsmf {
namespace {

Csr ladder_matrix() {
  // Row u has u+1 entries: lengths 1, 2, 3, 4.
  Coo coo(4, 4);
  for (index_t u = 0; u < 4; ++u) {
    for (index_t c = 0; c <= u; ++c) coo.add(u, c, 1.0f);
  }
  return coo_to_csr(coo);
}

TEST(Stats, RowStatsLadder) {
  const SliceStats s = row_stats(ladder_matrix());
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.nnz, 10);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.imbalance, 4 / 2.5);
  EXPECT_EQ(s.empty_slices, 0);
}

TEST(Stats, ColStatsLadder) {
  const SliceStats s = col_stats(ladder_matrix());
  // Column c appears in rows c..3: lengths 4, 3, 2, 1.
  EXPECT_EQ(s.max, 4);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.nnz, 10);
}

TEST(Stats, UniformMatrixHasZeroGini) {
  Coo coo(6, 6);
  for (index_t u = 0; u < 6; ++u) {
    coo.add(u, 0, 1.0f);
    coo.add(u, 3, 1.0f);
  }
  const SliceStats s = row_stats(coo_to_csr(coo));
  EXPECT_NEAR(s.gini, 0.0, 1e-9);
  EXPECT_NEAR(s.stddev, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.0);
}

TEST(Stats, SkewedMatrixHasPositiveGini) {
  Coo coo(10, 20);
  for (index_t c = 0; c < 20; ++c) coo.add(0, c, 1.0f);  // one heavy row
  coo.add(5, 0, 1.0f);
  const SliceStats s = row_stats(coo_to_csr(coo));
  EXPECT_GT(s.gini, 0.5);
  EXPECT_GT(s.imbalance, 4.0);
  EXPECT_EQ(s.empty_slices, 8);
}

TEST(Stats, DivergenceFactorUniformIsOne) {
  std::vector<nnz_t> lengths(64, 10);
  EXPECT_DOUBLE_EQ(warp_divergence_factor(lengths, 32), 1.0);
}

TEST(Stats, DivergenceFactorGrowsWithSkew) {
  std::vector<nnz_t> uniform(32, 10);
  std::vector<nnz_t> skewed(32, 1);
  skewed[0] = 320 - 31;  // same total
  const double du = warp_divergence_factor(uniform, 32);
  const double ds = warp_divergence_factor(skewed, 32);
  EXPECT_GT(ds, du * 10);
}

TEST(Stats, DivergenceFactorAtLeastOne) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto lengths = row_lengths(testing::random_csr(100, 50, 0.1, seed));
    EXPECT_GE(warp_divergence_factor(lengths, 32), 1.0);
    EXPECT_GE(warp_divergence_factor(lengths, 8), 1.0);
  }
}

TEST(Stats, DivergenceSmallerWarpNoWorse) {
  // With warp = 1 there is no divergence at all.
  const auto lengths = row_lengths(testing::random_csr(100, 50, 0.1, 5));
  EXPECT_DOUBLE_EQ(warp_divergence_factor(lengths, 1), 1.0);
}

TEST(Stats, DivergenceEmptyInput) {
  EXPECT_DOUBLE_EQ(warp_divergence_factor({}, 32), 1.0);
}

TEST(Stats, Log2Histogram) {
  const auto hist = log2_histogram({1, 1, 2, 3, 4, 7, 8});
  // bucket 0: len 1 (x2); bucket 1: 2,3; bucket 2: 4,7; bucket 3: 8.
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 2);
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(hist[2], 2);
  EXPECT_EQ(hist[3], 1);
}

TEST(Stats, RowAndColLengthsSumToNnz) {
  const Csr csr = testing::random_csr(40, 25, 0.2, 11);
  nnz_t row_sum = 0, col_sum = 0;
  for (auto l : row_lengths(csr)) row_sum += l;
  for (auto l : col_lengths(csr)) col_sum += l;
  EXPECT_EQ(row_sum, csr.nnz());
  EXPECT_EQ(col_sum, csr.nnz());
}

}  // namespace
}  // namespace alsmf
