// Defect-injection harness shared by the corpus tests (tests/ocl/defects/)
// and anything else that wants a deliberately broken generated kernel. Each
// mutation is an exact-anchor textual rewrite of generator output plus the
// defect class both checking legs (static verifier, checked interpreter)
// must flag. Anchors are full source lines with indentation, so a generator
// change that moves them fails loudly in apply_mutation instead of silently
// producing an unmutated kernel.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "devsim/check/defects.hpp"
#include "ocl/kernel_source.hpp"

namespace alsmf::testing {

struct KernelMutation {
  std::string name;    ///< corpus id, e.g. "off_by_one_gather"
  std::string kernel;  ///< entry point the mutation targets
  std::string find;    ///< exact anchor in the generated source
  std::string replace;
  devsim::check::DefectClass expected = devsim::check::DefectClass::kNone;
  /// True when the static verifier can only fail closed (kUnprovable), not
  /// prove the violation — e.g. a dropped launch guard leaves the row index
  /// unbounded rather than provably out of range.
  bool static_unprovable_only = false;
};

/// Applies one mutation, throwing if the anchor is absent (or ambiguous in
/// the sense of being absent after the first rewrite, which we don't do —
/// exactly one occurrence is replaced).
inline std::string apply_mutation(std::string source, const KernelMutation& m) {
  const std::size_t at = source.find(m.find);
  if (at == std::string::npos) {
    throw std::runtime_error("mutation '" + m.name +
                             "': anchor not found in generated kernel source");
  }
  source.replace(at, m.find.size(), m.replace);
  return source;
}

/// Generates the unmutated source the mutation targets.
inline std::string base_source(const KernelMutation& m,
                               const ocl::KernelConfig& config) {
  if (m.kernel == "als_update_flat") return ocl::flat_kernel_source(config);
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    if (ocl::kernel_name(v) == m.kernel) {
      return ocl::batched_kernel_source(v, config);
    }
  }
  if (m.kernel == "als_update_flat_sell") return ocl::sell_kernel_source(config);
  throw std::runtime_error("mutation '" + m.name + "': unknown kernel '" +
                           m.kernel + "'");
}

inline std::string mutated_source(const KernelMutation& m,
                                  const ocl::KernelConfig& config) {
  return apply_mutation(base_source(m, config), m);
}

/// The corpus. Every entry must be flagged with `expected` by BOTH the
/// static verifier and checked dynamic execution (defect_corpus_test.cpp).
inline std::vector<KernelMutation> kernel_mutations() {
  using devsim::check::DefectClass;
  const std::string local_kernel =
      ocl::kernel_name(AlsVariant::batch_local());
  std::vector<KernelMutation> all;

  {
    KernelMutation m;
    m.name = "off_by_one_gather";
    m.kernel = local_kernel;
    m.find = "        const int d = col_idx[begin + base + p] * K;\n";
    m.replace = "        const int d = col_idx[begin + base + p] * K + 1;\n";
    m.expected = DefectClass::kBoundsGlobal;
    all.push_back(m);
  }
  {
    KernelMutation m;
    m.name = "dropped_staging_barrier";
    m.kernel = local_kernel;
    m.find =
        "      }\n"
        "      barrier(CLK_LOCAL_MEM_FENCE);\n"
        "      for (int z = 0;";
    m.replace =
        "      }\n"
        "      for (int z = 0;";
    m.expected = DefectClass::kRaceIntraGroup;
    all.push_back(m);
  }
  {
    KernelMutation m;
    m.name = "local_tile_overflow";
    m.kernel = local_kernel;
    m.find = "  __local real_t tile[TILE_ROWS * K];\n";
    m.replace = "  __local real_t tile[(TILE_ROWS - 1) * K];\n";
    m.expected = DefectClass::kBoundsLocal;
    all.push_back(m);
  }
  {
    KernelMutation m;
    m.name = "stale_tile_read";
    m.kernel = local_kernel;
    m.find =
        "      barrier(CLK_LOCAL_MEM_FENCE);\n"
        "    }\n";
    m.replace = "    }\n";
    m.expected = DefectClass::kRaceIntraGroup;
    all.push_back(m);
  }
  {
    KernelMutation m;
    m.name = "aliased_output";
    m.kernel = local_kernel;
    m.find = "    for (int f = lx; f < K; f += WS) X[u * K + f] = svec[f];\n";
    m.replace =
        "    for (int f = lx; f < K; f += WS) Y[u * K + f] = svec[f];\n";
    m.expected = DefectClass::kRaceCrossGroup;
    all.push_back(m);
  }
  {
    KernelMutation m;
    m.name = "dropped_launch_guard";
    m.kernel = "als_update_flat";
    m.find = "  if (u >= rows) return;\n";
    m.replace = "";
    m.expected = DefectClass::kBoundsGlobal;
    m.static_unprovable_only = true;
    all.push_back(m);
  }
  {
    KernelMutation m;
    m.name = "reduction_off_by_one";
    m.kernel = local_kernel;
    m.find = "      svec[lx] = rsum;\n";
    m.replace = "      svec[lx + 1] = rsum;\n";
    m.expected = DefectClass::kBoundsLocal;
    all.push_back(m);
  }
  return all;
}

}  // namespace alsmf::testing
