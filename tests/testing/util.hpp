// Shared test helpers.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace alsmf::testing {

/// Random sparse matrix with ~density fraction of cells set; values in
/// [1, 5]; canonical order.
inline Coo random_coo(index_t rows, index_t cols, double density,
                      std::uint64_t seed) {
  Rng rng(seed);
  Coo coo(rows, cols);
  for (index_t r = 0; r < rows; ++r) {
    for (index_t c = 0; c < cols; ++c) {
      if (rng.uniform() < density) {
        coo.add(r, c, static_cast<real>(1.0 + 4.0 * rng.uniform()));
      }
    }
  }
  return coo;
}

inline Csr random_csr(index_t rows, index_t cols, double density,
                      std::uint64_t seed) {
  return coo_to_csr(random_coo(rows, cols, density, seed));
}

/// Random SPD k×k matrix A = BᵀB + I (row-major into `a`).
inline std::vector<real> random_spd(int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> b(static_cast<std::size_t>(k) * k);
  for (auto& v : b) v = static_cast<real>(rng.uniform(-1.0, 1.0));
  std::vector<real> a(static_cast<std::size_t>(k) * k, real{0});
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      real s = (i == j) ? real{1} : real{0};
      for (int p = 0; p < k; ++p) s += b[p * k + i] * b[p * k + j];
      a[i * k + j] = s;
    }
  }
  return a;
}

}  // namespace alsmf::testing
